// One Grid compute resource (paper Fig. 2/4): a simulated host with its
// command set, information providers, execution backend, and the services
// in front of them. Depending on options it runs the unified InfoGram
// service (Fig. 4), the classic GRAM + GRIS pair (Fig. 2), or both — the
// two deployments the protocol-count experiment compares.
#pragma once

#include <memory>

// analyze-allow(layering): a grid resource *owns* one InfoGramService
// per node (sporadic-grid deployment, paper §8); grid is orchestration
// above the service, not a lower layer the service should see.
#include "core/infogram_service.hpp"
#include "exec/batch_backend.hpp"
#include "exec/sandbox.hpp"
#include "mds/service.hpp"
#include "obs/telemetry.hpp"

namespace ig::grid {

struct ResourceOptions {
  std::string host = "node0.sim";
  std::uint64_t seed = 1;
  int batch_nodes = 2;
  int max_restarts = 1;
  core::Configuration info_config = core::Configuration::table1();
  bool run_infogram = true;   ///< unified service on port 2135
  bool run_gram = false;      ///< baseline GRAM gatekeeper on port 2119
  bool run_mds = false;       ///< baseline GRIS on port 2136
  bool with_sandbox = true;   ///< accept (jobtype=jar) submissions
  /// Optional telemetry for the resource's InfoGram service and batch
  /// backend; queryable through the service as info=metrics / info=traces.
  std::shared_ptr<obs::Telemetry> telemetry;
  /// Root-trace sampling the service applies to `telemetry` (1 = trace
  /// every request; see core::InfoGramConfig::trace_sample_every).
  std::uint64_t trace_sample_every = obs::kDefaultTraceSampling;
};

/// Shared security/VO context every resource plugs into. Owned by the
/// VirtualOrganization; must outlive the resources.
struct GridContext {
  net::Network* network = nullptr;
  Clock* clock = nullptr;
  const security::TrustStore* trust = nullptr;
  const security::GridMap* gridmap = nullptr;
  const security::AuthorizationPolicy* policy = nullptr;
  std::shared_ptr<logging::Logger> logger;
};

class GridResource {
 public:
  GridResource(GridContext context, security::Credential host_credential,
               ResourceOptions options);
  ~GridResource();

  Status start();
  void stop();

  const std::string& host() const { return options_.host; }
  net::Address infogram_address() const { return {options_.host, 2135}; }
  net::Address gram_address() const { return {options_.host, 2119}; }
  net::Address mds_address() const { return {options_.host, 2136}; }

  std::shared_ptr<exec::SimSystem> system() const { return system_; }
  std::shared_ptr<exec::CommandRegistry> registry() const { return registry_; }
  std::shared_ptr<info::SystemMonitor> monitor() const { return monitor_; }
  std::shared_ptr<exec::BatchBackend> batch() const { return batch_; }
  std::shared_ptr<exec::SandboxBackend> sandbox() const { return sandbox_; }
  core::InfoGramService* infogram() const { return infogram_.get(); }
  gram::GramService* gram() const { return gram_.get(); }
  std::shared_ptr<mds::Gris> gris() const { return gris_; }

 private:
  GridContext context_;
  security::Credential credential_;
  ResourceOptions options_;

  std::shared_ptr<exec::SimSystem> system_;
  std::shared_ptr<exec::CommandRegistry> registry_;
  std::shared_ptr<info::SystemMonitor> monitor_;
  std::shared_ptr<exec::BatchBackend> batch_;
  std::shared_ptr<exec::SandboxBackend> sandbox_;
  std::unique_ptr<core::InfoGramService> infogram_;
  std::unique_ptr<gram::GramService> gram_;
  std::shared_ptr<mds::Gris> gris_;
  std::unique_ptr<mds::MdsService> mds_;
  bool started_ = false;
};

}  // namespace ig::grid
