#include "grid/deployment.hpp"

namespace ig::grid {

Status DeploymentRepository::publish(ServicePackage package) {
  MutexLock lock(mu_);
  auto it = packages_.find(package.name);
  if (it != packages_.end() && package.version <= it->second.version) {
    return Error(ErrorCode::kInvalidArgument,
                 "published version must exceed v" + std::to_string(it->second.version));
  }
  packages_[package.name] = std::move(package);
  return Status::success();
}

Result<ServicePackage> DeploymentRepository::latest(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = packages_.find(name);
  if (it == packages_.end()) return Error(ErrorCode::kNotFound, "no such package: " + name);
  return it->second;
}

Result<int> DeploymentRepository::latest_version(const std::string& name) const {
  auto package = latest(name);
  if (!package.ok()) return package.error();
  return package->version;
}

std::vector<std::string> DeploymentRepository::package_names() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(packages_.size());
  for (const auto& [name, pkg] : packages_) out.push_back(name);
  return out;
}

Deployer::Deployer(const DeploymentRepository& repository, Clock& clock,
                   double bytes_per_us)
    : repository_(repository), clock_(clock), bytes_per_us_(bytes_per_us) {}

Result<int> Deployer::deploy(const std::string& package, GridResource& resource) {
  auto pkg = repository_.latest(package);
  if (!pkg.ok()) return pkg.error();
  {
    MutexLock lock(mu_);
    auto it = installed_.find({resource.host(), package});
    if (it != installed_.end() && it->second >= pkg->version) {
      return it->second;  // already current: zero-cost no-op
    }
  }
  if (resource.sandbox() == nullptr) {
    return Error(ErrorCode::kUnavailable,
                 "resource has no sandbox to install into: " + resource.host());
  }
  // The download: charge size/bandwidth against the clock.
  Duration transfer = us(static_cast<std::int64_t>(
      static_cast<double>(pkg->size_bytes) / bytes_per_us_));
  ScopedTimer timer(clock_);
  clock_.sleep_for(transfer);
  // "Install": register every task; add any new information providers.
  for (const auto& [name, task] : pkg->tasks) {
    resource.sandbox()->register_task(name, task);
  }
  for (const auto& kw : pkg->providers.keywords()) {
    if (resource.monitor()->provider(kw.keyword) != nullptr) continue;  // keep existing
    core::Configuration single;
    single.add(kw);
    if (auto status = single.apply(*resource.monitor(), resource.registry());
        !status.ok()) {
      return status.error();
    }
  }
  time_spent_us_.fetch_add(timer.elapsed().count());
  MutexLock lock(mu_);
  installed_[{resource.host(), package}] = pkg->version;
  return pkg->version;
}

Result<int> Deployer::installed_version(const std::string& package,
                                        const std::string& host) const {
  MutexLock lock(mu_);
  auto it = installed_.find({host, package});
  if (it == installed_.end()) {
    return Error(ErrorCode::kNotFound, "not installed on " + host + ": " + package);
  }
  return it->second;
}

Result<int> Deployer::upgrade_all(const std::string& package, VirtualOrganization& vo) {
  auto latest = repository_.latest_version(package);
  if (!latest.ok()) return latest.error();
  int upgraded = 0;
  for (const auto& resource : vo.resources()) {
    bool current = false;
    {
      MutexLock lock(mu_);
      auto it = installed_.find({resource->host(), package});
      current = it != installed_.end() && it->second >= latest.value();
    }
    if (current) continue;
    auto version = deploy(package, *resource);
    if (!version.ok()) return version.error();
    ++upgraded;
  }
  return upgraded;
}

}  // namespace ig::grid
