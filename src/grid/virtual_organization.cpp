#include "grid/virtual_organization.hpp"

namespace ig::grid {

VirtualOrganization::VirtualOrganization(std::string name, net::Network& network,
                                         Clock& clock, std::uint64_t seed)
    : name_(std::move(name)),
      network_(network),
      clock_(clock),
      ca_("/O=Grid/CN=" + name_ + " CA", seconds(365LL * 86400), clock, seed),
      policy_(security::Decision::kAllow),  // default-open; tests tighten it
      logger_(std::make_shared<logging::Logger>(clock)) {
  trust_.add_root(ca_.root_certificate());
}

security::Credential VirtualOrganization::enroll_user(const std::string& common_name,
                                                      const std::string& local_account,
                                                      Duration lifetime) {
  std::string dn = "/O=Grid/O=" + name_ + "/CN=" + common_name;
  auto credential = ca_.issue(dn, security::CertType::kUser, lifetime);
  gridmap_.add(dn, local_account);
  return credential;
}

GridContext VirtualOrganization::context() {
  GridContext ctx;
  ctx.network = &network_;
  ctx.clock = &clock_;
  ctx.trust = &trust_;
  ctx.gridmap = &gridmap_;
  ctx.policy = &policy_;
  ctx.logger = logger_;
  return ctx;
}

Result<GridResource*> VirtualOrganization::add_resource(ResourceOptions options) {
  auto host_credential = ca_.issue("/O=Grid/O=" + name_ + "/CN=host/" + options.host,
                                   security::CertType::kHost, seconds(365LL * 86400));
  auto resource =
      std::make_unique<GridResource>(context(), std::move(host_credential), options);
  if (auto status = resource->start(); !status.ok()) return status.error();
  GridResource* ptr = resource.get();
  resources_.push_back(std::move(resource));
  if (giis_ != nullptr) {
    giis_->register_child(
        std::make_shared<mds::Gris>(ptr->monitor(), ptr->host(), clock_));
  }
  return ptr;
}

GridResource* VirtualOrganization::resource(const std::string& host) const {
  for (const auto& r : resources_) {
    if (r->host() == host) return r.get();
  }
  return nullptr;
}

std::shared_ptr<mds::Giis> VirtualOrganization::giis() {
  if (giis_ == nullptr) {
    giis_ = std::make_shared<mds::Giis>(name_, clock_);
    for (const auto& r : resources_) {
      giis_->register_child(std::make_shared<mds::Gris>(r->monitor(), r->host(), clock_));
    }
  }
  return giis_;
}

SporadicGrid::SporadicGrid(net::Network& network, Clock& clock, Options options)
    : vo_(options.vo_name, network, clock, options.seed) {
  ScopedTimer timer(clock);
  for (int i = 0; i < options.resources; ++i) {
    ResourceOptions resource;
    resource.host = "node" + std::to_string(i) + "." + options.vo_name;
    resource.seed = options.seed + static_cast<std::uint64_t>(i) * 101;
    resource.batch_nodes = options.batch_nodes_per_resource;
    // A sporadic grid is pure InfoGram: one service to deploy per node is
    // the point (paper Sec. 8: "easy to install it on a number of
    // machines").
    resource.run_infogram = true;
    auto added = vo_.add_resource(std::move(resource));
    (void)added;
  }
  provision_time_ = timer.elapsed();
}

std::vector<net::Address> SporadicGrid::infogram_addresses() const {
  std::vector<net::Address> out;
  for (const auto& r : vo_.resources()) out.push_back(r->infogram_address());
  return out;
}

}  // namespace ig::grid
