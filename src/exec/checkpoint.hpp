// Application checkpointing (paper Sec. 6: "In the same way it would be
// possible to use the logging service for check pointing of
// applications", and Sec. 10: "Improved fault tolerance will allow for
// automatic restart capabilities enabled through checkpointing").
//
// A CheckpointStore keeps the latest progress blob per checkpoint key.
// Sandboxed tasks save through their SandboxContext (capability-gated);
// when the job manager restarts a failed job, the re-executed task
// restores the blob and resumes instead of redoing completed work. The
// store serializes to a file so checkpoints survive a service restart,
// mirroring the log-based recovery path.
#pragma once

#include <map>
#include <string>

#include "common/error.hpp"
#include "common/sync.hpp"

namespace ig::exec {

class CheckpointStore {
 public:
  CheckpointStore() = default;
  // Movable despite the internal mutex (locks the source; as with any
  // move, no other thread may still be using `other`).
  CheckpointStore(CheckpointStore&& other) noexcept {
    MutexLock lock(other.mu_);
    entries_ = std::move(other.entries_);
  }
  // Address-ordered two-lock acquisition; the conditional aliasing is
  // beyond the capability analysis, hence the (budgeted) escape hatch.
  CheckpointStore& operator=(CheckpointStore&& other) noexcept IG_NO_THREAD_SAFETY_ANALYSIS {
    if (this != &other) {
      Mutex& first = this < &other ? mu_ : other.mu_;
      Mutex& second = this < &other ? other.mu_ : mu_;
      MutexLock lock_first(first);
      MutexLock lock_second(second);
      entries_ = std::move(other.entries_);
    }
    return *this;
  }

  /// Save (replace) the checkpoint for `key`.
  void save(const std::string& key, std::string data);

  /// Latest checkpoint for `key`; kNotFound if none.
  Result<std::string> load(const std::string& key) const;

  /// Drop a checkpoint (called when the job completes).
  void erase(const std::string& key);

  bool contains(const std::string& key) const;
  std::size_t size() const;

  /// Persistence across service restarts (line-oriented, base64 values).
  Status save_to_file(const std::string& path) const;
  static Result<CheckpointStore> load_from_file(const std::string& path);

 private:
  mutable Mutex mu_{lock_rank::kCheckpoint, "exec.CheckpointStore"};
  std::map<std::string, std::string> entries_ IG_GUARDED_BY(mu_);
};

}  // namespace ig::exec
