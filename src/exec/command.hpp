// Simulated command execution.
//
// GRAM's job manager and InfoGram's information providers both ultimately
// run "a real program" (paper Table 1: date, /sbin/sysinfo.exe, ...). The
// CommandRegistry is the substitution for the operating system's exec():
// commands are C++ callables over the SimSystem, each with a configured
// execution cost that is charged against the service clock — so caching a
// command's output has a measurable benefit, exactly what experiment E3
// needs. Failure injection supports the fault-tolerance experiment E6.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/rng.hpp"
#include "common/sync.hpp"
#include "exec/sim_system.hpp"

namespace ig::exec {

struct CommandResult {
  int exit_code = 0;
  std::string output;  ///< stdout; providers parse "name: value" lines
};

/// Cooperative cancellation: long command "runs" poll this between cost
/// slices, so a cancel takes effect mid-execution. A token may also be
/// armed with a clock deadline, after which cancelled() reports true —
/// that is how info-query timeouts ((timeout=...)(action=cancel)) reach
/// into a running provider command.
class CancelToken {
 public:
  void cancel() { cancelled_.store(true, std::memory_order_release); }

  /// Arm a deadline on `clock`; cancelled() fires once now() >= deadline.
  /// Arm before sharing the token with the running command.
  void arm_deadline(const Clock* clock, TimePoint deadline) {
    deadline_us_.store(deadline.count(), std::memory_order_release);
    deadline_clock_.store(clock, std::memory_order_release);
  }

  bool cancelled() const {
    if (cancelled_.load(std::memory_order_acquire)) return true;
    const Clock* clock = deadline_clock_.load(std::memory_order_acquire);
    return clock != nullptr &&
           clock->now().count() >= deadline_us_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<const Clock*> deadline_clock_{nullptr};
  std::atomic<std::int64_t> deadline_us_{0};
};

using CommandFn =
    std::function<CommandResult(const std::vector<std::string>& args)>;

class CommandRegistry {
 public:
  explicit CommandRegistry(Clock& clock, std::uint64_t seed = 42);

  /// Register `fn` under an executable path. `cost` is the simulated
  /// execution time charged on every run.
  void register_command(const std::string& path, CommandFn fn, Duration cost = ms(5));

  bool contains(const std::string& path) const;
  Result<Duration> cost(const std::string& path) const;
  std::vector<std::string> paths() const;

  /// Run "path arg1 arg2 ...". Charges the cost (sleeping the clock in
  /// slices so cancellation is responsive), then invokes the callable.
  /// kNotFound for unknown executables, kCancelled if the token fired.
  Result<CommandResult> run(const std::string& command_line,
                            const CancelToken* cancel = nullptr);
  Result<CommandResult> run(const std::string& path, const std::vector<std::string>& args,
                            const CancelToken* cancel = nullptr);

  /// Failure injection: make `path` fail (non-zero exit) with probability
  /// `probability` per run. Used by the fault-tolerance experiments.
  void set_failure_rate(const std::string& path, double probability);

  /// Attach a seeded fault injector. Every run evaluates point "exec.run":
  /// kCrash kills the command halfway through its cost (non-zero exit, so
  /// the job manager's restart/checkpoint machinery engages), kError fails
  /// the exec outright, kLatency charges extra simulated time. Nullable.
  void set_fault_injector(std::shared_ptr<FaultInjector> injector);

  /// Total number of command executions (cache-effectiveness metric).
  std::uint64_t executions() const { return executions_.load(std::memory_order_relaxed); }

  Clock& clock() { return clock_; }

  /// Registry preloaded with the standard simulated commands over `system`:
  /// date, /bin/hostname, /usr/bin/uptime, /sbin/sysinfo.exe (-mem/-cpu),
  /// /usr/local/bin/cpuload.exe, /bin/ls, /bin/echo, /bin/cat (proc files),
  /// /bin/sleep and /bin/false. Matches and extends the paper's Table 1.
  static std::shared_ptr<CommandRegistry> standard(Clock& clock,
                                                   std::shared_ptr<SimSystem> system,
                                                   std::uint64_t seed = 42);

 private:
  struct Entry {
    CommandFn fn;
    Duration cost{0};
    double failure_rate = 0.0;
  };

  Clock& clock_;
  mutable Mutex mu_{lock_rank::kCommand, "exec.CommandRegistry"};
  Rng rng_ IG_GUARDED_BY(mu_);
  std::map<std::string, Entry> commands_ IG_GUARDED_BY(mu_);
  std::shared_ptr<FaultInjector> fault_injector_ IG_GUARDED_BY(mu_);
  std::atomic<std::uint64_t> executions_{0};
};

/// Split a command line into path + args (whitespace separated; no quoting,
/// matching the paper's configuration file format).
std::pair<std::string, std::vector<std::string>> split_command_line(const std::string& line);

}  // namespace ig::exec
