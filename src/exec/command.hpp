// Simulated command execution.
//
// GRAM's job manager and InfoGram's information providers both ultimately
// run "a real program" (paper Table 1: date, /sbin/sysinfo.exe, ...). The
// CommandRegistry is the substitution for the operating system's exec():
// commands are C++ callables over the SimSystem, each with a configured
// execution cost that is charged against the service clock — so caching a
// command's output has a measurable benefit, exactly what experiment E3
// needs. Failure injection supports the fault-tolerance experiment E6.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "exec/sim_system.hpp"

namespace ig::exec {

struct CommandResult {
  int exit_code = 0;
  std::string output;  ///< stdout; providers parse "name: value" lines
};

/// Cooperative cancellation: long command "runs" poll this between cost
/// slices, so a cancel takes effect mid-execution.
class CancelToken {
 public:
  void cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

 private:
  std::atomic<bool> cancelled_{false};
};

using CommandFn =
    std::function<CommandResult(const std::vector<std::string>& args)>;

class CommandRegistry {
 public:
  explicit CommandRegistry(Clock& clock, std::uint64_t seed = 42);

  /// Register `fn` under an executable path. `cost` is the simulated
  /// execution time charged on every run.
  void register_command(const std::string& path, CommandFn fn, Duration cost = ms(5));

  bool contains(const std::string& path) const;
  Result<Duration> cost(const std::string& path) const;
  std::vector<std::string> paths() const;

  /// Run "path arg1 arg2 ...". Charges the cost (sleeping the clock in
  /// slices so cancellation is responsive), then invokes the callable.
  /// kNotFound for unknown executables, kCancelled if the token fired.
  Result<CommandResult> run(const std::string& command_line,
                            const CancelToken* cancel = nullptr);
  Result<CommandResult> run(const std::string& path, const std::vector<std::string>& args,
                            const CancelToken* cancel = nullptr);

  /// Failure injection: make `path` fail (non-zero exit) with probability
  /// `probability` per run. Used by the fault-tolerance experiments.
  void set_failure_rate(const std::string& path, double probability);

  /// Total number of command executions (cache-effectiveness metric).
  std::uint64_t executions() const { return executions_.load(std::memory_order_relaxed); }

  Clock& clock() { return clock_; }

  /// Registry preloaded with the standard simulated commands over `system`:
  /// date, /bin/hostname, /usr/bin/uptime, /sbin/sysinfo.exe (-mem/-cpu),
  /// /usr/local/bin/cpuload.exe, /bin/ls, /bin/echo, /bin/cat (proc files),
  /// /bin/sleep and /bin/false. Matches and extends the paper's Table 1.
  static std::shared_ptr<CommandRegistry> standard(Clock& clock,
                                                   std::shared_ptr<SimSystem> system,
                                                   std::uint64_t seed = 42);

 private:
  struct Entry {
    CommandFn fn;
    Duration cost{0};
    double failure_rate = 0.0;
  };

  Clock& clock_;
  mutable std::mutex mu_;
  Rng rng_;
  std::map<std::string, Entry> commands_;
  std::atomic<std::uint64_t> executions_{0};
};

/// Split a command line into path + args (whitespace separated; no quoting,
/// matching the paper's configuration file format).
std::pair<std::string, std::vector<std::string>> split_command_line(const std::string& line);

}  // namespace ig::exec
