#include "exec/sandbox.hpp"

namespace ig::exec {

std::string_view to_string(Capability c) {
  switch (c) {
    case Capability::kReadFile:
      return "read_file";
    case Capability::kWriteFile:
      return "write_file";
    case Capability::kNetwork:
      return "network";
    case Capability::kExec:
      return "exec";
  }
  return "unknown";
}

SandboxContext::SandboxContext(CapabilitySet capabilities, std::uint64_t op_budget,
                               std::uint64_t memory_budget_bytes,
                               std::shared_ptr<SimSystem> system, const CancelToken* cancel,
                               std::shared_ptr<CheckpointStore> checkpoints,
                               std::string checkpoint_key)
    : capabilities_(capabilities),
      op_budget_(op_budget),
      memory_budget_(memory_budget_bytes),
      system_(std::move(system)),
      cancel_(cancel),
      checkpoints_(std::move(checkpoints)),
      checkpoint_key_(std::move(checkpoint_key)) {}

Status SandboxContext::charge(std::uint64_t ops) {
  if (cancel_ != nullptr && cancel_->cancelled()) {
    return Error(ErrorCode::kCancelled, "sandbox task cancelled");
  }
  if (ops_used_ + ops > op_budget_) {
    return Error(ErrorCode::kDenied, "sandbox operation budget exhausted");
  }
  ops_used_ += ops;
  return Status::success();
}

Status SandboxContext::allocate(std::uint64_t bytes) {
  if (memory_used_ + bytes > memory_budget_) {
    return Error(ErrorCode::kDenied, "sandbox memory budget exhausted");
  }
  memory_used_ += bytes;
  return Status::success();
}

void SandboxContext::release(std::uint64_t bytes) {
  memory_used_ = bytes > memory_used_ ? 0 : memory_used_ - bytes;
}

Status SandboxContext::require(Capability c) const {
  if (!capabilities_.has(c)) {
    return Error(ErrorCode::kDenied,
                 "sandbox capability not granted: " + std::string(to_string(c)));
  }
  return Status::success();
}

Result<std::string> SandboxContext::read_proc(const std::string& path) {
  if (auto s = require(Capability::kReadFile); !s.ok()) return s.error();
  if (system_ == nullptr) return Error(ErrorCode::kUnavailable, "no host system attached");
  return system_->read_proc(path);
}

Status SandboxContext::checkpoint(std::string data) {
  if (auto s = require(Capability::kWriteFile); !s.ok()) return s;
  if (checkpoints_ == nullptr) {
    return Error(ErrorCode::kUnavailable, "no checkpoint store attached");
  }
  checkpoints_->save(checkpoint_key_, std::move(data));
  return Status::success();
}

Result<std::string> SandboxContext::restore() {
  if (auto s = require(Capability::kReadFile); !s.ok()) return s.error();
  if (checkpoints_ == nullptr) {
    return Error(ErrorCode::kUnavailable, "no checkpoint store attached");
  }
  return checkpoints_->load(checkpoint_key_);
}

SandboxBackend::SandboxBackend(Clock& clock, SandboxConfig config,
                               std::shared_ptr<SimSystem> system)
    : clock_(clock), config_(config), system_(std::move(system)), table_(clock) {}

SandboxBackend::~SandboxBackend() = default;

void SandboxBackend::register_task(const std::string& name, SandboxTask task) {
  MutexLock lock(tasks_mu_);
  tasks_[name] = std::move(task);
}

bool SandboxBackend::has_task(const std::string& name) const {
  MutexLock lock(tasks_mu_);
  return tasks_.count(name) > 0;
}

Result<JobId> SandboxBackend::submit(const JobRequest& request) {
  SandboxTask task;
  {
    MutexLock lock(tasks_mu_);
    auto it = tasks_.find(request.spec.executable);
    if (it == tasks_.end()) {
      return Error(ErrorCode::kNotFound,
                   "no registered sandbox task: " + request.spec.executable);
    }
    task = it->second;
  }
  // The checkpoint key identifies the *logical* job across restarts:
  // explicit via the environment, or derived from what it runs and who
  // runs it.
  std::string checkpoint_key;
  if (auto it = request.spec.environment.find("checkpoint_key");
      it != request.spec.environment.end()) {
    checkpoint_key = it->second;
  } else {
    checkpoint_key = request.spec.executable + "|" + request.local_user;
    for (const auto& arg : request.spec.arguments) checkpoint_key += "|" + arg;
  }
  JobId id = table_.create(request);
  {
    MutexLock lock(threads_mu_);
    if (threads_.size() > 64) {
      std::erase_if(threads_, [](std::jthread& t) { return !t.joinable(); });
    }
    threads_.emplace_back([this, id, task = std::move(task), args = request.spec.arguments,
                           checkpoint_key] {
      auto token = table_.token(id);
      if (token == nullptr || token->cancelled()) {
        table_.set_cancelled(id, "cancelled before execution");
        return;
      }
      table_.set_active(id);
      if (config_.mode == SandboxMode::kIsolated) {
        // A fresh isolated environment pays a startup cost (new "JVM").
        clock_.sleep_for(config_.isolated_startup_cost);
      }
      SandboxContext ctx(config_.capabilities, config_.op_budget,
                         config_.memory_budget_bytes, system_, token.get(),
                         config_.checkpoints, checkpoint_key);
      auto result = task(ctx, args);
      if (result.ok()) {
        // A completed job's checkpoint is obsolete.
        if (config_.checkpoints != nullptr) config_.checkpoints->erase(checkpoint_key);
        table_.finish(id, 0, std::move(result.value()), "");
      } else if (result.code() == ErrorCode::kCancelled) {
        table_.set_cancelled(id, result.error().message);
      } else {
        table_.finish(id, 1, "", result.error().to_string());
      }
    });
  }
  return id;
}

Result<JobStatus> SandboxBackend::status(JobId id) const { return table_.status(id); }

Status SandboxBackend::cancel(JobId id) { return table_.request_cancel(id); }

Result<JobStatus> SandboxBackend::wait(JobId id, Duration timeout) {
  return table_.wait(id, timeout);
}

}  // namespace ig::exec
