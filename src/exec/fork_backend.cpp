#include "exec/fork_backend.hpp"

namespace ig::exec {

ForkBackend::ForkBackend(std::shared_ptr<CommandRegistry> registry, const Clock& clock)
    : registry_(std::move(registry)), table_(clock) {}

ForkBackend::~ForkBackend() = default;  // jthreads join

Result<JobId> ForkBackend::submit(const JobRequest& request) {
  if (request.spec.executable.empty()) {
    return Error(ErrorCode::kInvalidArgument, "job has no executable");
  }
  JobId id = table_.create(request);
  {
    MutexLock lock(threads_mu_);
    // Reap finished workers occasionally so long-lived backends do not
    // accumulate joined-but-stored threads without bound.
    if (threads_.size() > 64) {
      std::erase_if(threads_, [](std::jthread& t) { return !t.joinable(); });
    }
    threads_.emplace_back([this, id, request] {
      run_and_record(*registry_, table_, id, request);
    });
  }
  return id;
}

Result<JobStatus> ForkBackend::status(JobId id) const { return table_.status(id); }

Status ForkBackend::cancel(JobId id) { return table_.request_cancel(id); }

Result<JobStatus> ForkBackend::wait(JobId id, Duration timeout) {
  return table_.wait(id, timeout);
}

}  // namespace ig::exec
