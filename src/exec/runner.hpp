// Shared request-running logic for the command-based backends: executes a
// job's command `count` times against the registry, concatenating output.
#pragma once

#include "exec/command.hpp"
#include "exec/job_table.hpp"

namespace ig::exec {

/// Execute `request` to completion (or cancellation) and record the result
/// in `table`. Runs in the calling thread; backends call this from their
/// worker threads.
void run_and_record(CommandRegistry& registry, JobTable& table, JobId id,
                    const JobRequest& request);

}  // namespace ig::exec
