// Sandboxed execution of untrusted code (paper Sec. 5.5 and 7).
//
// J-GRAM's headline extension over C-GRAM is running pure Java code
// (submitted as jar files) inside the JVM sandbox: "executing untrusted
// applications in trusted environments". The C++ substitution keeps the
// *policy* property: a task submitted as (executable=foo.jar)(jobtype=jar)
// resolves to a registered SandboxTask object, which runs under a
// SandboxContext enforcing a capability mask and operation/memory budgets.
// A task that requests a capability it was not granted, or exceeds a
// budget, fails with kDenied — it cannot escape into the host system.
//
// The paper's two deployment modes map to SandboxMode: kShared (run in
// the service's "JVM", cheap) vs kIsolated (fresh budget accounting per
// job, modelling a separate JVM; an extra startup cost is charged).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <thread>

#include "common/sync.hpp"
#include "exec/checkpoint.hpp"
#include "exec/job.hpp"
#include "exec/job_table.hpp"
#include "exec/sim_system.hpp"

namespace ig::exec {

/// Things an untrusted task may be allowed to do.
enum class Capability : std::uint32_t {
  kReadFile = 1u << 0,
  kWriteFile = 1u << 1,
  kNetwork = 1u << 2,
  kExec = 1u << 3,  ///< spawn simulated commands
};

class CapabilitySet {
 public:
  CapabilitySet() = default;
  CapabilitySet& grant(Capability c) {
    mask_ |= static_cast<std::uint32_t>(c);
    return *this;
  }
  bool has(Capability c) const { return (mask_ & static_cast<std::uint32_t>(c)) != 0; }
  static CapabilitySet all() {
    return CapabilitySet()
        .grant(Capability::kReadFile)
        .grant(Capability::kWriteFile)
        .grant(Capability::kNetwork)
        .grant(Capability::kExec);
  }

 private:
  std::uint32_t mask_ = 0;
};

std::string_view to_string(Capability c);

/// Budgeted, capability-checked environment handed to a task.
class SandboxContext {
 public:
  SandboxContext(CapabilitySet capabilities, std::uint64_t op_budget,
                 std::uint64_t memory_budget_bytes, std::shared_ptr<SimSystem> system,
                 const CancelToken* cancel,
                 std::shared_ptr<CheckpointStore> checkpoints = nullptr,
                 std::string checkpoint_key = "");

  /// Charge `ops` units of work; kDenied once the budget is exhausted,
  /// kCancelled if the job was cancelled.
  Status charge(std::uint64_t ops);
  /// Account an allocation against the memory budget.
  Status allocate(std::uint64_t bytes);
  void release(std::uint64_t bytes);
  /// kDenied unless the capability was granted.
  Status require(Capability c) const;

  /// Capability-gated host access (read-only view of the simulated host).
  Result<std::string> read_proc(const std::string& path);

  /// Checkpointing (paper Sec. 6/10): persist progress so a restarted
  /// task resumes instead of redoing work. Writing requires kWriteFile,
  /// restoring kReadFile; kUnavailable when no store is attached.
  Status checkpoint(std::string data);
  Result<std::string> restore();

  std::uint64_t ops_used() const { return ops_used_; }
  std::uint64_t memory_used() const { return memory_used_; }

 private:
  CapabilitySet capabilities_;
  std::uint64_t op_budget_;
  std::uint64_t memory_budget_;
  std::uint64_t ops_used_ = 0;
  std::uint64_t memory_used_ = 0;
  std::shared_ptr<SimSystem> system_;
  const CancelToken* cancel_;
  std::shared_ptr<CheckpointStore> checkpoints_;
  std::string checkpoint_key_;
};

/// A unit of untrusted code — the stand-in for a submitted jar.
/// Return value becomes the job's output; an error fails the job.
using SandboxTask = std::function<Result<std::string>(
    SandboxContext& ctx, const std::vector<std::string>& args)>;

enum class SandboxMode { kShared, kIsolated };

struct SandboxConfig {
  CapabilitySet capabilities;  ///< default: nothing granted
  std::uint64_t op_budget = 1'000'000;
  std::uint64_t memory_budget_bytes = 64 * 1024 * 1024;
  SandboxMode mode = SandboxMode::kShared;
  Duration isolated_startup_cost = ms(50);  ///< "new JVM" charge
  /// Optional checkpoint store shared by all tasks of this backend. A
  /// job's checkpoint key is its environment entry "checkpoint_key", or
  /// executable|user|args when absent. Cleared when the job succeeds.
  std::shared_ptr<CheckpointStore> checkpoints;
};

/// Backend executing registered tasks for (jobtype=jar) submissions.
class SandboxBackend final : public LocalJobExecution {
 public:
  SandboxBackend(Clock& clock, SandboxConfig config,
                 std::shared_ptr<SimSystem> system = nullptr);
  ~SandboxBackend() override;

  /// Register a task under its jar name ("analysis.jar").
  void register_task(const std::string& name, SandboxTask task);
  bool has_task(const std::string& name) const;

  std::string name() const override { return "sandbox"; }
  Result<JobId> submit(const JobRequest& request) override;
  Result<JobStatus> status(JobId id) const override;
  Status cancel(JobId id) override;
  Result<JobStatus> wait(JobId id, Duration timeout) override;

 private:
  Clock& clock_;
  SandboxConfig config_;
  std::shared_ptr<SimSystem> system_;
  JobTable table_;
  mutable Mutex tasks_mu_{lock_rank::kSandbox, "exec.SandboxBackend.tasks"};
  std::map<std::string, SandboxTask> tasks_ IG_GUARDED_BY(tasks_mu_);
  /// Unranked: never nested with any other lock (reaps + appends only).
  Mutex threads_mu_{lock_rank::kUnranked, "exec.SandboxBackend.threads"};
  std::vector<std::jthread> threads_ IG_GUARDED_BY(threads_mu_);
};

}  // namespace ig::exec
