#include "exec/sim_system.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace ig::exec {

namespace {
// One model step per simulated second keeps the processes resolution-
// independent: querying twice as often must not change the dynamics.
constexpr Duration kStep = seconds(1);
}  // namespace

SimSystem::SimSystem(const Clock& clock, std::uint64_t seed, std::string hostname)
    : clock_(clock), hostname_(std::move(hostname)), rng_(seed) {
  base_.mem_total_kb = 256 * 1024 + static_cast<std::int64_t>(rng_.uniform_int(0, 3)) * 256 * 1024;
  base_.swap_total_kb = base_.mem_total_kb;
  base_.cpu_count = static_cast<int>(rng_.uniform_int(1, 4));
  base_.cpu_mhz = 800 + static_cast<int>(rng_.uniform_int(0, 6)) * 200;
  base_.cpu_model = strings::format("SimCPU %dMHz", base_.cpu_mhz);
  mem_free_kb_ = static_cast<double>(base_.mem_total_kb) * rng_.uniform(0.4, 0.8);
  base_.disk_total_kb = (8 + rng_.uniform_int(0, 3) * 8) * 1024 * 1024;  // 8-32 GB
  disk_free_kb_ = static_cast<double>(base_.disk_total_kb) * rng_.uniform(0.3, 0.9);
  load_ = rng_.uniform(0.1, 0.8);
  load5_ = load15_ = load_;
  last_step_ = clock_.now();
  add_file("/home/gregor", "paper.tex");
  add_file("/home/gregor", "results.dat");
  add_file("/home/gregor", "infogram.jar");
}

void SimSystem::step_locked() {
  TimePoint now = clock_.now();
  while (last_step_ + kStep <= now) {
    last_step_ += kStep;
    // Load: AR(1) with mean 0.5 plus external job pressure.
    double target = 0.5 + external_load_;
    load_ = std::max(0.0, 0.9 * load_ + 0.1 * target + rng_.normal(0.0, 0.05));
    load5_ = 0.98 * load5_ + 0.02 * load_;
    load15_ = 0.995 * load15_ + 0.005 * load_;
    // Memory: bounded random walk between 10% and 95% free.
    mem_free_kb_ += rng_.normal(0.0, static_cast<double>(base_.mem_total_kb) * 0.01);
    mem_free_kb_ = std::clamp(mem_free_kb_, static_cast<double>(base_.mem_total_kb) * 0.10,
                              static_cast<double>(base_.mem_total_kb) * 0.95);
    // Disk: slow random walk between 5% and 95% free.
    disk_free_kb_ += rng_.normal(0.0, static_cast<double>(base_.disk_total_kb) * 0.001);
    disk_free_kb_ = std::clamp(disk_free_kb_,
                               static_cast<double>(base_.disk_total_kb) * 0.05,
                               static_cast<double>(base_.disk_total_kb) * 0.95);
    // Network counters: monotone, traffic proportional to load.
    double traffic_scale = 1.0 + load_;
    net_rx_bytes_ += traffic_scale * rng_.uniform(20e3, 200e3);
    net_tx_bytes_ += traffic_scale * rng_.uniform(10e3, 100e3);
  }
}

HostSnapshot SimSystem::snapshot() {
  MutexLock lock(mu_);
  step_locked();
  HostSnapshot snap = base_;
  snap.mem_free_kb = static_cast<std::int64_t>(mem_free_kb_);
  snap.swap_free_kb = snap.swap_total_kb;  // swap untouched in the model
  snap.load1 = load_;
  snap.load5 = load5_;
  snap.load15 = load15_;
  snap.uptime = clock_.now();
  snap.disk_free_kb = static_cast<std::int64_t>(disk_free_kb_);
  snap.net_rx_bytes = static_cast<std::int64_t>(net_rx_bytes_);
  snap.net_tx_bytes = static_cast<std::int64_t>(net_tx_bytes_);
  return snap;
}

double SimSystem::cpu_load() {
  MutexLock lock(mu_);
  step_locked();
  return load_;
}

void SimSystem::add_load(double delta) {
  MutexLock lock(mu_);
  step_locked();
  external_load_ = std::max(0.0, external_load_ + delta);
}

void SimSystem::add_file(const std::string& dir, const std::string& name) {
  MutexLock lock(mu_);
  auto& entries = dirs_[dir];
  if (std::find(entries.begin(), entries.end(), name) == entries.end()) {
    entries.push_back(name);
  }
}

std::vector<std::string> SimSystem::list_dir(const std::string& dir) const {
  MutexLock lock(mu_);
  auto it = dirs_.find(dir);
  return it == dirs_.end() ? std::vector<std::string>{} : it->second;
}

Result<std::string> SimSystem::read_proc(const std::string& path) {
  HostSnapshot snap = snapshot();
  if (path == "/proc/meminfo") {
    return strings::format(
        "MemTotal: %lld kB\nMemFree: %lld kB\nSwapTotal: %lld kB\nSwapFree: %lld kB\n",
        static_cast<long long>(snap.mem_total_kb), static_cast<long long>(snap.mem_free_kb),
        static_cast<long long>(snap.swap_total_kb), static_cast<long long>(snap.swap_free_kb));
  }
  if (path == "/proc/loadavg") {
    return strings::format("%.2f %.2f %.2f 1/1 1\n", snap.load1, snap.load5, snap.load15);
  }
  if (path == "/proc/diskstats") {
    return strings::format("DiskTotal: %lld kB\nDiskFree: %lld kB\n",
                           static_cast<long long>(snap.disk_total_kb),
                           static_cast<long long>(snap.disk_free_kb));
  }
  if (path == "/proc/net/dev") {
    return strings::format("rx_bytes: %lld\ntx_bytes: %lld\n",
                           static_cast<long long>(snap.net_rx_bytes),
                           static_cast<long long>(snap.net_tx_bytes));
  }
  if (path == "/proc/cpuinfo") {
    std::string out;
    for (int i = 0; i < snap.cpu_count; ++i) {
      out += strings::format("processor: %d\nmodel name: %s\ncpu MHz: %d\n", i,
                             snap.cpu_model.c_str(), snap.cpu_mhz);
    }
    return out;
  }
  return Error(ErrorCode::kNotFound, "no such proc file: " + path);
}

}  // namespace ig::exec
