#include "exec/runner.hpp"

namespace ig::exec {

void run_and_record(CommandRegistry& registry, JobTable& table, JobId id,
                    const JobRequest& request) {
  auto token = table.token(id);
  if (token == nullptr || token->cancelled()) {
    table.set_cancelled(id, "cancelled before execution");
    return;
  }
  table.set_active(id);

  const rsl::JobSpec& spec = request.spec;
  std::string output;
  int exit_code = 0;
  // GRAM's (count=N) runs N instances; we run them sequentially on the
  // simulated host and concatenate their output.
  for (int i = 0; i < spec.count; ++i) {
    auto result = registry.run(spec.executable, spec.arguments, token.get());
    if (!result.ok()) {
      if (result.code() == ErrorCode::kCancelled) {
        table.set_cancelled(id, "cancelled during execution");
        return;
      }
      // Unknown executable and similar: shell convention, exit 127.
      table.finish(id, 127, std::move(output), result.error().to_string());
      return;
    }
    output += result->output;
    if (result->exit_code != 0 && exit_code == 0) exit_code = result->exit_code;
  }
  table.finish(id, exit_code, std::move(output),
               exit_code == 0 ? "" : "command exited nonzero");
}

}  // namespace ig::exec
