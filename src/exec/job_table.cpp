#include "exec/job_table.hpp"

#include "common/id.hpp"

namespace ig::exec {

std::string_view to_string(JobState state) {
  switch (state) {
    case JobState::kPending:
      return "PENDING";
    case JobState::kActive:
      return "ACTIVE";
    case JobState::kDone:
      return "DONE";
    case JobState::kFailed:
      return "FAILED";
    case JobState::kCancelled:
      return "CANCELLED";
  }
  return "UNKNOWN";
}

bool is_terminal(JobState state) {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

JobId JobTable::create(JobRequest request) {
  MutexLock lock(mu_);
  JobId id = IdGenerator::next();
  Entry entry;
  entry.status.id = id;
  entry.status.state = JobState::kPending;
  entry.status.submitted = clock_.now();
  entry.request = std::move(request);
  jobs_.emplace(id, std::move(entry));
  return id;
}

Result<JobStatus> JobTable::status(JobId id) const {
  MutexLock lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return Error(ErrorCode::kNotFound, "no such job: " + std::to_string(id));
  return it->second.status;
}

Result<JobRequest> JobTable::request(JobId id) const {
  MutexLock lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return Error(ErrorCode::kNotFound, "no such job: " + std::to_string(id));
  return it->second.request;
}

void JobTable::set_active(JobId id) {
  MutexLock lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end() || is_terminal(it->second.status.state)) return;
  it->second.status.state = JobState::kActive;
  it->second.status.started = clock_.now();
  cv_.notify_all();
}

void JobTable::finish(JobId id, int exit_code, std::string output, std::string error) {
  MutexLock lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end() || is_terminal(it->second.status.state)) return;
  JobStatus& status = it->second.status;
  status.exit_code = exit_code;
  status.output = std::move(output);
  status.error = std::move(error);
  status.finished = clock_.now();
  status.state = exit_code == 0 ? JobState::kDone : JobState::kFailed;
  cv_.notify_all();
}

void JobTable::set_cancelled(JobId id, std::string reason) {
  MutexLock lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end() || is_terminal(it->second.status.state)) return;
  it->second.status.state = JobState::kCancelled;
  it->second.status.error = std::move(reason);
  it->second.status.finished = clock_.now();
  cv_.notify_all();
}

Status JobTable::request_cancel(JobId id) {
  MutexLock lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return Error(ErrorCode::kNotFound, "no such job: " + std::to_string(id));
  Entry& entry = it->second;
  if (is_terminal(entry.status.state)) {
    return Error(ErrorCode::kInvalidArgument,
                 "job already terminal: " + std::string(to_string(entry.status.state)));
  }
  entry.cancel->cancel();
  if (entry.status.state == JobState::kPending) {
    entry.status.state = JobState::kCancelled;
    entry.status.error = "cancelled before execution";
    entry.status.finished = clock_.now();
    cv_.notify_all();
  }
  return Status::success();
}

std::shared_ptr<CancelToken> JobTable::token(JobId id) const {
  MutexLock lock(mu_);
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second.cancel;
}

Result<JobStatus> JobTable::wait(JobId id, Duration timeout) const {
  MutexLock lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return Error(ErrorCode::kNotFound, "no such job: " + std::to_string(id));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::microseconds(timeout.count());
  bool done = is_terminal(it->second.status.state);
  bool timed_out = false;
  while (!done && !timed_out) {
    timed_out = cv_.wait_until(mu_, deadline) == std::cv_status::timeout;
    it = jobs_.find(id);
    if (it == jobs_.end()) return Error(ErrorCode::kNotFound, "job vanished while waiting");
    done = is_terminal(it->second.status.state);
  }
  if (!done) {
    return Error(ErrorCode::kTimeout,
                 "job not terminal after wait: " + std::string(to_string(it->second.status.state)));
  }
  return it->second.status;
}

std::vector<JobId> JobTable::pending() const {
  MutexLock lock(mu_);
  std::vector<JobId> out;
  for (const auto& [id, entry] : jobs_) {
    if (entry.status.state == JobState::kPending) out.push_back(id);
  }
  return out;
}

std::size_t JobTable::size() const {
  MutexLock lock(mu_);
  return jobs_.size();
}

}  // namespace ig::exec
