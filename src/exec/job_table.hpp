// Shared job bookkeeping for the execution backends: state table,
// per-job cancel tokens, and condition-variable based waiting.
#pragma once

#include <map>
#include <memory>

#include "common/sync.hpp"
#include "exec/command.hpp"
#include "exec/job.hpp"

namespace ig::exec {

class JobTable {
 public:
  explicit JobTable(const Clock& clock) : clock_(clock) {}

  /// Create a job in kPending and return its id.
  JobId create(JobRequest request);

  Result<JobStatus> status(JobId id) const;
  Result<JobRequest> request(JobId id) const;

  /// Transition helpers. All notify waiters.
  void set_active(JobId id);
  void finish(JobId id, int exit_code, std::string output, std::string error);
  void set_cancelled(JobId id, std::string reason);

  /// Fire the job's cancel token and, if the job is still pending, move it
  /// straight to kCancelled. Active jobs transition when their runner
  /// observes the token.
  Status request_cancel(JobId id);

  /// The cancel token runners must poll. Valid for the table's lifetime.
  std::shared_ptr<CancelToken> token(JobId id) const;

  /// Block (wall time) until terminal or timeout.
  Result<JobStatus> wait(JobId id, Duration timeout) const;

  /// Ids of all jobs currently in kPending, oldest first.
  std::vector<JobId> pending() const;

  std::size_t size() const;

 private:
  struct Entry {
    JobStatus status;
    JobRequest request;
    std::shared_ptr<CancelToken> cancel = std::make_shared<CancelToken>();
  };

  const Clock& clock_;
  mutable Mutex mu_{lock_rank::kJobTable, "exec.JobTable"};
  mutable CondVar cv_;
  std::map<JobId, Entry> jobs_ IG_GUARDED_BY(mu_);
};

}  // namespace ig::exec
