// Fork backend: the GRAM "unix process fork" scheduler interface. Every
// submitted job starts executing immediately on its own worker thread —
// no queueing, no admission control.
#pragma once

#include <memory>
#include <thread>
#include <vector>

#include "common/sync.hpp"
#include "exec/job.hpp"
#include "exec/job_table.hpp"
#include "exec/runner.hpp"

namespace ig::exec {

class ForkBackend final : public LocalJobExecution {
 public:
  /// `registry` and the clock behind it must outlive the backend.
  ForkBackend(std::shared_ptr<CommandRegistry> registry, const Clock& clock);
  ~ForkBackend() override;

  std::string name() const override { return "fork"; }
  Result<JobId> submit(const JobRequest& request) override;
  Result<JobStatus> status(JobId id) const override;
  Status cancel(JobId id) override;
  Result<JobStatus> wait(JobId id, Duration timeout) override;

 private:
  std::shared_ptr<CommandRegistry> registry_;
  JobTable table_;
  Mutex threads_mu_{lock_rank::kExecBackend, "exec.ForkBackend.threads"};
  std::vector<std::jthread> threads_ IG_GUARDED_BY(threads_mu_);
};

}  // namespace ig::exec
