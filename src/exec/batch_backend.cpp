#include "exec/batch_backend.hpp"

#include <algorithm>

namespace ig::exec {

BatchBackend::BatchBackend(std::shared_ptr<CommandRegistry> registry, const Clock& clock,
                           BatchConfig config, std::shared_ptr<SimSystem> system)
    : registry_(std::move(registry)),
      config_(std::move(config)),
      system_(std::move(system)),
      table_(clock) {
  if (config_.queues.empty()) config_.queues["batch"] = 0;
  workers_.reserve(static_cast<std::size_t>(config_.nodes));
  for (int i = 0; i < config_.nodes; ++i) {
    workers_.emplace_back([this](std::stop_token stop) { worker_loop(stop); });
  }
}

BatchBackend::~BatchBackend() {
  {
    MutexLock lock(queue_mu_);
    shutting_down_ = true;
  }
  for (auto& w : workers_) w.request_stop();
  queue_cv_.notify_all();
}

void BatchBackend::set_telemetry(std::shared_ptr<obs::Telemetry> telemetry) {
  MutexLock lock(queue_mu_);
  telemetry_ = std::move(telemetry);
  if (telemetry_ == nullptr) {
    queue_depth_ = nullptr;
    jobs_queued_ = nullptr;
    return;
  }
  queue_depth_ = &telemetry_->metrics().gauge(obs::metric::kExecQueueDepth);
  jobs_queued_ = &telemetry_->metrics().counter(obs::metric::kExecJobsQueued);
  queue_depth_->set(static_cast<std::int64_t>(queue_.size()));
}

Result<JobId> BatchBackend::submit(const JobRequest& request) {
  if (request.spec.executable.empty()) {
    return Error(ErrorCode::kInvalidArgument, "job has no executable");
  }
  std::string queue = request.spec.queue.empty() ? config_.queues.begin()->first
                                                 : request.spec.queue;
  auto it = config_.queues.find(queue);
  if (it == config_.queues.end()) {
    return Error(ErrorCode::kNotFound, "no such queue: " + queue);
  }
  JobId id = table_.create(request);
  {
    MutexLock lock(queue_mu_);
    queue_.push_back(QueuedJob{id, request, it->second});
    if (jobs_queued_ != nullptr) jobs_queued_->add();
    if (queue_depth_ != nullptr) queue_depth_->set(static_cast<std::int64_t>(queue_.size()));
  }
  queue_cv_.notify_one();
  return id;
}

Result<JobStatus> BatchBackend::status(JobId id) const { return table_.status(id); }

Status BatchBackend::cancel(JobId id) {
  auto status = table_.request_cancel(id);
  if (status.ok()) {
    // Drop it from the queue if it had not started.
    MutexLock lock(queue_mu_);
    std::erase_if(queue_, [id](const QueuedJob& j) { return j.id == id; });
    if (queue_depth_ != nullptr) queue_depth_->set(static_cast<std::int64_t>(queue_.size()));
  }
  return status;
}

Result<JobStatus> BatchBackend::wait(JobId id, Duration timeout) {
  return table_.wait(id, timeout);
}

std::size_t BatchBackend::queued_jobs() const {
  MutexLock lock(queue_mu_);
  return queue_.size();
}

void BatchBackend::worker_loop(const std::stop_token& stop) {
  while (true) {
    QueuedJob job;
    {
      MutexLock lock(queue_mu_);
      while (!shutting_down_ && !stop.stop_requested() && queue_.empty()) {
        queue_cv_.wait(queue_mu_);
      }
      if ((shutting_down_ || stop.stop_requested()) && queue_.empty()) return;
      if (queue_.empty()) continue;
      // Highest priority first; FIFO within a priority level.
      auto best = std::max_element(
          queue_.begin(), queue_.end(),
          [](const QueuedJob& a, const QueuedJob& b) { return a.priority < b.priority; });
      job = std::move(*best);
      queue_.erase(best);
      if (queue_depth_ != nullptr) queue_depth_->set(static_cast<std::int64_t>(queue_.size()));
    }
    if (system_ != nullptr && config_.load_per_job > 0.0) {
      system_->add_load(config_.load_per_job);
    }
    run_and_record(*registry_, table_, job.id, job.request);
    if (system_ != nullptr && config_.load_per_job > 0.0) {
      system_->add_load(-config_.load_per_job);
    }
  }
}

}  // namespace ig::exec
