// The backend tier of GRAM (paper Sec. 2): a uniform job-execution
// interface that "is easily portable to various scheduling systems".
// This header defines the job model and the LocalJobExecution interface;
// the concrete backends (fork, batch/PBS-shaped, matchmaking/Condor-
// shaped, sandbox) live in sibling headers.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "rsl/xrsl.hpp"

namespace ig::exec {

using JobId = std::uint64_t;

/// GRAM job states (the classic GRAM 1.x state machine).
enum class JobState { kPending, kActive, kDone, kFailed, kCancelled };

std::string_view to_string(JobState state);
bool is_terminal(JobState state);

/// What a backend knows about one job.
struct JobStatus {
  JobId id = 0;
  JobState state = JobState::kPending;
  int exit_code = -1;
  std::string output;       ///< captured stdout (redirectable to the client)
  std::string error;        ///< failure description, if any
  TimePoint submitted{0};
  TimePoint started{0};
  TimePoint finished{0};
};

/// A job as handed to a backend: the RSL job specification plus the local
/// account it runs under (the gridmap's output).
struct JobRequest {
  rsl::JobSpec spec;
  std::string local_user;
};

/// Backend interface. Implementations must be thread-safe: the job manager
/// polls status concurrently with submissions.
class LocalJobExecution {
 public:
  virtual ~LocalJobExecution() = default;

  /// Scheduler family name ("fork", "batch", "matchmaking", "sandbox").
  virtual std::string name() const = 0;

  /// Named queues this backend exposes (batch schedulers); empty for
  /// queueless backends. Surfaced through service reflection.
  virtual std::vector<std::string> queues() const { return {}; }

  /// Accept a job; returns its id immediately. Validation failures
  /// (malformed request) fail here; execution failures surface in status.
  virtual Result<JobId> submit(const JobRequest& request) = 0;

  virtual Result<JobStatus> status(JobId id) const = 0;

  /// Request cancellation. Succeeds if the job exists and is not already
  /// terminal; the job transitions to kCancelled (possibly asynchronously).
  virtual Status cancel(JobId id) = 0;

  /// Block until the job is terminal or `timeout` elapses (wall time).
  virtual Result<JobStatus> wait(JobId id, Duration timeout) = 0;
};

}  // namespace ig::exec
