#include "exec/checkpoint.hpp"

#include <fstream>

#include "common/strings.hpp"
#include "format/ldif.hpp"

namespace ig::exec {

void CheckpointStore::save(const std::string& key, std::string data) {
  MutexLock lock(mu_);
  entries_[key] = std::move(data);
}

Result<std::string> CheckpointStore::load(const std::string& key) const {
  MutexLock lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return Error(ErrorCode::kNotFound, "no checkpoint for key: " + key);
  }
  return it->second;
}

void CheckpointStore::erase(const std::string& key) {
  MutexLock lock(mu_);
  entries_.erase(key);
}

bool CheckpointStore::contains(const std::string& key) const {
  MutexLock lock(mu_);
  return entries_.count(key) > 0;
}

std::size_t CheckpointStore::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

Status CheckpointStore::save_to_file(const std::string& path) const {
  MutexLock lock(mu_);
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Error(ErrorCode::kIoError, "cannot write checkpoint file: " + path);
  for (const auto& [key, data] : entries_) {
    out << format::base64_encode(key) << ' ' << format::base64_encode(data) << '\n';
  }
  return Status::success();
}

Result<CheckpointStore> CheckpointStore::load_from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Error(ErrorCode::kIoError, "cannot open checkpoint file: " + path);
  CheckpointStore store;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (strings::trim(line).empty()) continue;
    auto fields = strings::split_fields(line, ' ');
    if (fields.size() != 2) {
      return Error(ErrorCode::kParseError,
                   strings::format("checkpoint file line %d malformed", line_no));
    }
    auto key = format::base64_decode(fields[0]);
    auto data = format::base64_decode(fields[1]);
    if (!key.ok() || !data.ok()) {
      return Error(ErrorCode::kParseError,
                   strings::format("checkpoint file line %d: bad base64", line_no));
    }
    store.save(key.value(), std::move(data.value()));
  }
  return store;
}

}  // namespace ig::exec
