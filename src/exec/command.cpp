#include "exec/command.hpp"

#include "common/strings.hpp"

namespace ig::exec {

CommandRegistry::CommandRegistry(Clock& clock, std::uint64_t seed)
    : clock_(clock), rng_(seed) {}

void CommandRegistry::register_command(const std::string& path, CommandFn fn, Duration cost) {
  MutexLock lock(mu_);
  commands_[path] = Entry{std::move(fn), cost, 0.0};
}

bool CommandRegistry::contains(const std::string& path) const {
  MutexLock lock(mu_);
  return commands_.count(path) > 0;
}

Result<Duration> CommandRegistry::cost(const std::string& path) const {
  MutexLock lock(mu_);
  auto it = commands_.find(path);
  if (it == commands_.end()) return Error(ErrorCode::kNotFound, "no such command: " + path);
  return it->second.cost;
}

std::vector<std::string> CommandRegistry::paths() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(commands_.size());
  for (const auto& [path, entry] : commands_) out.push_back(path);
  return out;
}

std::pair<std::string, std::vector<std::string>> split_command_line(const std::string& line) {
  auto fields = strings::split_fields(line, ' ');
  if (fields.empty()) return {"", {}};
  std::string path = fields.front();
  fields.erase(fields.begin());
  return {path, fields};
}

Result<CommandResult> CommandRegistry::run(const std::string& command_line,
                                           const CancelToken* cancel) {
  auto [path, args] = split_command_line(command_line);
  return run(path, args, cancel);
}

Result<CommandResult> CommandRegistry::run(const std::string& path,
                                           const std::vector<std::string>& args,
                                           const CancelToken* cancel) {
  Entry entry;
  std::shared_ptr<FaultInjector> injector;
  {
    MutexLock lock(mu_);
    auto it = commands_.find(path);
    if (it == commands_.end()) {
      return Error(ErrorCode::kNotFound, "no such command: " + path);
    }
    entry = it->second;
    injector = fault_injector_;
  }
  FaultDecision fault;
  if (injector != nullptr) fault = injector->evaluate(fault_point::kExecRun);
  if (fault.fire && fault.kind == FaultKind::kError) {
    return fault.to_error(fault_point::kExecRun);
  }
  // Charge the execution cost in slices so cancellation stays responsive.
  Duration cost = entry.cost;
  if (fault.fire && fault.kind == FaultKind::kLatency) cost += fault.latency;
  // A crash kills the command halfway through its cost: work was charged
  // but no usable output came back, exactly what restart recovery needs.
  Duration crash_after =
      fault.fire && fault.kind == FaultKind::kCrash ? cost / 2 : Duration(-1);
  Duration remaining = cost;
  const Duration slice = ms(1);
  while (remaining.count() > 0) {
    if (cancel != nullptr && cancel->cancelled()) {
      return Error(ErrorCode::kCancelled, "command cancelled: " + path);
    }
    if (crash_after.count() >= 0 && cost - remaining >= crash_after) {
      executions_.fetch_add(1, std::memory_order_relaxed);
      return CommandResult{137, "injected crash: " + path + "\n"};
    }
    Duration step = std::min(remaining, slice);
    clock_.sleep_for(step);
    remaining -= step;
  }
  if (crash_after.count() >= 0) {
    executions_.fetch_add(1, std::memory_order_relaxed);
    return CommandResult{137, "injected crash: " + path + "\n"};
  }
  if (cancel != nullptr && cancel->cancelled()) {
    return Error(ErrorCode::kCancelled, "command cancelled: " + path);
  }
  executions_.fetch_add(1, std::memory_order_relaxed);
  bool inject_failure = false;
  if (entry.failure_rate > 0.0) {
    MutexLock lock(mu_);  // rng_ is not thread-safe
    inject_failure = rng_.chance(entry.failure_rate);
  }
  if (inject_failure) {
    return CommandResult{1, "injected failure: " + path + "\n"};
  }
  return entry.fn(args);
}

void CommandRegistry::set_failure_rate(const std::string& path, double probability) {
  MutexLock lock(mu_);
  auto it = commands_.find(path);
  if (it != commands_.end()) it->second.failure_rate = probability;
}

void CommandRegistry::set_fault_injector(std::shared_ptr<FaultInjector> injector) {
  MutexLock lock(mu_);
  fault_injector_ = std::move(injector);
}

std::shared_ptr<CommandRegistry> CommandRegistry::standard(Clock& clock,
                                                           std::shared_ptr<SimSystem> system,
                                                           std::uint64_t seed) {
  auto registry = std::make_shared<CommandRegistry>(clock, seed);
  auto sys = system;  // captured by every command

  registry->register_command(
      "date",
      [&clock](const std::vector<std::string>& args) {
        // Render the virtual clock as seconds since the service epoch;
        // "-u" (Table 1) is accepted and ignored.
        (void)args;
        auto now = clock.now();
        return CommandResult{
            0, strings::format("date: T+%lld.%06llds\n",
                               static_cast<long long>(now.count() / 1000000),
                               static_cast<long long>(now.count() % 1000000))};
      },
      ms(2));

  registry->register_command(
      "/bin/hostname",
      [sys](const std::vector<std::string>&) {
        return CommandResult{0, "hostname: " + sys->hostname() + "\n"};
      },
      ms(1));

  registry->register_command(
      "/usr/bin/uptime",
      [sys](const std::vector<std::string>&) {
        auto snap = sys->snapshot();
        return CommandResult{
            0, strings::format("uptime: %lld\nload1: %.2f\nload5: %.2f\nload15: %.2f\n",
                               static_cast<long long>(snap.uptime.count() / 1000000),
                               snap.load1, snap.load5, snap.load15)};
      },
      ms(3));

  registry->register_command(
      "/sbin/sysinfo.exe",
      [sys](const std::vector<std::string>& args) {
        auto snap = sys->snapshot();
        if (!args.empty() && args[0] == "-mem") {
          return CommandResult{
              0, strings::format("total: %lld\nfree: %lld\nswap_total: %lld\nswap_free: %lld\n",
                                 static_cast<long long>(snap.mem_total_kb),
                                 static_cast<long long>(snap.mem_free_kb),
                                 static_cast<long long>(snap.swap_total_kb),
                                 static_cast<long long>(snap.swap_free_kb))};
        }
        if (!args.empty() && args[0] == "-cpu") {
          return CommandResult{0, strings::format("model: %s\nmhz: %d\ncount: %d\n",
                                                  snap.cpu_model.c_str(), snap.cpu_mhz,
                                                  snap.cpu_count)};
        }
        return CommandResult{2, "usage: sysinfo.exe -mem|-cpu\n"};
      },
      ms(8));

  registry->register_command(
      "/usr/local/bin/cpuload.exe",
      [sys](const std::vector<std::string>&) {
        return CommandResult{0, strings::format("load: %.3f\n", sys->cpu_load())};
      },
      ms(10));

  registry->register_command(
      "/bin/ls",
      [sys](const std::vector<std::string>& args) {
        std::string dir = args.empty() ? "/" : args[0];
        auto entries = sys->list_dir(dir);
        std::string out;
        for (std::size_t i = 0; i < entries.size(); ++i) {
          out += strings::format("entry%zu: %s\n", i, entries[i].c_str());
        }
        out += strings::format("count: %zu\n", entries.size());
        return CommandResult{0, std::move(out)};
      },
      ms(4));

  registry->register_command(
      "/bin/echo",
      [](const std::vector<std::string>& args) {
        return CommandResult{0, strings::join(args, " ") + "\n"};
      },
      ms(1));

  registry->register_command(
      "/bin/cat",
      [sys](const std::vector<std::string>& args) {
        if (args.empty()) return CommandResult{1, "cat: missing operand\n"};
        auto content = sys->read_proc(args[0]);
        if (!content.ok()) return CommandResult{1, "cat: " + content.error().to_string() + "\n"};
        return CommandResult{0, content.value()};
      },
      ms(2));

  registry->register_command(
      "/bin/sleep",
      [&clock](const std::vector<std::string>& args) {
        // The cost model charges a fixed cost; sleep additionally charges
        // its argument (milliseconds), giving tests a tunable-length job.
        if (!args.empty()) {
          if (auto v = strings::parse_int(args[0]); v && *v > 0) clock.sleep_for(ms(*v));
        }
        return CommandResult{0, ""};
      },
      ms(1));

  registry->register_command(
      "/bin/df",
      [sys](const std::vector<std::string>&) {
        auto snap = sys->snapshot();
        return CommandResult{
            0, strings::format("total: %lld\nfree: %lld\nused_pct: %.1f\n",
                               static_cast<long long>(snap.disk_total_kb),
                               static_cast<long long>(snap.disk_free_kb),
                               100.0 * (1.0 - static_cast<double>(snap.disk_free_kb) /
                                                  static_cast<double>(snap.disk_total_kb)))};
      },
      ms(4));

  registry->register_command(
      "/sbin/netstat.exe",
      [sys](const std::vector<std::string>&) {
        auto snap = sys->snapshot();
        return CommandResult{0, strings::format("rx_bytes: %lld\ntx_bytes: %lld\n",
                                                static_cast<long long>(snap.net_rx_bytes),
                                                static_cast<long long>(snap.net_tx_bytes))};
      },
      ms(6));

  registry->register_command(
      "/bin/false",
      [](const std::vector<std::string>&) { return CommandResult{1, ""}; }, ms(1));

  return registry;
}

}  // namespace ig::exec
