// Simulated host system state.
//
// The paper's information providers shell out to commands like `date`,
// `/sbin/sysinfo.exe -mem` and `/usr/local/bin/cpuload.exe` (Table 1) or
// read the Linux /proc filesystem. Neither exists portably here, so this
// class is the substitution: one seeded, time-driven model of a host whose
// memory follows a bounded random walk and whose load follows an AR(1)
// process. Both the simulated commands and the simulated /proc files read
// from it, so every information-provider code path in the paper has a
// live, changing data source with deterministic replay.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/sync.hpp"

namespace ig::exec {

/// Snapshot of the simulated host at one instant.
struct HostSnapshot {
  std::int64_t mem_total_kb = 0;
  std::int64_t mem_free_kb = 0;
  std::int64_t swap_total_kb = 0;
  std::int64_t swap_free_kb = 0;
  double load1 = 0.0;
  double load5 = 0.0;
  double load15 = 0.0;
  int cpu_count = 0;
  int cpu_mhz = 0;
  std::string cpu_model;
  Duration uptime{0};
  std::int64_t disk_total_kb = 0;
  std::int64_t disk_free_kb = 0;
  std::int64_t net_rx_bytes = 0;  ///< cumulative since boot
  std::int64_t net_tx_bytes = 0;
};

class SimSystem {
 public:
  /// `clock` must outlive the system. Different seeds give different hosts.
  SimSystem(const Clock& clock, std::uint64_t seed, std::string hostname = "sim.host");

  const std::string& hostname() const { return hostname_; }

  /// Advance the internal processes up to the clock's now and snapshot.
  HostSnapshot snapshot();

  /// The 1-minute load average alone (the paper's CPULoad example).
  double cpu_load();

  /// External demand: running jobs push the load model up. The batch and
  /// matchmaking backends call this so info queries see job pressure.
  void add_load(double delta);

  /// Simulated directory tree for the `/bin/ls` command of Table 1.
  void add_file(const std::string& dir, const std::string& name);
  std::vector<std::string> list_dir(const std::string& dir) const;

  /// /proc-style file contents ("/proc/meminfo", "/proc/loadavg",
  /// "/proc/cpuinfo", "/proc/diskstats", "/proc/net/dev"); kNotFound for
  /// anything else.
  Result<std::string> read_proc(const std::string& path);

 private:
  void step_locked() IG_REQUIRES(mu_);

  const Clock& clock_;
  std::string hostname_;
  mutable Mutex mu_{lock_rank::kSimSystem, "exec.SimSystem"};
  Rng rng_ IG_GUARDED_BY(mu_);
  TimePoint last_step_ IG_GUARDED_BY(mu_){0};
  double mem_free_kb_ IG_GUARDED_BY(mu_);
  double load_ IG_GUARDED_BY(mu_);           ///< AR(1) state (1-minute load)
  double load5_ IG_GUARDED_BY(mu_) = 0.0;    ///< exponentially smoothed
  double load15_ IG_GUARDED_BY(mu_) = 0.0;
  double external_load_ IG_GUARDED_BY(mu_) = 0.0;
  double disk_free_kb_ IG_GUARDED_BY(mu_) = 0.0;
  double net_rx_bytes_ IG_GUARDED_BY(mu_) = 0.0;
  double net_tx_bytes_ IG_GUARDED_BY(mu_) = 0.0;
  HostSnapshot base_ IG_GUARDED_BY(mu_);
  std::map<std::string, std::vector<std::string>> dirs_ IG_GUARDED_BY(mu_);
};

}  // namespace ig::exec
