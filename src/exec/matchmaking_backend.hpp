// Matchmaking backend: a Condor-shaped scheduler simulation. Nodes
// advertise attributes (ClassAd style); jobs carry a requirements
// expression — a conjunction of comparisons over node attributes, read
// from the job's environment entry "requirements", e.g.
//
//   (environment=(requirements "mem_kb>=262144 && arch==sim"))
//
// Each node runs jobs it satisfies, FIFO among matching pending jobs.
// Jobs no configured node could ever satisfy are rejected at submit time
// (a deliberate divergence from Condor's idle-forever, so tests and
// clients see the mismatch immediately; see DESIGN.md).
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/sync.hpp"
#include "exec/job.hpp"
#include "exec/job_table.hpp"
#include "exec/runner.hpp"

namespace ig::exec {

/// One comparison in a requirements expression.
struct Requirement {
  enum class Cmp { kEq, kNeq, kLt, kGt, kLe, kGe };
  std::string attribute;
  Cmp op = Cmp::kEq;
  std::string value;

  friend bool operator==(const Requirement&, const Requirement&) = default;
};

/// Parse "a>=1 && b==x" (the "&&" separators are optional whitespace-wise).
Result<std::vector<Requirement>> parse_requirements(const std::string& text);

/// Node advertisement.
struct NodeSpec {
  std::string name;
  std::map<std::string, std::string> attributes;
};

/// True if every requirement holds for the node. Numeric comparison when
/// both sides parse as doubles, lexicographic otherwise; a missing
/// attribute fails the requirement.
bool satisfies(const NodeSpec& node, const std::vector<Requirement>& requirements);

class MatchmakingBackend final : public LocalJobExecution {
 public:
  MatchmakingBackend(std::shared_ptr<CommandRegistry> registry, const Clock& clock,
                     std::vector<NodeSpec> nodes,
                     std::shared_ptr<SimSystem> system = nullptr,
                     double load_per_job = 0.5);
  ~MatchmakingBackend() override;

  std::string name() const override { return "matchmaking"; }
  Result<JobId> submit(const JobRequest& request) override;
  Result<JobStatus> status(JobId id) const override;
  Status cancel(JobId id) override;
  Result<JobStatus> wait(JobId id, Duration timeout) override;

  std::size_t queued_jobs() const;

 private:
  struct PendingJob {
    JobId id;
    JobRequest request;
    std::vector<Requirement> requirements;
  };

  void node_loop(const NodeSpec& node, const std::stop_token& stop);

  std::shared_ptr<CommandRegistry> registry_;
  std::vector<NodeSpec> nodes_;
  std::shared_ptr<SimSystem> system_;
  double load_per_job_;
  JobTable table_;

  mutable Mutex queue_mu_{lock_rank::kExecBackend, "exec.MatchmakingBackend.queue"};
  CondVar queue_cv_;
  std::deque<PendingJob> queue_ IG_GUARDED_BY(queue_mu_);
  bool shutting_down_ IG_GUARDED_BY(queue_mu_) = false;

  /// Started in the constructor, joined in shutdown; not otherwise touched.
  std::vector<std::jthread> workers_;
};

}  // namespace ig::exec
