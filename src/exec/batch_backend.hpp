// Batch backend: a PBS/LSF-shaped scheduler simulation. Jobs enter named
// queues with priorities; a fixed pool of simulated nodes drains them in
// priority order, FIFO within a queue. Running jobs push load into the
// SimSystem so information queries observe job pressure — the coupling the
// paper's load-aware scheduling scenarios rely on.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/sync.hpp"
#include "exec/job.hpp"
#include "exec/job_table.hpp"
#include "exec/runner.hpp"
#include "obs/telemetry.hpp"

namespace ig::exec {

struct BatchConfig {
  int nodes = 2;
  /// Queue name -> priority (higher drains first). Empty = single default
  /// queue "batch" at priority 0; jobs naming an unknown queue are
  /// rejected at submit time, matching PBS behaviour.
  std::map<std::string, int> queues;
  /// Load added to the SimSystem per running job (0 to decouple).
  double load_per_job = 0.5;
};

class BatchBackend final : public LocalJobExecution {
 public:
  BatchBackend(std::shared_ptr<CommandRegistry> registry, const Clock& clock,
               BatchConfig config = {}, std::shared_ptr<SimSystem> system = nullptr);
  ~BatchBackend() override;

  std::string name() const override { return "batch"; }
  std::vector<std::string> queues() const override {
    std::vector<std::string> out;
    for (const auto& [name, priority] : config_.queues) out.push_back(name);
    return out;
  }
  Result<JobId> submit(const JobRequest& request) override;
  Result<JobStatus> status(JobId id) const override;
  Status cancel(JobId id) override;
  Result<JobStatus> wait(JobId id, Duration timeout) override;

  /// Jobs currently queued (not yet running) — a GRIS-visible quantity.
  std::size_t queued_jobs() const;
  int nodes() const { return config_.nodes; }

  /// Track queue depth (exec.queue.depth gauge) and accepted submissions
  /// (exec.jobs.queued counter). Nullable.
  void set_telemetry(std::shared_ptr<obs::Telemetry> telemetry);

 private:
  struct QueuedJob {
    JobId id;
    JobRequest request;
    int priority;
  };

  void worker_loop(const std::stop_token& stop);

  std::shared_ptr<CommandRegistry> registry_;
  BatchConfig config_;
  std::shared_ptr<SimSystem> system_;
  JobTable table_;

  mutable Mutex queue_mu_{lock_rank::kExecBackend, "exec.BatchBackend.queue"};
  CondVar queue_cv_;
  std::deque<QueuedJob> queue_ IG_GUARDED_BY(queue_mu_);
  bool shutting_down_ IG_GUARDED_BY(queue_mu_) = false;

  std::shared_ptr<obs::Telemetry> telemetry_ IG_GUARDED_BY(queue_mu_);
  obs::Gauge* queue_depth_ IG_GUARDED_BY(queue_mu_) = nullptr;
  obs::Counter* jobs_queued_ IG_GUARDED_BY(queue_mu_) = nullptr;

  /// Started in the constructor, joined in shutdown; not otherwise touched.
  std::vector<std::jthread> workers_;
};

}  // namespace ig::exec
