#include "exec/matchmaking_backend.hpp"

#include "common/strings.hpp"

namespace ig::exec {

Result<std::vector<Requirement>> parse_requirements(const std::string& text) {
  std::vector<Requirement> out;
  std::string cleaned = strings::replace_all(text, "&&", " ");
  for (const auto& term : strings::split_fields(cleaned, ' ')) {
    // Longest operators first so ">=" is not read as ">" + "=".
    static const std::pair<std::string_view, Requirement::Cmp> kOps[] = {
        {"==", Requirement::Cmp::kEq}, {"!=", Requirement::Cmp::kNeq},
        {">=", Requirement::Cmp::kGe}, {"<=", Requirement::Cmp::kLe},
        {">", Requirement::Cmp::kGt},  {"<", Requirement::Cmp::kLt},
    };
    Requirement req;
    bool found = false;
    for (const auto& [sym, op] : kOps) {
      std::size_t pos = term.find(sym);
      if (pos == std::string::npos) continue;
      req.attribute = std::string(strings::trim(term.substr(0, pos)));
      req.op = op;
      req.value = std::string(strings::trim(term.substr(pos + sym.size())));
      found = true;
      break;
    }
    if (!found || req.attribute.empty() || req.value.empty()) {
      return Error(ErrorCode::kParseError, "malformed requirement term: " + term);
    }
    out.push_back(std::move(req));
  }
  return out;
}

bool satisfies(const NodeSpec& node, const std::vector<Requirement>& requirements) {
  for (const Requirement& req : requirements) {
    auto it = node.attributes.find(req.attribute);
    if (it == node.attributes.end()) return false;
    const std::string& have = it->second;
    int cmp;
    auto lhs = strings::parse_double(have);
    auto rhs = strings::parse_double(req.value);
    if (lhs && rhs) {
      cmp = *lhs < *rhs ? -1 : (*lhs > *rhs ? 1 : 0);
    } else {
      cmp = have.compare(req.value);
      cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
    }
    bool ok = false;
    switch (req.op) {
      case Requirement::Cmp::kEq:
        ok = cmp == 0;
        break;
      case Requirement::Cmp::kNeq:
        ok = cmp != 0;
        break;
      case Requirement::Cmp::kLt:
        ok = cmp < 0;
        break;
      case Requirement::Cmp::kGt:
        ok = cmp > 0;
        break;
      case Requirement::Cmp::kLe:
        ok = cmp <= 0;
        break;
      case Requirement::Cmp::kGe:
        ok = cmp >= 0;
        break;
    }
    if (!ok) return false;
  }
  return true;
}

MatchmakingBackend::MatchmakingBackend(std::shared_ptr<CommandRegistry> registry,
                                       const Clock& clock, std::vector<NodeSpec> nodes,
                                       std::shared_ptr<SimSystem> system, double load_per_job)
    : registry_(std::move(registry)),
      nodes_(std::move(nodes)),
      system_(std::move(system)),
      load_per_job_(load_per_job),
      table_(clock) {
  workers_.reserve(nodes_.size());
  for (const NodeSpec& node : nodes_) {
    workers_.emplace_back(
        [this, node](std::stop_token stop) { node_loop(node, stop); });
  }
}

MatchmakingBackend::~MatchmakingBackend() {
  {
    MutexLock lock(queue_mu_);
    shutting_down_ = true;
  }
  for (auto& w : workers_) w.request_stop();
  queue_cv_.notify_all();
}

Result<JobId> MatchmakingBackend::submit(const JobRequest& request) {
  if (request.spec.executable.empty()) {
    return Error(ErrorCode::kInvalidArgument, "job has no executable");
  }
  std::vector<Requirement> requirements;
  auto it = request.spec.environment.find("requirements");
  if (it != request.spec.environment.end()) {
    auto parsed = parse_requirements(it->second);
    if (!parsed.ok()) return parsed.error();
    requirements = std::move(parsed.value());
  }
  bool matchable = false;
  for (const NodeSpec& node : nodes_) {
    if (satisfies(node, requirements)) {
      matchable = true;
      break;
    }
  }
  if (!matchable) {
    return Error(ErrorCode::kNotFound, "no node satisfies the job requirements");
  }
  JobId id = table_.create(request);
  {
    MutexLock lock(queue_mu_);
    queue_.push_back(PendingJob{id, request, std::move(requirements)});
  }
  queue_cv_.notify_all();
  return id;
}

Result<JobStatus> MatchmakingBackend::status(JobId id) const { return table_.status(id); }

Status MatchmakingBackend::cancel(JobId id) {
  auto status = table_.request_cancel(id);
  if (status.ok()) {
    MutexLock lock(queue_mu_);
    std::erase_if(queue_, [id](const PendingJob& j) { return j.id == id; });
  }
  return status;
}

Result<JobStatus> MatchmakingBackend::wait(JobId id, Duration timeout) {
  return table_.wait(id, timeout);
}

std::size_t MatchmakingBackend::queued_jobs() const {
  MutexLock lock(queue_mu_);
  return queue_.size();
}

void MatchmakingBackend::node_loop(const NodeSpec& node, const std::stop_token& stop) {
  while (true) {
    PendingJob job;
    bool have_job = false;
    {
      MutexLock lock(queue_mu_);
      for (;;) {
        if (shutting_down_ || stop.stop_requested()) return;
        bool matched = false;
        for (const PendingJob& pending : queue_) {
          if (satisfies(node, pending.requirements)) {
            matched = true;
            break;
          }
        }
        if (matched) break;
        queue_cv_.wait(queue_mu_);
      }
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (satisfies(node, it->requirements)) {
          job = std::move(*it);
          queue_.erase(it);
          have_job = true;
          break;
        }
      }
    }
    if (!have_job) continue;
    if (system_ != nullptr && load_per_job_ > 0.0) system_->add_load(load_per_job_);
    run_and_record(*registry_, table_, job.id, job.request);
    if (system_ != nullptr && load_per_job_ > 0.0) system_->add_load(-load_per_job_);
  }
}

}  // namespace ig::exec
