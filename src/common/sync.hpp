// Annotated synchronization primitives — the only place in src/ allowed
// to touch <mutex>/<shared_mutex>/<condition_variable> directly
// (tools/lint.py enforces this).
//
// Two proofs hang off this header:
//
//  1. *Compile time*: ig::Mutex / ig::SharedMutex are Clang capabilities
//     (common/annotations.hpp), so a Clang build with -Wthread-safety
//     (-DIG_THREAD_SAFETY=ON) verifies that every IG_GUARDED_BY field is
//     only touched under its mutex and every IG_REQUIRES helper is only
//     called with the lock held — on every path, not just the ones a test
//     happens to interleave.
//
//  2. *Run time*: every Mutex/SharedMutex may carry a lock rank
//     (ig::lock_rank below). The validator keeps a thread-local stack of
//     held locks and checks, at each acquisition, that ranked locks are
//     acquired in strictly increasing rank order and that no lock is
//     acquired recursively. A violation reports both acquisition
//     backtraces and aborts (or calls the installed handler — the test
//     hook). The checks are compiled in but gated on a runtime flag whose
//     default is on only in debug builds (IG_DEBUG_LOCK_ORDER, wired by
//     CMake for CMAKE_BUILD_TYPE=Debug); a Release lock costs one relaxed
//     atomic load extra.
//
// Wrappers mirror the std primitives they replace: MutexLock ~
// std::unique_lock (relockable), ReaderLock/WriterLock ~
// std::shared_lock/std::unique_lock over a shared mutex, CondVar ~
// std::condition_variable waiting on an ig::Mutex. Predicate waits are
// deliberately not offered: Clang's analysis cannot see that a predicate
// lambda runs under the lock, so call sites spell the
// `while (!pred) cv.wait(mu);` loop out — which the analysis then checks.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>  // lint-allow-raw-sync: this header IS the wrapper
#include <cstdint>
#include <memory>
#include <mutex>               // lint-allow-raw-sync: this header IS the wrapper
#include <shared_mutex>        // lint-allow-raw-sync: this header IS the wrapper
#include <utility>

#include "common/annotations.hpp"

namespace ig {

/// Lock ranks: a thread may only acquire a ranked lock whose rank is
/// *strictly greater* than every ranked lock it already holds, so any
/// cycle is a rank inversion caught at the second acquisition. Ranks grow
/// along the call graph, outermost (service entry) to innermost (leaf
/// utilities that never call back out). kUnranked locks are exempt from
/// the ordering check (never held across calls into other locking code)
/// but still checked for recursive acquisition. The table is mirrored in
/// DESIGN.md §11 — extend it there when adding a rank.
namespace lock_rank {
inline constexpr int kUnranked = 0;
// Service / coordination layer (outermost).
inline constexpr int kGramService = 100;     ///< gram::Service job registry
inline constexpr int kJobManager = 120;      ///< gram::JobManager lifecycle
inline constexpr int kP2pDiscovery = 130;    ///< gossip membership state
inline constexpr int kCoallocator = 140;     ///< grid co-allocation state
// Information layer.
inline constexpr int kMonitorPrefetch = 145; ///< monitor's prefetcher slot
inline constexpr int kPrefetcher = 150;      ///< info TTL prefetcher
inline constexpr int kSystemMonitor = 160;   ///< info::SystemMonitor registry
// (info::ManagedProvider's update monitor is deliberately kUnranked:
// composite providers re-enter the monitor and other providers' update
// monitors under it — same-class nesting, like mds::Giis below.)
// Execution layer.
inline constexpr int kJobTable = 200;        ///< exec::JobTable
inline constexpr int kExecBackend = 220;     ///< batch/matchmaking/sim backends
inline constexpr int kSimSystem = 230;       ///< exec::SimSystem host state
inline constexpr int kCheckpoint = 240;      ///< exec checkpoint store
inline constexpr int kSandbox = 250;         ///< exec sandbox registry
inline constexpr int kCommand = 260;         ///< exec command runner registry
// Provider-internal state (taken under the update monitor; never calls
// back out into exec).
inline constexpr int kResilience = 300;      ///< circuit-breaker state
// (the provider cache and degradation store are SnapshotCell/atomic now —
// their former ranks 320/360 are retired; see DESIGN.md §13)
// Directory / grid fabric. The replication ranks sit below kNetwork
// because the router may hold its connection slot across a replica RPC,
// and below kMdsDirectory because a directory refresh publishes into the
// coordinator. Replica reads themselves are lock-free (SnapshotCell).
inline constexpr int kMdsRouter = 370;       ///< replica router health + conn slots
inline constexpr int kMdsReplication = 380;  ///< shard coordinator state + op logs
inline constexpr int kMdsReplicaStore = 390; ///< replica-side apply serialization
inline constexpr int kMdsDirectory = 400;    ///< mds directory tree
// (mds::Giis is deliberately kUnranked: GIIS hierarchies nest same-class
// locks parent-over-child, which a single rank cannot order.)
inline constexpr int kDeployment = 440;      ///< grid deployment registry
// Transport + security.
inline constexpr int kNetwork = 500;         ///< in-process network fabric
inline constexpr int kGridmap = 540;         ///< security gridmap writer (SnapshotCell)
// Snapshot publication (read-mostly state behind ig::SnapshotCell). The
// rank orders only the *writer* mutex — readers never lock. 700 sits
// above every domain layer that publishes (a writer may hold its own
// domain lock while publishing) and below the observability layer the
// publish path may still touch.
inline constexpr int kSnapshotWriter = 700;  ///< SnapshotCell<T> writer mutex
// Observability (called from everywhere; must be innermost of the
// service-visible layers).
inline constexpr int kTraceContext = 800;    ///< one trace's span list
inline constexpr int kTailSampler = 810;     ///< tail-retention holding ring
inline constexpr int kTraceStore = 820;      ///< completed-trace ring
inline constexpr int kSlo = 830;             ///< SLO engine (snapshots metrics)
inline constexpr int kMetrics = 840;         ///< MetricsRegistry + histograms
inline constexpr int kProfiler = 850;        ///< obs::Profiler keyword/pool maps
inline constexpr int kTraceListener = 880;   ///< telemetry listener slot
// Leaf utilities: never call user code while held.
inline constexpr int kLogger = 900;          ///< logging::Logger sequence/sinks
inline constexpr int kLogSink = 920;         ///< individual sink state
inline constexpr int kThreadPool = 940;      ///< pool queue (tasks run unlocked)
inline constexpr int kFaultInjector = 960;   ///< fault evaluation state
inline constexpr int kStats = 980;           ///< SharedStats accumulators
}  // namespace lock_rank

namespace sync_internal {

/// Called instead of abort() when set — the sync_test hook. The handler
/// receives the full human-readable report (violation kind, both lock
/// names/ranks, both acquisition backtraces). Returning resumes execution
/// with the acquisition recorded, so a test can observe several
/// violations in one process.
using ViolationHandler = void (*)(const char* report);
void set_violation_handler(ViolationHandler handler);

/// Runtime switch for the lock-order/recursion validator. Defaults to on
/// when built with IG_DEBUG_LOCK_ORDER (CMake turns that on for Debug
/// trees), off otherwise.
void set_lock_order_validation(bool enabled);
bool lock_order_validation_enabled();

/// Number of locks the calling thread currently holds (validator view;
/// 0 when validation is disabled). Exposed for tests.
std::size_t held_lock_count();

/// Total ig::Mutex / ig::SharedMutex acquisitions (blocking or try_lock
/// success, exclusive or shared) the calling thread has performed while
/// validation was enabled. The zero-lock proof's measuring stick: a test
/// enables validation, records the count, drives the path under test on
/// the same thread and asserts the count did not move. Always 0 when
/// validation never ran on this thread.
std::uint64_t thread_acquisition_count();

// Validator entry points used by Mutex/SharedMutex below.
void note_acquire(const void* mu, int rank, const char* name, bool blocking);
void note_release(const void* mu);

/// Contention listener: called after a *contended* acquisition completes
/// (the fast-path try_lock missed and the thread had to block), with the
/// lock's rank, report name and the measured wait in nanoseconds (wall
/// time — lock waits are a real-time phenomenon, never virtual). Invoked
/// on the acquiring thread while it may hold locks of any rank, so the
/// listener must not take ranked locks and must tolerate re-entry (its
/// own locks can themselves be contended). One process-wide slot, install
///-once at wiring time (src/obs/profile is the intended consumer);
/// nullptr uninstalls. Uncontended acquisitions never reach it — the
/// fast path stays one try_lock + one relaxed load.
using ContentionListener = void (*)(int rank, const char* name, std::uint64_t wait_ns);
void set_contention_listener(ContentionListener listener);
ContentionListener contention_listener();

}  // namespace sync_internal

/// Annotated exclusive mutex. Construct with a lock_rank (and a name for
/// violation reports) when the lock can be held across calls into other
/// locking code; default-constructed locks are kUnranked.
class IG_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(int rank, const char* name = "") : rank_(rank), name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() IG_ACQUIRE() {
    // Validate *before* blocking (a rank inversion must be reported at the
    // acquisition that could deadlock, not after it did), then try the
    // fast path; a miss is by definition contention and takes the timed
    // slow path so the profiler can attribute the wait to this lock's
    // report name.
    sync_internal::note_acquire(this, rank_, name_, /*blocking=*/true);
    if (!raw_.try_lock()) lock_contended();
  }
  void unlock() IG_RELEASE() {
    raw_.unlock();
    sync_internal::note_release(this);
  }
  bool try_lock() IG_TRY_ACQUIRE(true) {
    if (!raw_.try_lock()) return false;
    sync_internal::note_acquire(this, rank_, name_, /*blocking=*/false);
    return true;
  }

  int rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  friend class CondVar;
  /// Blocking acquisition after a try_lock miss; times the wait and
  /// reports it to the installed contention listener (sync.cpp).
  void lock_contended();

  std::mutex raw_;
  int rank_ = lock_rank::kUnranked;
  const char* name_ = "";
};

/// Annotated reader/writer mutex (same ranking rules; a shared hold
/// occupies a slot on the validator stack like an exclusive one).
class IG_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(int rank, const char* name = "") : rank_(rank), name_(name) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() IG_ACQUIRE() {
    sync_internal::note_acquire(this, rank_, name_, /*blocking=*/true);
    if (!raw_.try_lock()) lock_contended();
  }
  void unlock() IG_RELEASE() {
    raw_.unlock();
    sync_internal::note_release(this);
  }
  void lock_shared() IG_ACQUIRE_SHARED() {
    sync_internal::note_acquire(this, rank_, name_, /*blocking=*/true);
    if (!raw_.try_lock_shared()) lock_shared_contended();
  }
  void unlock_shared() IG_RELEASE_SHARED() {
    raw_.unlock_shared();
    sync_internal::note_release(this);
  }

  int rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  // Timed slow paths after a try_lock/try_lock_shared miss (sync.cpp).
  void lock_contended();
  void lock_shared_contended();

  std::shared_mutex raw_;
  int rank_ = lock_rank::kUnranked;
  const char* name_ = "";
};

/// RAII exclusive lock over ig::Mutex (≈ std::unique_lock: supports
/// unlock()/lock() so a scope can drop the lock around a callback).
class IG_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) IG_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() IG_RELEASE() {
    if (owned_) mu_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() IG_RELEASE() {
    mu_.unlock();
    owned_ = false;
  }
  void lock() IG_ACQUIRE() {
    mu_.lock();
    owned_ = true;
  }

 private:
  Mutex& mu_;
  bool owned_ = true;
};

/// RAII shared (read) lock over ig::SharedMutex.
class IG_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) IG_ACQUIRE_SHARED(mu) : mu_(mu) { mu_.lock_shared(); }
  ~ReaderLock() IG_RELEASE() { mu_.unlock_shared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (write) lock over ig::SharedMutex.
class IG_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) IG_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~WriterLock() IG_RELEASE() { mu_.unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable waiting on an ig::Mutex. wait() releases and
/// reacquires the underlying mutex; the validator deliberately keeps the
/// mutex on the held stack across the wait (the thread is blocked inside
/// wait() the whole time, and it exits with the lock held again, so the
/// stack matches reality at every point the thread can run other code).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) IG_REQUIRES(mu) { cv_.wait(mu.raw_); }

  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& d)
      IG_REQUIRES(mu) {
    return cv_.wait_for(mu.raw_, d);
  }

  template <typename Clock, typename Dur>
  std::cv_status wait_until(Mutex& mu, const std::chrono::time_point<Clock, Dur>& deadline)
      IG_REQUIRES(mu) {
    return cv_.wait_until(mu.raw_, deadline);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

/// RCU-style publication cell for read-mostly state: writers build a new
/// immutable `T` off the read path and publish it atomically; readers do
/// ONE acquire-load and never touch a mutex (zero ig lock acquisitions,
/// zero heap allocations — the property bench_snapshot_read enforces).
///
/// Ownership rules (DESIGN.md §13):
///  * A published `T` is immutable forever after. Mutation = build a new
///    one and publish; readers holding the old shared_ptr keep a
///    consistent view until they drop it.
///  * read() may be called from any thread, any time, including while a
///    publish is in flight — that interleaving is exactly what the cell
///    makes safe (no torn reads; the pointer swap is the linearization
///    point).
///  * Writers that are already serialized by a domain lock may call
///    publish()/exchange() directly (the cell's writer mutex stays out of
///    play — important when the domain lock ranks above kSnapshotWriter,
///    e.g. obs::MetricsRegistry). Unserialized writers use update(),
///    which runs the rebuild under the cell's own writer mutex so
///    concurrent read-modify-write publishes cannot lose updates.
///  * The update() builder must not acquire locks ranked >=
///    kSnapshotWriter and must not re-enter the same cell.
template <typename T>
class SnapshotCell {
 public:
  using Ptr = std::shared_ptr<const T>;

  SnapshotCell() : mu_(lock_rank::kSnapshotWriter, "ig.SnapshotCell") {}
  explicit SnapshotCell(const char* name, int rank = lock_rank::kSnapshotWriter)
      : mu_(rank, name) {}
  SnapshotCell(const SnapshotCell&) = delete;
  SnapshotCell& operator=(const SnapshotCell&) = delete;

  /// The current snapshot (null until the first publish). Lock-free,
  /// allocation-free: one acquire-load plus a reference-count increment.
  IG_STATIC_FAST_PATH
  Ptr read() const { return ptr_.load(std::memory_order_acquire); }

  /// Publish `next` as the current snapshot. Caller is responsible for
  /// writer serialization (or uses update() below, which provides it).
  void publish(Ptr next) { ptr_.store(std::move(next), std::memory_order_release); }

  /// Publish `next` and return the snapshot it replaced.
  Ptr exchange(Ptr next) {
    return ptr_.exchange(std::move(next), std::memory_order_acq_rel);
  }

  /// Serialized read-modify-write publish: `build` receives the current
  /// snapshot (possibly null) and returns the replacement. Runs under the
  /// cell's writer mutex so concurrent update() calls cannot interleave;
  /// readers are never blocked.
  template <typename Build>
  void update(Build&& build) {
    MutexLock lock(mu_);
    publish(std::forward<Build>(build)(ptr_.load(std::memory_order_acquire)));
  }

 private:
  std::atomic<Ptr> ptr_;
  mutable Mutex mu_;
};

}  // namespace ig
