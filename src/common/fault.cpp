#include "common/fault.hpp"

#include "common/strings.hpp"
#include "common/sync.hpp"

namespace ig {

namespace {
// FNV-1a, mixing the point name into the plan seed so each point draws
// from an independent deterministic stream.
std::uint64_t hash_point(std::uint64_t seed, const std::string& point) {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ seed;
  for (char c : point) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}
}  // namespace

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kError:
      return "error";
    case FaultKind::kLatency:
      return "latency";
    case FaultKind::kHang:
      return "hang";
    case FaultKind::kGarbage:
      return "garbage";
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kCrash:
      return "crash";
  }
  return "?";
}

Error FaultDecision::to_error(const std::string& point) const {
  std::string text = "injected " + std::string(to_string(kind)) + " at " + point;
  if (!message.empty()) text += ": " + message;
  return Error(error, std::move(text));
}

std::string FaultDecision::describe() const {
  return strings::format("seq=%llu kind=%s latency_us=%lld",
                         static_cast<unsigned long long>(sequence),
                         std::string(to_string(kind)).c_str(),
                         static_cast<long long>(latency.count()));
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  for (const auto& [point, specs] : plan_.points) {
    PointState state(hash_point(plan_.seed, point));
    for (const auto& spec : specs) state.specs.push_back(SpecState{spec, 0});
    points_.emplace(point, std::move(state));
  }
}

FaultDecision FaultInjector::evaluate(const std::string& point) {
  FaultDecision decision;
  std::function<void(const std::string&, const FaultDecision&)> hook;
  {
    MutexLock lock(mu_);
    auto it = points_.find(point);
    if (it == points_.end()) return decision;  // inert point
    PointState& state = it->second;
    decision.sequence = ++state.evaluations;
    for (SpecState& ss : state.specs) {
      // Draw unconditionally so the stream position depends only on the
      // evaluation index, not on other specs' budgets.
      bool passed = state.rng.chance(ss.spec.probability);
      if (state.evaluations <= ss.spec.skip_first) continue;
      if (ss.spec.max_fires > 0 && ss.fires >= ss.spec.max_fires) continue;
      if (!passed) continue;
      ++ss.fires;
      ++state.fires;
      decision.fire = true;
      decision.kind = ss.spec.kind;
      decision.latency = ss.spec.latency;
      decision.error = ss.spec.error;
      decision.message = ss.spec.message;
      state.fired.push_back(decision.describe());
      hook = hook_;
      break;
    }
  }
  if (hook) hook(point, decision);
  return decision;
}

std::uint64_t FaultInjector::evaluations(const std::string& point) const {
  MutexLock lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.evaluations;
}

std::uint64_t FaultInjector::fires(const std::string& point) const {
  MutexLock lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fires;
}

std::vector<std::string> FaultInjector::history(const std::string& point) const {
  MutexLock lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? std::vector<std::string>{} : it->second.fired;
}

std::string FaultInjector::history_digest() const {
  MutexLock lock(mu_);
  std::string out;
  for (const auto& [point, state] : points_) {  // std::map: name order
    out += point + ":\n";
    for (const auto& line : state.fired) out += "  " + line + "\n";
  }
  return out;
}

void FaultInjector::set_fire_hook(
    std::function<void(const std::string&, const FaultDecision&)> hook) {
  MutexLock lock(mu_);
  hook_ = std::move(hook);
}

}  // namespace ig
