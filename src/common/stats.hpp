// Running statistics (Welford) used for the paper's `performance` tag:
// InfoGram measures and catalogues, at runtime, the mean and standard
// deviation of the time each information provider needs to produce a value.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/sync.hpp"

namespace ig {

/// Numerically stable single-pass mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) {
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  std::int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const { return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

  void reset() { *this = RunningStats(); }

  /// Merge another accumulator into this one (parallel Welford).
  void merge(const RunningStats& other);

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Thread-safe wrapper around RunningStats.
class SharedStats {
 public:
  void add(double x) {
    MutexLock lock(mu_);
    stats_.add(x);
  }
  RunningStats snapshot() const {
    MutexLock lock(mu_);
    return stats_;
  }
  void reset() {
    MutexLock lock(mu_);
    stats_.reset();
  }

 private:
  mutable Mutex mu_{lock_rank::kStats, "common.SharedStats"};
  RunningStats stats_ IG_GUARDED_BY(mu_);
};

}  // namespace ig
