// Running statistics (Welford) used for the paper's `performance` tag:
// InfoGram measures and catalogues, at runtime, the mean and standard
// deviation of the time each information provider needs to produce a value.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/sync.hpp"

namespace ig {

/// Numerically stable single-pass mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) {
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  std::int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const { return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

  void reset() { *this = RunningStats(); }

  /// Merge another accumulator into this one (parallel Welford).
  void merge(const RunningStats& other);

  /// Rebuild from raw moments (count, Σx, Σx²) — how AtomicStats hands its
  /// lock-free accumulation back as a RunningStats. The sum-of-squares
  /// form loses a little precision versus streaming Welford when the mean
  /// dwarfs the spread; acceptable for monitoring statistics.
  static RunningStats from_moments(std::int64_t count, double sum, double sum_sq,
                                   double min, double max);

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Thread-safe wrapper around RunningStats.
class SharedStats {
 public:
  void add(double x) {
    MutexLock lock(mu_);
    stats_.add(x);
  }
  RunningStats snapshot() const {
    MutexLock lock(mu_);
    return stats_;
  }
  void reset() {
    MutexLock lock(mu_);
    stats_.reset();
  }

 private:
  mutable Mutex mu_{lock_rank::kStats, "common.SharedStats"};
  RunningStats stats_ IG_GUARDED_BY(mu_);
};

/// Lock-free moment accumulator: the SharedStats replacement for hot paths
/// that must take zero ig locks (obs::Histogram::observe on the request
/// path, provider performance stats). Accumulates count/Σx/Σx²/min/max
/// with relaxed atomics (CAS loops for the doubles — portable, and
/// contention on a stats cell is rare); snapshot() reconstructs a
/// RunningStats from the moments. The five atomics are read independently,
/// so a snapshot taken concurrently with add() can be torn by one sample —
/// fine for monitoring, do not use where cross-field exactness matters.
class AtomicStats {
 public:
  void add(double x) {
    count_.fetch_add(1, std::memory_order_relaxed);
    add_to(sum_, x);
    add_to(sum_sq_, x * x);
    double seen = min_.load(std::memory_order_relaxed);
    while (x < seen && !min_.compare_exchange_weak(seen, x, std::memory_order_relaxed)) {
    }
    seen = max_.load(std::memory_order_relaxed);
    while (x > seen && !max_.compare_exchange_weak(seen, x, std::memory_order_relaxed)) {
    }
  }

  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Lock-free point reads of the extrema (relaxed, like count()).
  /// These feed Histogram::quantile_now, which must stay pure enough
  /// for the static fast-path proof — no snapshot, no RunningStats.
  double min_now() const { return min_.load(std::memory_order_relaxed); }
  double max_now() const { return max_.load(std::memory_order_relaxed); }

  RunningStats snapshot() const {
    return RunningStats::from_moments(count(), sum_.load(std::memory_order_relaxed),
                                      sum_sq_.load(std::memory_order_relaxed),
                                      min_.load(std::memory_order_relaxed),
                                      max_.load(std::memory_order_relaxed));
  }

  /// Not linearizable against concurrent add() (a racing sample may land
  /// across the boundary); callers quiesce writers first, as with any
  /// stats reset.
  void reset() {
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    sum_sq_.store(0.0, std::memory_order_relaxed);
    min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
    max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  }

 private:
  static void add_to(std::atomic<double>& cell, double delta) {
    double seen = cell.load(std::memory_order_relaxed);
    while (!cell.compare_exchange_weak(seen, seen + delta, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> sum_sq_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

}  // namespace ig
