// Clang thread-safety (capability) analysis attribute macros.
//
// These wrap the attributes behind Clang's -Wthread-safety so the locking
// discipline of every class in this tree is checked at *compile time* —
// every path, not just the interleavings TSan happens to see in CI. The
// macros expand to nothing on non-Clang compilers, so GCC builds are
// unaffected and the annotated tree stays portable.
//
// Conventions (DESIGN.md §11 has the full guide):
//   - Every guarded field carries IG_GUARDED_BY(mu_).
//   - Private `*_locked()` helpers carry IG_REQUIRES(mu_).
//   - Public methods that take the lock themselves carry IG_EXCLUDES(mu_)
//     when they may be called from code that could plausibly hold it.
//   - IG_NO_THREAD_SAFETY_ANALYSIS is a last resort; each use needs a
//     justification comment (tools/lint.py budgets them).
#pragma once

#if defined(__clang__)
#define IG_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define IG_THREAD_ANNOTATION(x)  // no-op: GCC/MSVC have no capability analysis
#endif

/// Class attribute: instances are lockable capabilities ("mutex").
#define IG_CAPABILITY(x) IG_THREAD_ANNOTATION(capability(x))

/// Class attribute: RAII object that acquires in ctor / releases in dtor.
#define IG_SCOPED_CAPABILITY IG_THREAD_ANNOTATION(scoped_lockable)

/// Field attribute: may only be touched while `x` is held.
#define IG_GUARDED_BY(x) IG_THREAD_ANNOTATION(guarded_by(x))

/// Field attribute: the *pointee* may only be touched while `x` is held.
#define IG_PT_GUARDED_BY(x) IG_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function attribute: caller must hold the capability (exclusively).
#define IG_REQUIRES(...) IG_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function attribute: caller must hold the capability (at least shared).
#define IG_REQUIRES_SHARED(...) IG_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function attribute: acquires the capability (exclusively) before return.
#define IG_ACQUIRE(...) IG_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function attribute: acquires the capability (shared) before return.
#define IG_ACQUIRE_SHARED(...) IG_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function attribute: releases the capability (exclusive or, on a scoped
/// capability with no argument, however it was acquired).
#define IG_RELEASE(...) IG_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function attribute: releases a shared hold of the capability.
#define IG_RELEASE_SHARED(...) IG_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function attribute: releases a hold acquired either way.
#define IG_RELEASE_GENERIC(...) IG_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// Function attribute: acquires (exclusively) when returning `b`.
#define IG_TRY_ACQUIRE(b, ...) IG_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/// Function attribute: acquires (shared) when returning `b`.
#define IG_TRY_ACQUIRE_SHARED(b, ...) \
  IG_THREAD_ANNOTATION(try_acquire_shared_capability(b, __VA_ARGS__))

/// Function attribute: caller must NOT hold the capability (the function
/// acquires it itself, or calls out under it — deadlock documentation).
#define IG_EXCLUDES(...) IG_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function attribute: asserts (at runtime) that the capability is held.
#define IG_ASSERT_CAPABILITY(x) IG_THREAD_ANNOTATION(assert_capability(x))

/// Function attribute: returns a reference to the named capability.
#define IG_RETURN_CAPABILITY(x) IG_THREAD_ANNOTATION(lock_returned(x))

/// Declares a lock-order edge without runtime cost.
#define IG_ACQUIRED_BEFORE(...) IG_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define IG_ACQUIRED_AFTER(...) IG_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Escape hatch: function body is exempt from the analysis. Budgeted by
/// tools/lint.py — every use needs a justification comment.
#define IG_NO_THREAD_SAFETY_ANALYSIS IG_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Static fast-path marker: tools/analyze's purity pass proves that a
/// function carrying this marker — and everything it transitively
/// calls — acquires no lock, allocates nothing, and performs no I/O,
/// over *all* paths. Expands to nothing; it exists for the analyzer
/// (and the reader). The runtime complement is the acquisition/
/// allocation counters in tests/snapshot_test.cpp, which verify the
/// same property on the paths the tests happen to drive. Place it on
/// the definition head (or the line above it).
#define IG_STATIC_FAST_PATH
