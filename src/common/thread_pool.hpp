// Fixed-size worker pool with bounded admission.
//
// The concurrency substrate of the request pipeline: a service hands work
// to a fixed set of worker threads through a bounded queue. When the queue
// is full the submission is *shed* with kUnavailable ("admission queue
// full") instead of growing without bound — under overload the service
// answers some clients with a fast error rather than answering every
// client arbitrarily late (the lesson of the MDS2 throughput studies:
// saturated information services that keep queueing stop being information
// services).
//
// fan_out() is the scatter/gather primitive for multi-keyword queries: the
// *caller participates* in executing its own items, claiming any item no
// worker has started yet. A worker that fans out while every other worker
// is blocked on its own fan-out therefore still makes progress — the
// nested-join deadlock of naive pool re-entry cannot happen.
//
// Observability is pushed, not polled: optional hooks fire on depth
// change, shed and task completion so the owner can mirror pool state into
// a MetricsRegistry without this header depending on src/obs.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/sync.hpp"

namespace ig {

struct ThreadPoolOptions {
  std::size_t workers = 4;
  /// Maximum number of *waiting* tasks (running tasks do not count).
  std::size_t queue_depth = 64;
};

class ThreadPool {
 public:
  using Options = ThreadPoolOptions;

  struct WorkerStats {
    std::uint64_t tasks = 0;
    Duration busy{0};
  };

  struct Stats {
    std::size_t depth = 0;      ///< tasks currently waiting
    std::size_t highwater = 0;  ///< max depth ever observed (monotone)
    /// Max depth since the last snapshot_and_reset_window(): the gauge a
    /// dashboard wants — `highwater` only ever rises, so one overload
    /// spike an hour ago reads as permanent pressure forever.
    std::size_t window_highwater = 0;
    std::uint64_t submitted = 0;
    std::uint64_t executed = 0;
    std::uint64_t shed = 0;
    std::vector<WorkerStats> workers;
  };

  /// Pushed notifications for metric mirroring; all may be empty. Hooks run
  /// on submitter/worker threads and must be thread-safe.
  struct Hooks {
    std::function<void(std::size_t depth, std::size_t highwater)> on_depth;
    std::function<void()> on_shed;
    /// `wait` is enqueue→dequeue time on the pool's clock (queue wait),
    /// `busy` dequeue→done (run time) — the scheduler-profiling split.
    std::function<void(std::size_t worker, Duration wait, Duration busy)> on_task_done;
  };

  using Task = std::function<void()>;

  /// `clock` times per-worker busy durations (wall clock when null).
  explicit ThreadPool(Options options = {}, const Clock* clock = nullptr);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Install hooks before the pool is shared between threads.
  void set_hooks(Hooks hooks);

  /// Enqueue `task`. kUnavailable("admission queue full ...") when the
  /// queue is at depth, kUnavailable("pool stopped") after shutdown().
  Status submit(Task task);

  /// Run fn(0) .. fn(n-1) across the pool and the calling thread; returns
  /// when all have completed. Items are claimed exactly once; the caller
  /// executes any item no worker picked up, so this never deadlocks even
  /// when invoked from inside a pool task. Shed helper submissions are
  /// harmless (the caller covers the remainder).
  void fan_out(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Stop accepting work, drain already-queued tasks, join the workers.
  /// Idempotent; also run by the destructor.
  void shutdown();

  std::size_t worker_count() const { return options_.workers; }
  Stats stats() const;

  /// stats() plus: close the current observation window — the returned
  /// Stats carries the window's highwater, and the window restarts at the
  /// *current* depth (tasks still waiting are pressure the next window
  /// inherits). The monotone `highwater` is untouched.
  Stats snapshot_and_reset_window();

 private:
  /// A queued task remembers when it was admitted so the dequeuing worker
  /// can report the queue wait.
  struct QueuedTask {
    Task fn;
    TimePoint enqueued{0};
  };

  void worker_loop(std::size_t index);
  Stats stats_locked() const IG_REQUIRES(mu_);

  Options options_;      ///< immutable after construction
  const Clock* clock_;   ///< immutable after construction

  mutable Mutex mu_{lock_rank::kThreadPool, "common.ThreadPool"};
  CondVar cv_;
  Hooks hooks_ IG_GUARDED_BY(mu_);
  std::deque<QueuedTask> queue_ IG_GUARDED_BY(mu_);
  bool stopping_ IG_GUARDED_BY(mu_) = false;
  std::size_t highwater_ IG_GUARDED_BY(mu_) = 0;
  std::size_t window_highwater_ IG_GUARDED_BY(mu_) = 0;
  std::uint64_t submitted_ IG_GUARDED_BY(mu_) = 0;
  std::uint64_t executed_ IG_GUARDED_BY(mu_) = 0;
  std::uint64_t shed_ IG_GUARDED_BY(mu_) = 0;
  std::vector<WorkerStats> worker_stats_ IG_GUARDED_BY(mu_);

  /// Joined by shutdown(); only touched from the constructor and
  /// shutdown() (idempotence is guarded by `stopping_`).
  std::vector<std::thread> threads_;
};

}  // namespace ig
