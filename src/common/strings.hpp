// Small string utilities shared by the parsers, formatters and protocols.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ig::strings {

/// Split `s` on every occurrence of `sep`. "a,,b" -> {"a","","b"}.
std::vector<std::string> split(std::string_view s, char sep);

/// Split on `sep`, dropping empty fields and trimming whitespace.
std::vector<std::string> split_fields(std::string_view s, char sep);

std::string_view trim(std::string_view s);
std::string to_lower(std::string_view s);
std::string to_upper(std::string_view s);

bool iequals(std::string_view a, std::string_view b);
bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);
bool contains(std::string_view s, std::string_view needle);

/// Join elements with `sep`: {"a","b"} + "," -> "a,b".
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Strict integer parse of the whole string; nullopt on any junk.
std::optional<std::int64_t> parse_int(std::string_view s);
std::optional<double> parse_double(std::string_view s);

/// Glob match supporting '*' (any run) and '?' (any one char).
bool glob_match(std::string_view pattern, std::string_view text);

/// Replace every occurrence of `from` (non-empty) with `to`.
std::string replace_all(std::string_view s, std::string_view from, std::string_view to);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace ig::strings
