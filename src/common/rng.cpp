#include "common/rng.hpp"

namespace ig {

namespace {
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& s : s_) s = splitmix64(seed);
}

std::uint64_t Rng::next() {
  std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next() % span);
}

double Rng::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::exponential(double lambda) {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

bool Rng::chance(double p) { return uniform() < p; }

}  // namespace ig
