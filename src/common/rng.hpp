// Seedable RNG for the simulated substrate (command outputs, network
// latency jitter, workloads). Deterministic by construction: the same seed
// reproduces the same experiment, which the benchmarks rely on.
#pragma once

#include <cstdint>
#include <cmath>

namespace ig {

/// xoshiro256** by Blackman & Vigna, seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box-Muller.
  double normal(double mean = 0.0, double stddev = 1.0);
  /// Exponential with rate lambda (>0).
  double exponential(double lambda);
  /// Bernoulli trial.
  bool chance(double p);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace ig
