// Identifier generation: job handles ("GlobusID" contact strings in the
// paper), endpoint addresses, and session ids.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace ig {

/// Process-wide monotonically increasing id source.
class IdGenerator {
 public:
  /// Next unique integer id (1-based).
  static std::uint64_t next();

  /// A GRAM-style job contact string, e.g.
  /// "https://hot.mcs.anl.gov:8443/jobmanager/17".
  static std::string job_contact(const std::string& host, int port, std::uint64_t job_id);
};

/// Non-cryptographic 64-bit FNV-1a hash. Used by the simulated PKI as the
/// stand-in for a signature digest (see DESIGN.md substitutions).
std::uint64_t fnv1a(const std::string& data, std::uint64_t seed = 0xcbf29ce484222325ULL);

/// Hex rendering of a 64-bit value, zero-padded to 16 chars.
std::string to_hex(std::uint64_t v);

}  // namespace ig
