// Seeded, deterministic fault injection.
//
// The fault-tolerance machinery in this repo (degradation-as-shield,
// retries, circuit breakers, job restart, checkpoint resume) needs a way
// to *create* the failures it defends against, reproducibly. A FaultPlan
// names injection points ("info.Memory", "net.request", "exec.run") and
// attaches fault specs — kind, probability, fire budget, latency — and a
// FaultInjector evaluates them at runtime.
//
// Determinism: every point gets its own RNG stream, seeded from the plan
// seed hashed with the point name, and decisions are a pure function of
// the point's evaluation index. Two runs of the same plan that evaluate a
// point the same number of times produce bit-identical decision sequences
// at that point, regardless of how threads interleave across *different*
// points — the property the chaos suite asserts.
//
// This lives in src/common (everything may depend on it; it depends on
// nothing but Rng/Clock/Error). Observability is pushed through the fire
// hook rather than pulled, so common never depends on obs: wire the hook
// to a `fault.injected` counter at stack-assembly time.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/sync.hpp"

namespace ig {

enum class FaultKind {
  kError,    ///< fail the operation with `error`/`message`
  kLatency,  ///< delay the operation by `latency`, then proceed normally
  kHang,     ///< block (cancellably) up to `latency`, then fail
  kGarbage,  ///< succeed with corrupted output
  kDrop,     ///< drop a network connect/request (kUnavailable)
  kCrash,    ///< kill a command mid-execution (non-zero exit)
};

std::string_view to_string(FaultKind kind);

/// Well-known injection-point names. Points are plain strings — a plan
/// may name any point — but the fixed infrastructure points live here so
/// chaos plans and the sites that evaluate them cannot drift apart. Note
/// the replication channel is distinct from the client-facing transport
/// points: chaos tests kill or partition replica traffic without touching
/// query traffic (and vice versa).
namespace fault_point {
inline constexpr const char* kNetConnect = "net.connect";       ///< Network::connect
inline constexpr const char* kNetRequest = "net.request";       ///< Connection::request
inline constexpr const char* kExecRun = "exec.run";             ///< CommandRegistry::run
inline constexpr const char* kMdsReplication = "mds.replication";  ///< shard replication RPCs
}  // namespace fault_point

/// One fault schedule at one injection point.
struct FaultSpec {
  FaultKind kind = FaultKind::kError;
  double probability = 1.0;      ///< per-evaluation chance of firing
  std::uint64_t max_fires = 0;   ///< total fire budget; 0 = unlimited
  std::uint64_t skip_first = 0;  ///< stay dormant for the first N evaluations
  Duration latency{0};           ///< kLatency delay / kHang bound
  ErrorCode error = ErrorCode::kUnavailable;
  std::string message;  ///< appended to the injected error text
};

/// Named injection points and their fault schedules.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::map<std::string, std::vector<FaultSpec>> points;

  FaultPlan& add(const std::string& point, FaultSpec spec) {
    points[point].push_back(std::move(spec));
    return *this;
  }
};

/// The outcome of evaluating one injection point once.
struct FaultDecision {
  bool fire = false;
  FaultKind kind = FaultKind::kError;
  Duration latency{0};
  ErrorCode error = ErrorCode::kUnavailable;
  std::string message;
  std::uint64_t sequence = 0;  ///< 1-based evaluation index at the point

  /// The injected failure as an Error (kError/kHang/kDrop kinds).
  Error to_error(const std::string& point) const;
  /// Canonical one-line form for history comparison.
  std::string describe() const;
};

/// Thread-safe evaluator of a FaultPlan. Points absent from the plan are
/// inert: evaluating them costs one map lookup and never fires.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Evaluate `point` once. Specs are tried in plan order; the first
  /// eligible spec that passes its probability draw fires.
  FaultDecision evaluate(const std::string& point);

  /// Total evaluations / fires at a point (0 for unknown points).
  std::uint64_t evaluations(const std::string& point) const;
  std::uint64_t fires(const std::string& point) const;
  /// Every fired decision at `point`, in firing order (describe() form).
  std::vector<std::string> history(const std::string& point) const;
  /// All points' histories folded into one canonical string, points in
  /// name order — equal digests mean identical fault sequences.
  std::string history_digest() const;

  /// Called on every fired decision (after recording). Set once at stack
  /// wiring time, before traffic; typically counts `fault.injected`.
  void set_fire_hook(std::function<void(const std::string& point, const FaultDecision&)> hook);

  const FaultPlan& plan() const { return plan_; }

 private:
  struct SpecState {
    FaultSpec spec;
    std::uint64_t fires = 0;
  };
  struct PointState {
    Rng rng;
    std::uint64_t evaluations = 0;
    std::uint64_t fires = 0;
    std::vector<SpecState> specs;
    std::vector<std::string> fired;

    explicit PointState(std::uint64_t seed) : rng(seed) {}
  };

  const FaultPlan plan_;  ///< immutable after construction
  mutable Mutex mu_{lock_rank::kFaultInjector, "common.FaultInjector"};
  std::map<std::string, PointState> points_ IG_GUARDED_BY(mu_);
  std::function<void(const std::string&, const FaultDecision&)> hook_ IG_GUARDED_BY(mu_);
};

}  // namespace ig
