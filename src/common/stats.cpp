#include "common/stats.hpp"

namespace ig {

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  auto na = static_cast<double>(count_);
  auto nb = static_cast<double>(other.count_);
  double delta = other.mean_ - mean_;
  double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

}  // namespace ig
