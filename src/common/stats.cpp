#include "common/stats.hpp"

namespace ig {

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  auto na = static_cast<double>(count_);
  auto nb = static_cast<double>(other.count_);
  double delta = other.mean_ - mean_;
  double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

RunningStats RunningStats::from_moments(std::int64_t count, double sum, double sum_sq,
                                        double min, double max) {
  RunningStats out;
  if (count <= 0) return out;
  out.count_ = count;
  out.mean_ = sum / static_cast<double>(count);
  // m2 = Σx² - (Σx)²/n; clamp the catastrophic-cancellation residue so a
  // constant series cannot report a tiny negative variance.
  double m2 = sum_sq - sum * out.mean_;
  out.m2_ = m2 > 0.0 ? m2 : 0.0;
  out.min_ = min;
  out.max_ = max;
  return out;
}

}  // namespace ig
