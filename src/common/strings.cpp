#include "common/strings.hpp"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace ig::strings {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_fields(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (const auto& piece : split(s, sep)) {
    auto t = trim(piece);
    if (!t.empty()) out.emplace_back(t);
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool contains(std::string_view s, std::string_view needle) {
  return s.find(needle) != std::string_view::npos;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::optional<std::int64_t> parse_int(std::string_view s) {
  auto t = trim(s);
  if (t.empty()) return std::nullopt;
  std::string buf(t);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return static_cast<std::int64_t>(v);
}

std::optional<double> parse_double(std::string_view s) {
  auto t = trim(s);
  if (t.empty()) return std::nullopt;
  std::string buf(t);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative matcher with backtracking over the last '*'.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::string replace_all(std::string_view s, std::string_view from, std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      return out;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

}  // namespace ig::strings
