#include "common/id.hpp"

#include "common/strings.hpp"

namespace ig {

std::uint64_t IdGenerator::next() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::string IdGenerator::job_contact(const std::string& host, int port, std::uint64_t job_id) {
  return strings::format("https://%s:%d/jobmanager/%llu", host.c_str(), port,
                         static_cast<unsigned long long>(job_id));
}

std::uint64_t fnv1a(const std::string& data, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string to_hex(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

}  // namespace ig
