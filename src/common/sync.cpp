#include "common/sync.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define IG_SYNC_HAVE_BACKTRACE 1
#endif

namespace ig::sync_internal {

namespace {

constexpr int kMaxFrames = 32;

/// One lock the current thread holds, with the stack that acquired it so
/// a violation can print *both* sides of the bad edge.
struct Held {
  const void* mu = nullptr;
  int rank = 0;
  const char* name = "";
  int frames = 0;
  void* stack[kMaxFrames];
};

// Debug-validator bookkeeping. A plain thread_local vector: the validator
// is inert after TLS destruction begins, which only matters for locks
// taken inside other thread_local destructors — not a pattern this tree
// uses.
thread_local std::vector<Held> t_held;

// Lifetime acquisition counter for the zero-lock proofs; bumped in
// note_acquire (i.e. only while validation is enabled, keeping the
// production fast path at one relaxed load).
thread_local std::uint64_t t_acquisitions = 0;

std::atomic<bool> g_enabled{
#if defined(IG_DEBUG_LOCK_ORDER)
    true
#else
    false
#endif
};

std::atomic<ViolationHandler> g_handler{nullptr};

std::atomic<ContentionListener> g_contention{nullptr};

int capture_stack(void** frames) {
#if defined(IG_SYNC_HAVE_BACKTRACE)
  return backtrace(frames, kMaxFrames);
#else
  (void)frames;
  return 0;
#endif
}

void append_stack(std::string& out, void* const* stack, int frames) {
#if defined(IG_SYNC_HAVE_BACKTRACE)
  char** symbols = backtrace_symbols(const_cast<void* const*>(stack), frames);
  for (int i = 0; i < frames; ++i) {
    out += "    ";
    out += (symbols != nullptr) ? symbols[i] : "<unknown frame>";
    out += '\n';
  }
  std::free(symbols);
#else
  (void)stack;
  (void)frames;
  out += "    <no backtrace support on this platform>\n";
#endif
}

void describe(std::string& out, const char* role, const void* mu, int rank, const char* name) {
  char line[160];
  std::snprintf(line, sizeof(line), "  %s: mutex %p rank=%d name=\"%s\"\n", role, mu, rank,
                (name != nullptr && name[0] != '\0') ? name : "<unranked>");
  out += line;
}

void violation(const char* kind, const Held& prior, const void* mu, int rank, const char* name) {
  std::string report;
  report += "ig::sync lock-order validator: ";
  report += kind;
  report += '\n';
  describe(report, "acquiring", mu, rank, name);
  report += "  acquisition stack:\n";
  {
    void* stack[kMaxFrames];
    int frames = capture_stack(stack);
    append_stack(report, stack, frames);
  }
  describe(report, "while holding", prior.mu, prior.rank, prior.name);
  report += "  held since:\n";
  append_stack(report, prior.stack, prior.frames);

  ViolationHandler handler = g_handler.load(std::memory_order_acquire);
  if (handler != nullptr) {
    handler(report.c_str());
    return;  // test hook: record the acquisition and keep going
  }
  std::fputs(report.c_str(), stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void set_violation_handler(ViolationHandler handler) {
  g_handler.store(handler, std::memory_order_release);
}

void set_contention_listener(ContentionListener listener) {
  g_contention.store(listener, std::memory_order_release);
}

ContentionListener contention_listener() {
  return g_contention.load(std::memory_order_relaxed);
}

void set_lock_order_validation(bool enabled) {
  g_enabled.store(enabled, std::memory_order_release);
}

bool lock_order_validation_enabled() {
  return g_enabled.load(std::memory_order_acquire);
}

std::size_t held_lock_count() { return t_held.size(); }

std::uint64_t thread_acquisition_count() { return t_acquisitions; }

void note_acquire(const void* mu, int rank, const char* name, bool blocking) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  ++t_acquisitions;
  const Held* recursive = nullptr;
  const Held* worst = nullptr;  // highest-ranked lock already held
  for (const Held& h : t_held) {
    if (h.mu == mu) recursive = &h;
    if (h.rank != lock_rank::kUnranked && (worst == nullptr || h.rank > worst->rank)) worst = &h;
  }
  if (recursive != nullptr) {
    violation("recursive acquisition", *recursive, mu, rank, name);
  } else if (blocking && rank != lock_rank::kUnranked && worst != nullptr &&
             worst->rank >= rank) {
    // try_lock never blocks, so it cannot complete a deadlock cycle; only
    // blocking acquisitions must respect the rank order.
    violation("lock-rank inversion (ranks must strictly increase)", *worst, mu, rank, name);
  }
  Held h;
  h.mu = mu;
  h.rank = rank;
  h.name = name;
  h.frames = capture_stack(h.stack);
  t_held.push_back(h);
}

void note_release(const void* mu) {
  // Runs even when validation is off so entries recorded before a
  // set_lock_order_validation(false) cannot go stale.
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->mu == mu) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
}

}  // namespace ig::sync_internal

namespace ig {

namespace {

/// Shared timed slow path for the three contended acquisitions. The
/// listener check comes FIRST: without a consumer the slow path is just
/// the blocking acquisition — no clock reads. Waits are measured on
/// steady_clock (never the injected ig::Clock): a lock wait is real
/// scheduler time, and virtual clocks do not advance while a thread
/// blocks.
template <typename Acquire>
void timed_acquire(Acquire&& acquire, int rank, const char* name) {
  sync_internal::ContentionListener listener = sync_internal::contention_listener();
  if (listener == nullptr) {
    acquire();
    return;
  }
  auto begin = std::chrono::steady_clock::now();
  acquire();
  auto wait = std::chrono::steady_clock::now() - begin;
  listener(rank, name,
           static_cast<std::uint64_t>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(wait).count()));
}

}  // namespace

void Mutex::lock_contended() {
  timed_acquire([this] { raw_.lock(); }, rank_, name_);
}

void SharedMutex::lock_contended() {
  timed_acquire([this] { raw_.lock(); }, rank_, name_);
}

void SharedMutex::lock_shared_contended() {
  timed_acquire([this] { raw_.lock_shared(); }, rank_, name_);
}

}  // namespace ig
