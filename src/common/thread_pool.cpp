#include "common/thread_pool.hpp"

#include <algorithm>

namespace ig {

ThreadPool::ThreadPool(Options options, const Clock* clock)
    : options_(options), clock_(clock != nullptr ? clock : &WallClock::instance()) {
  options_.workers = std::max<std::size_t>(options_.workers, 1);
  worker_stats_.resize(options_.workers);
  threads_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::set_hooks(Hooks hooks) {
  MutexLock lock(mu_);
  hooks_ = std::move(hooks);
}

Status ThreadPool::submit(Task task) {
  std::function<void(std::size_t, std::size_t)> on_depth;
  std::function<void()> on_shed;
  bool shed = false;
  std::size_t depth = 0;
  std::size_t highwater = 0;
  {
    MutexLock lock(mu_);
    if (stopping_) return Error(ErrorCode::kUnavailable, "pool stopped");
    if (queue_.size() >= options_.queue_depth) {
      ++shed_;
      shed = true;
      on_shed = hooks_.on_shed;
    } else {
      queue_.push_back(QueuedTask{std::move(task), clock_->now()});
      ++submitted_;
      highwater_ = std::max(highwater_, queue_.size());
      window_highwater_ = std::max(window_highwater_, queue_.size());
      depth = queue_.size();
      highwater = highwater_;
      on_depth = hooks_.on_depth;
    }
  }
  if (shed) {
    if (on_shed) on_shed();
    return Error(ErrorCode::kUnavailable,
                 "admission queue full (depth " + std::to_string(options_.queue_depth) + ")");
  }
  cv_.notify_one();
  if (on_depth) on_depth(depth, highwater);
  return Status::success();
}

void ThreadPool::fan_out(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  struct FanState {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    Mutex mu;
    CondVar cv;
  };
  auto state = std::make_shared<FanState>();
  const std::function<void(std::size_t)>* work = &fn;
  auto runner = [state, work, n] {
    for (;;) {
      std::size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      (*work)(i);
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        MutexLock lock(state->mu);
        state->cv.notify_all();
      }
    }
  };
  // The caller is one runner; offer at most n-1 helpers to the pool. A shed
  // or stopped-pool submission just means the caller does more itself.
  std::size_t helpers = std::min(options_.workers, n - 1);
  for (std::size_t i = 0; i < helpers; ++i) (void)submit(runner);
  runner();
  MutexLock lock(state->mu);
  while (state->done.load(std::memory_order_acquire) != n) state->cv.wait(state->mu);
}

void ThreadPool::shutdown() {
  {
    MutexLock lock(mu_);
    if (stopping_ && threads_.empty()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

ThreadPool::Stats ThreadPool::stats_locked() const {
  Stats s;
  s.depth = queue_.size();
  s.highwater = highwater_;
  s.window_highwater = window_highwater_;
  s.submitted = submitted_;
  s.executed = executed_;
  s.shed = shed_;
  s.workers = worker_stats_;
  return s;
}

ThreadPool::Stats ThreadPool::stats() const {
  MutexLock lock(mu_);
  return stats_locked();
}

ThreadPool::Stats ThreadPool::snapshot_and_reset_window() {
  MutexLock lock(mu_);
  Stats s = stats_locked();
  window_highwater_ = queue_.size();
  return s;
}

void ThreadPool::worker_loop(std::size_t index) {
  for (;;) {
    Task task;
    Duration wait{0};
    std::function<void(std::size_t, std::size_t)> on_depth;
    std::size_t depth = 0;
    std::size_t hw = 0;
    {
      MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) cv_.wait(mu_);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front().fn);
      wait = clock_->now() - queue_.front().enqueued;
      queue_.pop_front();
      on_depth = hooks_.on_depth;
      depth = queue_.size();
      hw = highwater_;
    }
    if (on_depth) on_depth(depth, hw);
    ScopedTimer timer(*clock_);
    task();
    Duration busy = timer.elapsed();
    std::function<void(std::size_t, Duration, Duration)> on_done;
    {
      MutexLock lock(mu_);
      ++executed_;
      worker_stats_[index].tasks += 1;
      worker_stats_[index].busy += busy;
      on_done = hooks_.on_task_done;
    }
    if (on_done) on_done(index, wait, busy);
  }
}

}  // namespace ig
