// Clock abstraction.
//
// TTL caching, information degradation and authorization contracts all
// depend on "now". Services take a Clock& so production code runs on the
// wall clock while tests and benchmarks drive a VirtualClock by hand,
// making every time-dependent behaviour deterministic.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace ig {

/// Time since an arbitrary epoch, in microseconds. All InfoGram timestamps
/// (cache entries, certificates, logs) use this unit.
using Duration = std::chrono::microseconds;
using TimePoint = Duration;  // offset from the clock's epoch

constexpr Duration us(std::int64_t v) { return Duration(v); }
constexpr Duration ms(std::int64_t v) { return Duration(v * 1000); }
constexpr Duration seconds(std::int64_t v) { return Duration(v * 1000000); }

/// Source of time. Implementations must be thread-safe.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time as an offset from the clock's epoch.
  virtual TimePoint now() const = 0;

  /// Block (or virtually advance) for `d`.
  virtual void sleep_for(Duration d) = 0;
};

/// Real time. `now()` is monotonic, measured from process-local epoch.
class WallClock final : public Clock {
 public:
  TimePoint now() const override;
  void sleep_for(Duration d) override;

  /// Process-wide instance, shared by services that are not handed a clock.
  static WallClock& instance();

 private:
  std::chrono::steady_clock::time_point epoch_ = std::chrono::steady_clock::now();
};

/// Manually-advanced time for tests and simulation. sleep_for() advances
/// the clock rather than blocking, so simulated waits are free.
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(TimePoint start = TimePoint(0)) : now_(start.count()) {}

  TimePoint now() const override { return TimePoint(now_.load(std::memory_order_acquire)); }

  void sleep_for(Duration d) override { advance(d); }

  /// Move time forward; wakes any wait_until() sleepers that became due.
  void advance(Duration d);

  /// Set the absolute time (must not go backwards).
  void set(TimePoint t);

 private:
  std::atomic<std::int64_t> now_;
};

/// RAII timer measuring elapsed time on a given clock.
class ScopedTimer {
 public:
  explicit ScopedTimer(const Clock& clock) : clock_(clock), start_(clock.now()) {}
  Duration elapsed() const { return clock_.now() - start_; }

 private:
  const Clock& clock_;
  TimePoint start_;
};

}  // namespace ig
