// Error and Result types used throughout the InfoGram libraries.
//
// Services in this codebase communicate failure as values, not exceptions:
// a remote peer's failure is data to the caller, exactly as a wire protocol
// would deliver it. Result<T> is a small expected-like wrapper.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace ig {

/// Failure categories shared by every InfoGram subsystem.
enum class ErrorCode {
  kParseError,       ///< malformed RSL, filter, config or protocol message
  kNotFound,         ///< unknown keyword, job handle, DN, endpoint, ...
  kStale,            ///< cached information expired (queryState past TTL)
  kDenied,           ///< authentication/authorization failure
  kTimeout,          ///< operation exceeded its deadline
  kUnavailable,      ///< endpoint not listening / service shut down
  kInvalidArgument,  ///< caller error detectable before any side effect
  kAlreadyExists,    ///< duplicate registration
  kCancelled,        ///< job or request cancelled
  kIoError,          ///< file or (simulated) network transfer failure
  kInternal,         ///< invariant violation inside a service
};

/// Human-readable name of an error code ("denied", "stale", ...).
std::string_view to_string(ErrorCode code);

/// An error value: a category plus a message suitable for logs and clients.
struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;

  Error() = default;
  Error(ErrorCode c, std::string msg) : code(c), message(std::move(msg)) {}

  /// "denied: no gridmap entry for /O=Grid/CN=alice"
  std::string to_string() const;

  friend bool operator==(const Error& a, const Error& b) {
    return a.code == b.code && a.message == b.message;
  }
};

/// Either a value of type T or an Error. Modeled on std::expected (C++23),
/// reduced to what the codebase needs.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}  // NOLINT(google-explicit-constructor)
  Result(ErrorCode code, std::string msg) : data_(Error(code, std::move(msg))) {}

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(data_);
  }
  ErrorCode code() const { return error().code; }

  /// Value if present, otherwise `fallback`.
  T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Error> data_;
};

/// Result<void> analogue: success or an Error.
class [[nodiscard]] Status {
 public:
  Status() = default;  // success
  Status(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)
  Status(ErrorCode code, std::string msg) : error_(Error(code, std::move(msg))) {}

  static Status success() { return Status(); }

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    assert(!ok());
    return *error_;
  }
  ErrorCode code() const { return error().code; }
  std::string to_string() const { return ok() ? "ok" : error().to_string(); }

 private:
  std::optional<Error> error_;
};

}  // namespace ig
