#include "common/clock.hpp"

#include <stdexcept>
#include <thread>

namespace ig {

TimePoint WallClock::now() const {
  return std::chrono::duration_cast<Duration>(std::chrono::steady_clock::now() - epoch_);
}

void WallClock::sleep_for(Duration d) {
  if (d.count() > 0) std::this_thread::sleep_for(d);
}

WallClock& WallClock::instance() {
  static WallClock clock;
  return clock;
}

void VirtualClock::advance(Duration d) {
  if (d.count() < 0) throw std::invalid_argument("VirtualClock::advance: negative duration");
  now_.fetch_add(d.count(), std::memory_order_acq_rel);
}

void VirtualClock::set(TimePoint t) {
  auto cur = now_.load(std::memory_order_acquire);
  while (t.count() >= cur &&
         !now_.compare_exchange_weak(cur, t.count(), std::memory_order_acq_rel)) {
  }
  if (t.count() < cur) throw std::invalid_argument("VirtualClock::set: time went backwards");
}

}  // namespace ig
