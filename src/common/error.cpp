#include "common/error.hpp"

namespace ig {

std::string_view to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kParseError:
      return "parse_error";
    case ErrorCode::kNotFound:
      return "not_found";
    case ErrorCode::kStale:
      return "stale";
    case ErrorCode::kDenied:
      return "denied";
    case ErrorCode::kTimeout:
      return "timeout";
    case ErrorCode::kUnavailable:
      return "unavailable";
    case ErrorCode::kInvalidArgument:
      return "invalid_argument";
    case ErrorCode::kAlreadyExists:
      return "already_exists";
    case ErrorCode::kCancelled:
      return "cancelled";
    case ErrorCode::kIoError:
      return "io_error";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Error::to_string() const {
  std::string out(ig::to_string(code));
  if (!message.empty()) {
    out += ": ";
    out += message;
  }
  return out;
}

}  // namespace ig
