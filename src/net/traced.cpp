#include "net/traced.hpp"

#include <optional>

#include "obs/propagation.hpp"

namespace ig::net {

Message serve_traced(const std::shared_ptr<obs::Telemetry>& telemetry,
                     const std::string& root_name, const Message& request,
                     Session& session, const Handler& inner) {
  std::optional<obs::WireContext> wire;
  if (auto header = request.header(obs::kTraceHeader)) {
    wire = obs::WireContext::decode(*header);
  }

  if (telemetry == nullptr) {
    // Uninstrumented hop: forward the caller's context (or its
    // don't-sample decision) so the trace survives passing through.
    if (wire.has_value() && wire->sampled) {
      obs::PassThroughScope forward(wire->trace_id, wire->parent_span);
      return inner(request, session);
    }
    if (wire.has_value()) {
      obs::SuppressScope suppress;
      return inner(request, session);
    }
    return inner(request, session);
  }

  bool sampled = wire.has_value() ? wire->sampled : telemetry->should_sample();
  if (!sampled) {
    obs::SuppressScope suppress;
    return inner(request, session);
  }

  std::unique_ptr<obs::TraceContext> trace =
      wire.has_value()
          ? telemetry->make_remote_trace(root_name, wire->trace_id, wire->parent_span)
          : telemetry->make_trace(root_name);
  Message resp;
  {
    obs::TraceScope scope(*trace);
    resp = inner(request, session);
  }
  if (resp.is_error()) trace->fail(resp.body.empty() ? "error" : resp.body);
  if (wire.has_value() && !resp.is_error()) {
    obs::TraceRecord record = telemetry->complete_and_collect(*trace);
    resp.with(obs::kTraceSpansHeader, obs::encode_spans(record.spans));
  } else {
    telemetry->complete(*trace);
  }
  return resp;
}

}  // namespace ig::net
