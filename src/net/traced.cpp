#include "net/traced.hpp"

#include <optional>

#include "obs/propagation.hpp"

namespace ig::net {

Message serve_traced(const std::shared_ptr<obs::Telemetry>& telemetry,
                     const std::string& root_name, const Message& request,
                     Session& session, const Handler& inner) {
  std::optional<obs::WireContext> wire;
  if (auto header = request.header(obs::kTraceHeader)) {
    wire = obs::WireContext::decode(*header);
  }

  if (telemetry == nullptr) {
    // Uninstrumented hop: forward the caller's context (or its
    // don't-sample decision) so the trace survives passing through.
    if (wire.has_value() && wire->sampled) {
      obs::PassThroughScope forward(wire->trace_id, wire->parent_span, wire->provisional);
      return inner(request, session);
    }
    if (wire.has_value()) {
      obs::SuppressScope suppress;
      return inner(request, session);
    }
    return inner(request, session);
  }

  bool sampled = wire.has_value() ? wire->sampled : telemetry->should_sample();
  if (!sampled) {
    if (!wire.has_value() && telemetry->tail() != nullptr) {
      // Tail-watched root (see InfoGramService::process for the full
      // contract): a context materializes only if an outbound hop needs
      // a wire id; the verdict at finish decides retention.
      std::unique_ptr<obs::TraceContext> lazy;
      obs::PendingTrace pending;
      pending.materialize = [&] {
        lazy = telemetry->make_provisional_trace(root_name);
        return lazy.get();
      };
      ScopedTimer timer(telemetry->clock());
      Message resp;
      {
        obs::ProvisionalScope scope(pending);
        resp = inner(request, session);
      }
      telemetry->finish_provisional(
          pending, root_name, timer.elapsed(),
          resp.is_error() ? (resp.body.empty() ? "error" : resp.body) : "ok");
      return resp;
    }
    obs::SuppressScope suppress;
    return inner(request, session);
  }

  if (wire.has_value() && wire->provisional) {
    // Provisional wire join: retained locally only on this hop's own
    // verdict; spans + signal bits backhaul so the origin decides.
    std::unique_ptr<obs::TraceContext> trace =
        telemetry->make_remote_provisional(root_name, wire->trace_id, wire->parent_span);
    Message resp;
    {
      obs::TraceScope scope(*trace);
      resp = inner(request, session);
    }
    if (resp.is_error()) trace->fail(resp.body.empty() ? "error" : resp.body);
    obs::TraceRecord record = telemetry->collect_provisional(*trace);
    if (!resp.is_error()) {
      resp.with(obs::kTraceSpansHeader, obs::encode_spans(record.spans));
      if (record.signals != 0) {
        resp.with(obs::kTraceSignalsHeader, std::to_string(record.signals));
      }
    }
    return resp;
  }

  std::unique_ptr<obs::TraceContext> trace =
      wire.has_value()
          ? telemetry->make_remote_trace(root_name, wire->trace_id, wire->parent_span)
          : telemetry->make_trace(root_name);
  Message resp;
  {
    obs::TraceScope scope(*trace);
    resp = inner(request, session);
  }
  if (resp.is_error()) trace->fail(resp.body.empty() ? "error" : resp.body);
  if (wire.has_value() && !resp.is_error()) {
    obs::TraceRecord record = telemetry->complete_and_collect(*trace);
    resp.with(obs::kTraceSpansHeader, obs::encode_spans(record.spans));
    if (record.signals != 0) {
      resp.with(obs::kTraceSignalsHeader, std::to_string(record.signals));
    }
  } else {
    telemetry->complete(*trace);
  }
  return resp;
}

}  // namespace ig::net
