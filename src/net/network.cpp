#include "net/network.hpp"

#include <cstdlib>
#include <optional>

#include "obs/propagation.hpp"

namespace ig::net {

Result<Message> Connection::request(const Message& req) {
  // Outbound propagation: if this thread is inside a trace and the caller
  // did not inject a context itself, stamp the wire header. A local
  // context also gets a hop span covering the whole RPC; pass-through and
  // suppressed states forward the decision without recording anything.
  const Message* to_send = &req;
  std::optional<Message> traced_req;
  std::optional<obs::TraceContext::Span> hop;
  obs::ActiveTrace& active = obs::active_trace();
  obs::TraceContext* ctx = active.ctx;
  if (!active.empty() && !req.header(obs::kTraceHeader).has_value()) {
    obs::WireContext wire_ctx;
    if (ctx == nullptr && active.pending != nullptr) {
      // First outbound hop of a tail-watched request: this is the moment
      // the provisional trace materializes — the hop needs a wire id.
      ctx = active.pending->acquire();
    }
    if (ctx != nullptr) {
      hop.emplace(ctx->span("rpc:" + req.verb + "@" + peer_.to_string(),
                            active.span_id));
      wire_ctx.trace_id = ctx->id();
      wire_ctx.parent_span = hop->id();
      wire_ctx.sampled = true;
      // Provisional contexts re-encode the tail wire flag (`2`) so every
      // hop down the path knows retention pends the origin's verdict.
      wire_ctx.provisional = ctx->provisional();
    } else if (active.suppressed) {
      wire_ctx.trace_id = "-";
      wire_ctx.sampled = false;
    } else if (!active.foreign_trace_id.empty()) {
      wire_ctx.trace_id = active.foreign_trace_id;
      wire_ctx.parent_span = active.foreign_parent;
      wire_ctx.sampled = true;
      wire_ctx.provisional = active.foreign_provisional;
    } else {
      // A pending trace with no materializer installed cannot mint a wire
      // id; forward the head sampler's original don't-sample decision.
      wire_ctx.trace_id = "-";
      wire_ctx.sampled = false;
    }
    traced_req = req;
    traced_req->with(obs::kTraceHeader, wire_ctx.encode());
    to_send = &*traced_req;
  }

  std::string wire = to_send->serialize();
  const CostModel& model = net_->cost_model();

  TrafficStats delta;
  delta.requests = 1;
  delta.bytes_sent = wire.size();
  delta.virtual_time = model.round_trip_latency + model.transfer_cost(wire.size());

  FaultDecision fault = net_->evaluate_fault(fault_point::kNetRequest);
  if (fault.fire) {
    if (fault.kind == FaultKind::kLatency) {
      delta.virtual_time += fault.latency;
    } else {
      // The request went on the wire before the fault ate it: account it.
      stats_.merge(delta);
      net_->account(delta);
      if (hop.has_value()) hop->end("error:unavailable");
      return Error(ErrorCode::kUnavailable,
                   "injected fault at net.request: " + fault.describe());
    }
  }

  // The endpoint handler parses the framed bytes exactly as a real server
  // would, so serialization errors cannot hide.
  auto parsed = Message::parse(wire);
  if (!parsed.ok()) {
    stats_.merge(delta);
    net_->account(delta);
    if (hop.has_value()) hop->end("error:parse");
    return parsed.error();
  }

  Result<Message> response = Error(ErrorCode::kUnavailable, "unset");
  {
    // Simulated process boundary: the serving handler runs synchronously
    // in this thread, but must see only the wire header, not the caller's
    // thread-local trace state.
    obs::DetachScope boundary;
    response = net_->dispatch(peer_, parsed.value(), *session_);
  }
  if (response.ok()) {
    std::size_t resp_size = response->wire_size();
    delta.bytes_received = resp_size;
    delta.virtual_time += model.transfer_cost(resp_size);
    // Backhaul: adopt the serving hop's spans into the live trace so the
    // caller's record stitches the whole path, and fold in any tail
    // signals the hop raised (faults absorbed downstream must still
    // retain at the origin).
    if (ctx != nullptr) {
      if (auto spans = response->header(obs::kTraceSpansHeader)) {
        ctx->adopt(obs::decode_spans(*spans));
      }
      if (auto sigs = response->header(obs::kTraceSignalsHeader)) {
        char* end = nullptr;
        unsigned long long bits = std::strtoull(sigs->c_str(), &end, 10);
        if (end != nullptr && *end == '\0' && bits != 0) {
          ctx->add_signal(static_cast<std::uint32_t>(bits));
        }
      }
    }
  }
  stats_.merge(delta);
  net_->account(delta);
  if (hop.has_value()) {
    bool failed = !response.ok() || response->is_error();
    hop->end(failed ? "error:rpc" : "ok");
  }
  return response;
}

Status Network::listen(const Address& addr, Handler handler) {
  MutexLock lock(mu_);
  auto [it, inserted] = endpoints_.try_emplace(addr, EndpointEntry{std::move(handler), false});
  (void)it;
  if (!inserted) {
    return Error(ErrorCode::kAlreadyExists, "address already bound: " + addr.to_string());
  }
  return Status::success();
}

void Network::close(const Address& addr) {
  MutexLock lock(mu_);
  endpoints_.erase(addr);
}

Result<std::unique_ptr<Connection>> Network::connect(const Address& addr) {
  // The connect itself is a span of the active trace: a refused or
  // partitioned target must still close its span with an error status, or
  // the trace silently swallows the most interesting failure mode.
  std::optional<obs::TraceContext::Span> span;
  obs::ActiveTrace& active = obs::active_trace();
  if (active.ctx != nullptr) {
    span.emplace(active.ctx->span("connect:" + addr.to_string(), active.span_id));
  }
  {
    MutexLock lock(mu_);
    auto it = endpoints_.find(addr);
    if (it == endpoints_.end()) {
      if (span.has_value()) span->end("error:unavailable");
      return Error(ErrorCode::kUnavailable, "no endpoint listening at " + addr.to_string());
    }
    if (it->second.partitioned) {
      if (span.has_value()) span->end("error:partitioned");
      return Error(ErrorCode::kUnavailable, "network partition: " + addr.to_string());
    }
  }
  FaultDecision fault = evaluate_fault(fault_point::kNetConnect);
  if (fault.fire && fault.kind != FaultKind::kLatency) {
    if (span.has_value()) span->end("error:refused");
    return Error(ErrorCode::kUnavailable,
                 "injected fault at net.connect: " + fault.describe());
  }
  auto conn = std::unique_ptr<Connection>(
      new Connection(this, addr, std::make_shared<Session>()));
  TrafficStats delta;
  delta.connects = 1;
  delta.virtual_time = model_.connect_latency;
  if (fault.fire) delta.virtual_time += fault.latency;
  conn->stats_.merge(delta);
  account(delta);
  return conn;
}

void Network::partition(const Address& addr) {
  MutexLock lock(mu_);
  auto it = endpoints_.find(addr);
  if (it != endpoints_.end()) it->second.partitioned = true;
}

void Network::heal(const Address& addr) {
  MutexLock lock(mu_);
  auto it = endpoints_.find(addr);
  if (it != endpoints_.end()) it->second.partitioned = false;
}

bool Network::reachable(const Address& addr) const {
  MutexLock lock(mu_);
  auto it = endpoints_.find(addr);
  return it != endpoints_.end() && !it->second.partitioned;
}

TrafficStats Network::total_stats() const {
  MutexLock lock(mu_);
  return totals_;
}

Result<Message> Network::dispatch(const Address& addr, const Message& req, Session& session) {
  Handler handler;
  {
    MutexLock lock(mu_);
    auto it = endpoints_.find(addr);
    if (it == endpoints_.end()) {
      return Error(ErrorCode::kUnavailable, "endpoint closed: " + addr.to_string());
    }
    if (it->second.partitioned) {
      return Error(ErrorCode::kUnavailable, "network partition: " + addr.to_string());
    }
    handler = it->second.handler;  // copy so the handler runs unlocked
  }
  return handler(req, session);
}

void Network::set_telemetry(std::shared_ptr<obs::Telemetry> telemetry) {
  MutexLock lock(mu_);
  telemetry_ = std::move(telemetry);
}

void Network::set_fault_injector(std::shared_ptr<FaultInjector> injector) {
  MutexLock lock(mu_);
  fault_injector_ = std::move(injector);
}

FaultDecision Network::evaluate_fault(const std::string& point) {
  std::shared_ptr<FaultInjector> injector;
  {
    MutexLock lock(mu_);
    injector = fault_injector_;
  }
  if (injector == nullptr) return FaultDecision{};
  return injector->evaluate(point);
}

void Network::account(const TrafficStats& delta) {
  std::shared_ptr<obs::Telemetry> telemetry;
  {
    MutexLock lock(mu_);
    totals_.merge(delta);
    telemetry = telemetry_;
  }
  if (telemetry == nullptr) return;
  obs::MetricsRegistry& metrics = telemetry->metrics();
  if (delta.connects > 0) metrics.counter(obs::metric::kNetConnects).add(delta.connects);
  if (delta.requests > 0) metrics.counter(obs::metric::kNetRequests).add(delta.requests);
  if (delta.bytes_sent > 0) metrics.counter(obs::metric::kNetBytesSent).add(delta.bytes_sent);
  if (delta.bytes_received > 0) {
    metrics.counter(obs::metric::kNetBytesReceived).add(delta.bytes_received);
  }
}

}  // namespace ig::net
