#include "net/network.hpp"

namespace ig::net {

Result<Message> Connection::request(const Message& req) {
  std::string wire = req.serialize();
  const CostModel& model = net_->cost_model();

  TrafficStats delta;
  delta.requests = 1;
  delta.bytes_sent = wire.size();
  delta.virtual_time = model.round_trip_latency + model.transfer_cost(wire.size());

  FaultDecision fault = net_->evaluate_fault("net.request");
  if (fault.fire) {
    if (fault.kind == FaultKind::kLatency) {
      delta.virtual_time += fault.latency;
    } else {
      // The request went on the wire before the fault ate it: account it.
      stats_.merge(delta);
      net_->account(delta);
      return Error(ErrorCode::kUnavailable,
                   "injected fault at net.request: " + fault.describe());
    }
  }

  // The endpoint handler parses the framed bytes exactly as a real server
  // would, so serialization errors cannot hide.
  auto parsed = Message::parse(wire);
  if (!parsed.ok()) {
    stats_.merge(delta);
    net_->account(delta);
    return parsed.error();
  }

  auto response = net_->dispatch(peer_, parsed.value(), *session_);
  if (response.ok()) {
    std::size_t resp_size = response->wire_size();
    delta.bytes_received = resp_size;
    delta.virtual_time += model.transfer_cost(resp_size);
  }
  stats_.merge(delta);
  net_->account(delta);
  return response;
}

Status Network::listen(const Address& addr, Handler handler) {
  std::lock_guard lock(mu_);
  auto [it, inserted] = endpoints_.try_emplace(addr, EndpointEntry{std::move(handler), false});
  (void)it;
  if (!inserted) {
    return Error(ErrorCode::kAlreadyExists, "address already bound: " + addr.to_string());
  }
  return Status::success();
}

void Network::close(const Address& addr) {
  std::lock_guard lock(mu_);
  endpoints_.erase(addr);
}

Result<std::unique_ptr<Connection>> Network::connect(const Address& addr) {
  {
    std::lock_guard lock(mu_);
    auto it = endpoints_.find(addr);
    if (it == endpoints_.end()) {
      return Error(ErrorCode::kUnavailable, "no endpoint listening at " + addr.to_string());
    }
    if (it->second.partitioned) {
      return Error(ErrorCode::kUnavailable, "network partition: " + addr.to_string());
    }
  }
  FaultDecision fault = evaluate_fault("net.connect");
  if (fault.fire && fault.kind != FaultKind::kLatency) {
    return Error(ErrorCode::kUnavailable,
                 "injected fault at net.connect: " + fault.describe());
  }
  auto conn = std::unique_ptr<Connection>(
      new Connection(this, addr, std::make_shared<Session>()));
  TrafficStats delta;
  delta.connects = 1;
  delta.virtual_time = model_.connect_latency;
  if (fault.fire) delta.virtual_time += fault.latency;
  conn->stats_.merge(delta);
  account(delta);
  return conn;
}

void Network::partition(const Address& addr) {
  std::lock_guard lock(mu_);
  auto it = endpoints_.find(addr);
  if (it != endpoints_.end()) it->second.partitioned = true;
}

void Network::heal(const Address& addr) {
  std::lock_guard lock(mu_);
  auto it = endpoints_.find(addr);
  if (it != endpoints_.end()) it->second.partitioned = false;
}

TrafficStats Network::total_stats() const {
  std::lock_guard lock(mu_);
  return totals_;
}

Result<Message> Network::dispatch(const Address& addr, const Message& req, Session& session) {
  Handler handler;
  {
    std::lock_guard lock(mu_);
    auto it = endpoints_.find(addr);
    if (it == endpoints_.end()) {
      return Error(ErrorCode::kUnavailable, "endpoint closed: " + addr.to_string());
    }
    if (it->second.partitioned) {
      return Error(ErrorCode::kUnavailable, "network partition: " + addr.to_string());
    }
    handler = it->second.handler;  // copy so the handler runs unlocked
  }
  return handler(req, session);
}

void Network::set_telemetry(std::shared_ptr<obs::Telemetry> telemetry) {
  std::lock_guard lock(mu_);
  telemetry_ = std::move(telemetry);
}

void Network::set_fault_injector(std::shared_ptr<FaultInjector> injector) {
  std::lock_guard lock(mu_);
  fault_injector_ = std::move(injector);
}

FaultDecision Network::evaluate_fault(const std::string& point) {
  std::shared_ptr<FaultInjector> injector;
  {
    std::lock_guard lock(mu_);
    injector = fault_injector_;
  }
  if (injector == nullptr) return FaultDecision{};
  return injector->evaluate(point);
}

void Network::account(const TrafficStats& delta) {
  std::shared_ptr<obs::Telemetry> telemetry;
  {
    std::lock_guard lock(mu_);
    totals_.merge(delta);
    telemetry = telemetry_;
  }
  if (telemetry == nullptr) return;
  obs::MetricsRegistry& metrics = telemetry->metrics();
  if (delta.connects > 0) metrics.counter(obs::metric::kNetConnects).add(delta.connects);
  if (delta.requests > 0) metrics.counter(obs::metric::kNetRequests).add(delta.requests);
  if (delta.bytes_sent > 0) metrics.counter(obs::metric::kNetBytesSent).add(delta.bytes_sent);
  if (delta.bytes_received > 0) {
    metrics.counter(obs::metric::kNetBytesReceived).add(delta.bytes_received);
  }
}

}  // namespace ig::net
