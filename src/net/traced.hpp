// Serving-side trace wrapper shared by the non-core services (MDS
// hierarchy nodes, discovery gossip peers).
//
// serve_traced() is the receive half of src/obs/propagation.hpp: it
// decodes the `ig-trace` request header, opens a remote child context
// (or honours a don't-sample decision, or passes a foreign context
// through a node with no telemetry), makes the context the thread's
// active trace while the inner handler runs, and backhauls the finished
// spans on the response so the caller stitches the hop into its record.
// The core InfoGram service implements the same protocol inline because
// it interleaves metrics and exemplars with the trace lifecycle.
#pragma once

#include <memory>
#include <string>

#include "net/network.hpp"
#include "obs/telemetry.hpp"

namespace ig::net {

/// Serve `request` through `inner` with distributed-trace handling.
/// `telemetry` may be null (pass-through mode). The trace root is named
/// `root_name` (typically the request verb).
Message serve_traced(const std::shared_ptr<obs::Telemetry>& telemetry,
                     const std::string& root_name, const Message& request,
                     Session& session, const Handler& inner);

}  // namespace ig::net
