// Simulated network substrate.
//
// The paper's architectural claim (Fig. 2 vs Fig. 4) is that unifying GRAM
// and MDS removes one protocol, one port and one security handshake from
// every client interaction. To measure that, the substrate models exactly
// the quantities the claim is about:
//
//   * connection establishment (counted, charged connect latency),
//   * request/response round trips (counted, charged RTT),
//   * bytes on the wire (charged against bandwidth),
//   * per-connection session state (where the auth handshake lives).
//
// Transport is in-process: Network::connect() returns a Connection whose
// request() invokes the listening endpoint's handler synchronously in the
// caller's thread. Concurrency comes from concurrent callers, so handlers
// must be thread-safe (all services in this repo are). Virtual time is
// accumulated in TrafficStats rather than slept, keeping benchmarks fast
// and deterministic while preserving relative protocol costs.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/sync.hpp"
#include "net/message.hpp"
#include "obs/telemetry.hpp"

namespace ig::net {

/// "host:port" endpoint address.
struct Address {
  std::string host;
  int port = 0;

  std::string to_string() const { return host + ":" + std::to_string(port); }
  friend bool operator==(const Address&, const Address&) = default;
  friend auto operator<=>(const Address&, const Address&) = default;
};

/// Cost model for the simulated wire. Defaults approximate a 2002-era LAN:
/// ~0.5 ms TCP connect, ~0.2 ms RTT, ~100 MB/s.
struct CostModel {
  Duration connect_latency = us(500);
  Duration round_trip_latency = us(200);
  double bytes_per_us = 100.0;  ///< bandwidth

  Duration transfer_cost(std::size_t bytes) const {
    return us(static_cast<std::int64_t>(static_cast<double>(bytes) / bytes_per_us));
  }
};

/// Accounting of everything a connection (or a whole client) put on the
/// wire. This is the measured side of experiment E2.
struct TrafficStats {
  std::uint64_t connects = 0;
  std::uint64_t requests = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  Duration virtual_time{0};  ///< modeled network time (not slept)

  void merge(const TrafficStats& other) {
    connects += other.connects;
    requests += other.requests;
    bytes_sent += other.bytes_sent;
    bytes_received += other.bytes_received;
    virtual_time += other.virtual_time;
  }
};

/// Per-connection state shared between client and server sides. A security
/// handshake stores the authenticated peer identity here; services read it
/// on subsequent requests over the same connection.
class Session {
 public:
  void set(const std::string& key, std::string value) {
    MutexLock lock(mu_);
    attrs_[key] = std::move(value);
  }
  std::optional<std::string> get(const std::string& key) const {
    MutexLock lock(mu_);
    auto it = attrs_.find(key);
    if (it == attrs_.end()) return std::nullopt;
    return it->second;
  }
  /// Authenticated global identity (certificate subject DN), if any.
  std::optional<std::string> authenticated_subject() const { return get("auth.subject"); }
  /// Local account the subject was mapped to by the gridmap, if any.
  std::optional<std::string> local_user() const { return get("auth.local_user"); }

 private:
  /// Unranked: leaf lock, nothing else is acquired while it is held.
  mutable Mutex mu_{lock_rank::kUnranked, "net.Session"};
  std::map<std::string, std::string> attrs_ IG_GUARDED_BY(mu_);
};

/// Server-side request handler: full request in, full response out.
using Handler = std::function<Message(const Message& request, Session& session)>;

class Network;

/// Client side of an established connection.
class Connection {
 public:
  /// Synchronous RPC. Serializes the request, charges the cost model,
  /// and runs the endpoint handler. Fails if the endpoint closed or the
  /// network injected a fault.
  Result<Message> request(const Message& req);

  const TrafficStats& stats() const { return stats_; }
  const Address& peer() const { return peer_; }
  Session& session() { return *session_; }

 private:
  friend class Network;
  Connection(Network* net, Address peer, std::shared_ptr<Session> session)
      : net_(net), peer_(std::move(peer)), session_(std::move(session)) {}

  Network* net_;
  Address peer_;
  std::shared_ptr<Session> session_;
  TrafficStats stats_;
};

/// The in-process network: a registry of listening endpoints plus the cost
/// model and fault injection. Thread-safe.
class Network {
 public:
  explicit Network(CostModel model = {}) : model_(model) {}

  /// Register a handler at `addr`. Fails with kAlreadyExists if bound.
  Status listen(const Address& addr, Handler handler);

  /// Stop listening; in-flight connections start failing with kUnavailable.
  void close(const Address& addr);

  /// Establish a connection (charges connect latency + one connect count).
  Result<std::unique_ptr<Connection>> connect(const Address& addr);

  /// Make an address unreachable (connection attempts and requests fail)
  /// until healed. Used by the fault-tolerance experiments.
  void partition(const Address& addr);
  void heal(const Address& addr);

  /// Cheap liveness probe: is someone listening at `addr` and not
  /// partitioned off? Costs one map lookup, no connect charge — replica
  /// routers use it to skip known-dead endpoints before paying for a
  /// connection (and its failure accounting).
  bool reachable(const Address& addr) const;

  const CostModel& cost_model() const { return model_; }

  /// Aggregate traffic across all connections ever made on this network.
  TrafficStats total_stats() const;

  /// Mirror per-connection accounting into `telemetry`'s metrics
  /// (net.connects / net.requests / net.bytes.*). Nullable to detach.
  void set_telemetry(std::shared_ptr<obs::Telemetry> telemetry);

  /// Consult `injector` at points "net.connect" and "net.request": drops
  /// and errors fail with kUnavailable (still accounted — the bytes went
  /// on the wire before the fault ate them); latency faults add to the
  /// modeled virtual time. Nullable to detach.
  void set_fault_injector(std::shared_ptr<FaultInjector> injector);

 private:
  friend class Connection;

  struct EndpointEntry {
    Handler handler;
    bool partitioned = false;
  };

  Result<Message> dispatch(const Address& addr, const Message& req, Session& session);
  void account(const TrafficStats& delta);
  FaultDecision evaluate_fault(const std::string& point);

  CostModel model_;
  mutable Mutex mu_{lock_rank::kNetwork, "net.Network"};
  std::map<Address, EndpointEntry> endpoints_ IG_GUARDED_BY(mu_);
  TrafficStats totals_ IG_GUARDED_BY(mu_);
  std::shared_ptr<obs::Telemetry> telemetry_ IG_GUARDED_BY(mu_);
  std::shared_ptr<FaultInjector> fault_injector_ IG_GUARDED_BY(mu_);
};

}  // namespace ig::net
