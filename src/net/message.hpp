// Wire message model for the simulated network.
//
// All three protocols in this codebase (GRAMP, the MDS query protocol and
// the unified InfoGram protocol) frame their traffic as IGP/1.0 messages:
// a verb line, header lines, a blank line, then an opaque body. Messages
// serialize to a concrete byte form so the cost model can charge for real
// message sizes.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "common/error.hpp"

namespace ig::net {

struct Message {
  std::string verb;  ///< request verb or response status ("OK", "ERROR", ...)
  std::map<std::string, std::string> headers;
  std::string body;

  Message() = default;
  Message(std::string v, std::string b = "") : verb(std::move(v)), body(std::move(b)) {}

  Message& with(std::string key, std::string value) {
    headers[std::move(key)] = std::move(value);
    return *this;
  }

  /// Header value or nullopt.
  std::optional<std::string> header(const std::string& key) const;
  /// Header value or `fallback`.
  std::string header_or(const std::string& key, std::string fallback) const;

  /// Framed byte form: "IGP/1.0 <verb>\n<k>: <v>\n...\n\n<body>".
  std::string serialize() const;
  /// Size in bytes of the framed form (used by the bandwidth cost model).
  std::size_t wire_size() const;

  static Result<Message> parse(std::string_view wire);

  /// Convenience constructors for the common response shapes.
  static Message ok(std::string body = "");
  static Message error(const Error& err);
  /// Map an ERROR response back to an ig::Error.
  static Error to_error(const Message& response);

  bool is_error() const { return verb == "ERROR"; }
};

}  // namespace ig::net
