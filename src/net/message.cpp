#include "net/message.hpp"

#include "common/strings.hpp"

namespace ig::net {

namespace {
constexpr std::string_view kMagic = "IGP/1.0 ";
}

std::optional<std::string> Message::header(const std::string& key) const {
  auto it = headers.find(key);
  if (it == headers.end()) return std::nullopt;
  return it->second;
}

std::string Message::header_or(const std::string& key, std::string fallback) const {
  auto v = header(key);
  return v ? *v : std::move(fallback);
}

std::string Message::serialize() const {
  std::string out;
  out.reserve(kMagic.size() + verb.size() + body.size() + 64 * headers.size());
  out += kMagic;
  out += verb;
  out += '\n';
  for (const auto& [k, v] : headers) {
    out += k;
    out += ": ";
    out += v;
    out += '\n';
  }
  out += '\n';
  out += body;
  return out;
}

std::size_t Message::wire_size() const {
  std::size_t n = kMagic.size() + verb.size() + 2;  // verb line + blank line
  for (const auto& [k, v] : headers) n += k.size() + v.size() + 3;
  return n + body.size();
}

Result<Message> Message::parse(std::string_view wire) {
  if (!strings::starts_with(wire, kMagic)) {
    return Error(ErrorCode::kParseError, "message missing IGP/1.0 magic");
  }
  wire.remove_prefix(kMagic.size());
  std::size_t eol = wire.find('\n');
  if (eol == std::string_view::npos) {
    return Error(ErrorCode::kParseError, "message missing verb line terminator");
  }
  Message msg;
  msg.verb = std::string(wire.substr(0, eol));
  if (msg.verb.empty()) return Error(ErrorCode::kParseError, "empty verb");
  wire.remove_prefix(eol + 1);
  while (true) {
    eol = wire.find('\n');
    if (eol == std::string_view::npos) {
      return Error(ErrorCode::kParseError, "unterminated header section");
    }
    std::string_view line = wire.substr(0, eol);
    wire.remove_prefix(eol + 1);
    if (line.empty()) break;  // end of headers
    std::size_t colon = line.find(": ");
    if (colon == std::string_view::npos) {
      return Error(ErrorCode::kParseError,
                   "malformed header line: " + std::string(line));
    }
    msg.headers.emplace(std::string(line.substr(0, colon)),
                        std::string(line.substr(colon + 2)));
  }
  msg.body = std::string(wire);
  return msg;
}

Message Message::ok(std::string body) { return Message("OK", std::move(body)); }

Message Message::error(const Error& err) {
  Message msg("ERROR", err.message);
  msg.with("code", std::string(to_string(err.code)));
  return msg;
}

Error Message::to_error(const Message& response) {
  ErrorCode code = ErrorCode::kInternal;
  auto name = response.header_or("code", "internal");
  // Reverse of to_string(ErrorCode); unknown names map to kInternal.
  static const std::pair<std::string_view, ErrorCode> kCodes[] = {
      {"parse_error", ErrorCode::kParseError},
      {"not_found", ErrorCode::kNotFound},
      {"stale", ErrorCode::kStale},
      {"denied", ErrorCode::kDenied},
      {"timeout", ErrorCode::kTimeout},
      {"unavailable", ErrorCode::kUnavailable},
      {"invalid_argument", ErrorCode::kInvalidArgument},
      {"already_exists", ErrorCode::kAlreadyExists},
      {"cancelled", ErrorCode::kCancelled},
      {"io_error", ErrorCode::kIoError},
      {"internal", ErrorCode::kInternal},
  };
  for (const auto& [n, c] : kCodes) {
    if (n == name) {
      code = c;
      break;
    }
  }
  return Error(code, response.body);
}

}  // namespace ig::net
