#include "info/obs_provider.hpp"

namespace ig::info {

Status register_live_provider(SystemMonitor& monitor, const std::string& keyword,
                              FunctionSource::Producer producer,
                              const std::string& description) {
  ProviderOptions live;
  live.ttl = Duration(0);  // Table 1: ttl 0 = run on every request
  // Live introspection must never be served stale: a failing producer
  // should surface its error, not yesterday's values (the degradation
  // shield is for expensive external sources, not for introspection).
  live.resilience.serve_stale_on_error = false;
  return monitor.add_source(
      std::make_shared<FunctionSource>(keyword, std::move(producer), description), live);
}

Status register_obs_providers(SystemMonitor& monitor,
                              std::shared_ptr<obs::Telemetry> telemetry) {
  if (telemetry == nullptr) return Status::success();

  if (auto status = register_live_provider(
          monitor, "metrics",
          [telemetry]() -> Result<format::InfoRecord> {
            return telemetry->metrics_record("metrics");
          },
          "function:obs.metrics");
      !status.ok()) {
    return status;
  }
  if (auto status = register_live_provider(
          monitor, "metrics.jobs",
          [telemetry]() -> Result<format::InfoRecord> {
            return telemetry->metrics_record("metrics.jobs", {"gram.", "exec."});
          },
          "function:obs.metrics.jobs");
      !status.ok()) {
    return status;
  }
  if (auto status = register_live_provider(
          monitor, "traces",
          [telemetry]() -> Result<format::InfoRecord> {
            return telemetry->traces_record("traces");
          },
          "function:obs.traces");
      !status.ok()) {
    return status;
  }
  // The SLO plane: each query is also an evaluation sample (TTL 0), so
  // burn-rate history accumulates exactly as fast as someone is looking.
  if (auto status = register_live_provider(
          monitor, "slo",
          [telemetry]() -> Result<format::InfoRecord> {
            return telemetry->slo_record("slo");
          },
          "function:obs.slo");
      !status.ok()) {
    return status;
  }
  if (auto status = register_live_provider(
          monitor, "alerts",
          [telemetry]() -> Result<format::InfoRecord> {
            return telemetry->alerts_record("alerts");
          },
          "function:obs.alerts");
      !status.ok()) {
    return status;
  }
  // Tail retention + anomaly flight recorder (DESIGN.md §15): verdict
  // counters, the burn-adapted sampling rate, and the recorder's ring.
  return register_live_provider(
      monitor, "flightrecorder",
      [telemetry]() -> Result<format::InfoRecord> {
        return telemetry->flight_record("flightrecorder");
      },
      "function:obs.flightrecorder");
}

Status register_profile_providers(SystemMonitor& monitor,
                                  std::shared_ptr<obs::Telemetry> telemetry) {
  if (telemetry == nullptr) return Status::success();

  if (auto status = register_live_provider(
          monitor, "profile",
          [telemetry]() -> Result<format::InfoRecord> {
            return telemetry->profile_record("profile");
          },
          "function:obs.profile");
      !status.ok()) {
    return status;
  }
  if (auto status = register_live_provider(
          monitor, "profile.locks",
          [telemetry]() -> Result<format::InfoRecord> {
            return telemetry->profile_locks_record("profile.locks");
          },
          "function:obs.profile.locks");
      !status.ok()) {
    return status;
  }
  return register_live_provider(
      monitor, "profile.pool",
      [telemetry]() -> Result<format::InfoRecord> {
        return telemetry->profile_pool_record("profile.pool");
      },
      "function:obs.profile.pool");
}

Status register_health_provider(SystemMonitor& monitor) {
  // The producer captures `monitor` by reference — the monitor owns the
  // provider, so the reference cannot dangle (a shared_ptr would be a
  // cycle).
  return register_live_provider(
      monitor, "health",
      [&monitor]() -> Result<format::InfoRecord> { return monitor.health_record(); },
      "function:info.health");
}

}  // namespace ig::info
