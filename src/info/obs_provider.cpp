#include "info/obs_provider.hpp"

namespace ig::info {

Status register_obs_providers(SystemMonitor& monitor,
                              std::shared_ptr<obs::Telemetry> telemetry) {
  if (telemetry == nullptr) return Status::success();

  ProviderOptions live;
  live.ttl = Duration(0);  // Table 1: ttl 0 = run on every request
  // Live telemetry must never be served stale: a failing obs producer
  // should surface its error, not yesterday's counters (the degradation
  // shield is for expensive external sources, not for introspection).
  live.resilience.serve_stale_on_error = false;

  auto add = [&](const std::string& keyword, FunctionSource::Producer producer,
                 const std::string& description) {
    return monitor.add_source(
        std::make_shared<FunctionSource>(keyword, std::move(producer), description), live);
  };

  if (auto status = add(
          "metrics",
          [telemetry]() -> Result<format::InfoRecord> {
            return telemetry->metrics_record("metrics");
          },
          "function:obs.metrics");
      !status.ok()) {
    return status;
  }
  if (auto status = add(
          "metrics.jobs",
          [telemetry]() -> Result<format::InfoRecord> {
            return telemetry->metrics_record("metrics.jobs", {"gram.", "exec."});
          },
          "function:obs.metrics.jobs");
      !status.ok()) {
    return status;
  }
  if (auto status = add(
          "traces",
          [telemetry]() -> Result<format::InfoRecord> {
            return telemetry->traces_record("traces");
          },
          "function:obs.traces");
      !status.ok()) {
    return status;
  }
  // The SLO plane: each query is also an evaluation sample (TTL 0), so
  // burn-rate history accumulates exactly as fast as someone is looking.
  if (auto status = add(
          "slo",
          [telemetry]() -> Result<format::InfoRecord> {
            return telemetry->slo_record("slo");
          },
          "function:obs.slo");
      !status.ok()) {
    return status;
  }
  return add(
      "alerts",
      [telemetry]() -> Result<format::InfoRecord> {
        return telemetry->alerts_record("alerts");
      },
      "function:obs.alerts");
}

Status register_profile_providers(SystemMonitor& monitor,
                                  std::shared_ptr<obs::Telemetry> telemetry) {
  if (telemetry == nullptr) return Status::success();

  ProviderOptions live;
  live.ttl = Duration(0);  // profiles are live state, like metrics
  live.resilience.serve_stale_on_error = false;

  auto add = [&](const std::string& keyword, FunctionSource::Producer producer,
                 const std::string& description) {
    return monitor.add_source(
        std::make_shared<FunctionSource>(keyword, std::move(producer), description), live);
  };

  if (auto status = add(
          "profile",
          [telemetry]() -> Result<format::InfoRecord> {
            return telemetry->profile_record("profile");
          },
          "function:obs.profile");
      !status.ok()) {
    return status;
  }
  if (auto status = add(
          "profile.locks",
          [telemetry]() -> Result<format::InfoRecord> {
            return telemetry->profile_locks_record("profile.locks");
          },
          "function:obs.profile.locks");
      !status.ok()) {
    return status;
  }
  return add(
      "profile.pool",
      [telemetry]() -> Result<format::InfoRecord> {
        return telemetry->profile_pool_record("profile.pool");
      },
      "function:obs.profile.pool");
}

Status register_health_provider(SystemMonitor& monitor) {
  ProviderOptions live;
  live.ttl = Duration(0);  // always live: breaker states must not be cached
  live.resilience.serve_stale_on_error = false;
  return monitor.add_source(
      std::make_shared<FunctionSource>(
          "health",
          [&monitor]() -> Result<format::InfoRecord> { return monitor.health_record(); },
          "function:info.health"),
      live);
}

}  // namespace ig::info
