// SystemMonitor (paper Sec. 6.2): "the monitor service controls
// initializing and caching the results requested by the clients". It owns
// the ManagedProviders, expands (info=all), applies response modes and
// quality thresholds per keyword, builds the reflection schema
// (info=schema) and the performance records (performance=<key>).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "common/sync.hpp"
#include "format/schema.hpp"
#include "info/managed_provider.hpp"
#include "info/prefetcher.hpp"
#include "obs/trace.hpp"

namespace ig {
class ThreadPool;
}

namespace ig::info {

class SystemMonitor {
 public:
  explicit SystemMonitor(Clock& clock, std::string service_name = "infogram");
  ~SystemMonitor();

  Clock& clock() const { return clock_; }

  /// Register a provider; kAlreadyExists on duplicate keyword.
  Status add_provider(std::shared_ptr<ManagedProvider> provider);
  /// Convenience: wrap a source in a ManagedProvider and register it.
  Status add_source(std::shared_ptr<InfoSource> source, ProviderOptions options = {});

  std::shared_ptr<ManagedProvider> provider(const std::string& keyword) const;
  std::vector<std::string> keywords() const;
  std::size_t provider_count() const;

  /// Resolve one keyword under a response mode / quality threshold,
  /// optionally constrained by the xRSL timeout/action pair (GetOptions).
  /// A quality threshold takes precedence over the cached-mode TTL check.
  Result<format::InfoRecord> get(const std::string& keyword, rsl::ResponseMode mode,
                                 std::optional<double> quality_threshold = std::nullopt,
                                 const GetOptions& options = {});

  /// Resolve a list of keywords ("all" expands to every registered one),
  /// applying attribute filters to each record. Unknown keywords fail the
  /// whole query (all-or-nothing, matching the paper's simple model).
  /// With `trace` set, each keyword resolution is recorded as a span
  /// ("info:<keyword>") and the whole query as info.query.seconds.
  /// With `pool` set, a multi-keyword query fans each keyword out across
  /// the pool (caller participating, so pool re-entry cannot deadlock) and
  /// joins the records in the original keyword order; errors still fail
  /// the whole query, first keyword in request order winning.
  Result<std::vector<format::InfoRecord>> query(
      const std::vector<std::string>& keywords, rsl::ResponseMode mode,
      std::optional<double> quality_threshold = std::nullopt,
      const std::vector<std::string>& filters = {}, obs::TraceContext* trace = nullptr,
      ThreadPool* pool = nullptr, const GetOptions& options = {});

  /// Start / stop the background TTL prefetch thread over this monitor's
  /// providers. start_prefetch is kAlreadyExists when running.
  Status start_prefetch(PrefetchOptions options = {});
  void stop_prefetch();
  /// The running prefetcher, or nullptr (for counters in tests/benches).
  const Prefetcher* prefetcher() const;

  /// Provider timing statistics as an information record: for each
  /// requested keyword, <kw>:mean_s / <kw>:stddev_s / <kw>:count.
  Result<format::InfoRecord> performance_record(const std::vector<std::string>& keywords);

  /// Reflection document for (info=schema). Attribute schemas are inferred
  /// from the most recent cached record of each provider (empty until the
  /// keyword ran at least once).
  format::ServiceSchema schema() const;

  /// Total real command executions across providers (cache metric).
  std::uint64_t total_refreshes() const;

  /// Resilience snapshot for the TTL-0 `health` keyword: per provider
  /// <kw>:breaker / <kw>:validity / <kw>:refreshes / <kw>:failures plus a
  /// provider count. Reads only lock-free counters and cached state, so it
  /// stays cheap and never triggers refreshes.
  format::InfoRecord health_record() const;

  const std::string& service_name() const { return service_name_; }

  /// Attach telemetry to this monitor and to every current and future
  /// provider (cache hit/miss counters, refresh latency). Nullable.
  void set_telemetry(std::shared_ptr<obs::Telemetry> telemetry);
  std::shared_ptr<obs::Telemetry> telemetry() const;

  /// The zero-lock cache-hit lookup: resolve `keyword` against the
  /// published provider table (heterogeneous find, no temporary string)
  /// and return its TTL-valid fast-path snapshot, or nullptr when the
  /// keyword is unknown, cold, expired, or not fast-path eligible —
  /// callers then fall back to the full query() path. Takes zero ig locks
  /// and performs zero heap allocations.
  CacheSnapshotPtr query_cached_fast(std::string_view keyword, TimePoint now) const;

 private:
  /// One immutable published generation of the monitor's read-mostly
  /// state: the provider table plus the resolved telemetry handles.
  /// Writers (add_provider / set_telemetry) rebuild it under mu_ and
  /// publish; query() and every other reader takes one acquire-load.
  struct MonitorState {
    std::map<std::string, std::shared_ptr<ManagedProvider>, std::less<>> providers;
    std::shared_ptr<obs::Telemetry> telemetry;
    /// Query-latency histogram resolved once in set_telemetry(); stable
    /// for the telemetry's lifetime, so query() skips the registry lookup.
    obs::Histogram* query_seconds = nullptr;
  };
  using MonitorStatePtr = std::shared_ptr<const MonitorState>;

  static std::vector<std::string> expand(const MonitorState& state,
                                         const std::vector<std::string>& keywords);

  Clock& clock_;
  std::string service_name_;
  /// Writer serialization only (160 < kSnapshotWriter, publishes go out
  /// through state_.publish() while holding it); readers never take it.
  mutable Mutex mu_{lock_rank::kSystemMonitor, "info.SystemMonitor"};
  SnapshotCell<MonitorState> state_{"info.SystemMonitor.state"};
  /// Guarded by prefetch_mu_, not mu_: the scan thread reads providers
  /// through the public locked accessors, so sharing mu_ would deadlock.
  /// Ranked below kPrefetcher — held across prefetcher_->start()/stop().
  mutable Mutex prefetch_mu_{lock_rank::kMonitorPrefetch, "info.SystemMonitor.prefetch"};
  std::unique_ptr<Prefetcher> prefetcher_ IG_GUARDED_BY(prefetch_mu_);
};

}  // namespace ig::info
