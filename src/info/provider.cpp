#include "info/provider.hpp"

#include "common/strings.hpp"

namespace ig::info {

format::InfoRecord parse_key_value_output(const std::string& keyword,
                                          const std::string& output) {
  format::InfoRecord record;
  record.keyword = keyword;
  for (const auto& line : strings::split(output, '\n')) {
    auto trimmed = strings::trim(line);
    if (trimmed.empty()) continue;
    std::size_t colon = trimmed.find(':');
    if (colon == std::string_view::npos) {
      // Whole line as an anonymous attribute (e.g. raw echo output).
      record.add("line" + std::to_string(record.attributes.size()), std::string(trimmed));
      continue;
    }
    auto name = strings::trim(trimmed.substr(0, colon));
    auto value = strings::trim(trimmed.substr(colon + 1));
    record.add(std::string(name), std::string(value));
  }
  return record;
}

CommandSource::CommandSource(std::string keyword, std::string command_line,
                             std::shared_ptr<exec::CommandRegistry> registry)
    : keyword_(std::move(keyword)),
      command_line_(std::move(command_line)),
      registry_(std::move(registry)) {}

Result<format::InfoRecord> CommandSource::produce(const exec::CancelToken* cancel) {
  auto result = registry_->run(command_line_, cancel);
  if (!result.ok()) return result.error();
  if (result->exit_code != 0) {
    return Error(ErrorCode::kIoError,
                 strings::format("information command '%s' exited %d", command_line_.c_str(),
                                 result->exit_code));
  }
  return parse_key_value_output(keyword_, result->output);
}

FunctionSource::FunctionSource(std::string keyword, Producer producer,
                               std::string description)
    : keyword_(std::move(keyword)),
      producer_(std::move(producer)),
      description_(description.empty() ? "function:" + keyword_ : std::move(description)) {}

ProcFileSource::ProcFileSource(std::string keyword, std::string path,
                               std::shared_ptr<exec::SimSystem> system)
    : keyword_(std::move(keyword)), path_(std::move(path)), system_(std::move(system)) {}

Result<format::InfoRecord> ProcFileSource::produce() {
  auto content = system_->read_proc(path_);
  if (!content.ok()) return content.error();
  return parse_key_value_output(keyword_, content.value());
}

}  // namespace ig::info
