#include "info/prefetcher.hpp"

#include <algorithm>

#include "info/system_monitor.hpp"

namespace ig::info {

Prefetcher::Prefetcher(SystemMonitor& monitor, PrefetchOptions options)
    : monitor_(monitor), options_(options) {}

Prefetcher::~Prefetcher() { stop(); }

void Prefetcher::start() {
  MutexLock lock(mu_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { loop(); });
}

void Prefetcher::stop() {
  {
    MutexLock lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  MutexLock lock(mu_);
  running_ = false;
}

bool Prefetcher::running() const {
  MutexLock lock(mu_);
  return running_;
}

std::size_t Prefetcher::scan_once() {
  std::shared_ptr<obs::Telemetry> telemetry = monitor_.telemetry();
  obs::Counter* hit_counter = nullptr;
  obs::Counter* miss_counter = nullptr;
  obs::Counter* failure_counter = nullptr;
  if (telemetry != nullptr) {
    hit_counter = &telemetry->metrics().counter(obs::metric::kPrefetchHits);
    miss_counter = &telemetry->metrics().counter(obs::metric::kPrefetchMisses);
    failure_counter = &telemetry->metrics().counter(obs::metric::kPrefetchFailures);
  }
  std::size_t refreshed = 0;
  TimePoint now = monitor_.clock().now();
  for (const auto& kw : monitor_.keywords()) {
    auto provider = monitor_.provider(kw);
    if (provider == nullptr) continue;  // removed between snapshot and visit
    {
      MutexLock lock(backoff_mu_);
      auto it = backoff_.find(kw);
      if (it != backoff_.end() && now < it->second.retry_after) continue;
    }
    bool attempted = false;
    switch (provider->prefetch_state(options_.margin_fraction, options_.quality_floor)) {
      case ManagedProvider::PrefetchState::kDisabled:
      case ManagedProvider::PrefetchState::kFresh:
        break;
      case ManagedProvider::PrefetchState::kExpiring:
        // Still fresh by TTL, so update_state(false) would be a no-op; the
        // point is to renew *early*, hence force. The provider's delay
        // throttle still applies.
        hits_.fetch_add(1, std::memory_order_relaxed);
        if (hit_counter != nullptr) hit_counter->add();
        attempted = true;
        if (provider->update_state(/*force=*/true).ok()) ++refreshed;
        break;
      case ManagedProvider::PrefetchState::kExpired:
        misses_.fetch_add(1, std::memory_order_relaxed);
        if (miss_counter != nullptr) miss_counter->add();
        attempted = true;
        if (provider->update_state(/*force=*/false).ok()) ++refreshed;
        break;
    }
    if (!attempted) continue;
    // The stale-serve shield hides refresh failures in the Result, so
    // detect them via the provider's failure counter instead.
    std::uint64_t failures_now = provider->failure_count();
    MutexLock lock(backoff_mu_);
    BackoffState& state = backoff_[kw];
    if (failures_now > state.last_failures) {
      state.consecutive++;
      Duration backoff = options_.failure_backoff;
      for (int i = 1; i < state.consecutive && backoff < options_.failure_backoff_max; ++i) {
        backoff *= 2;
      }
      backoff = std::min(backoff, options_.failure_backoff_max);
      state.retry_after = monitor_.clock().now() + backoff;
      failures_.fetch_add(1, std::memory_order_relaxed);
      if (failure_counter != nullptr) failure_counter->add();
    } else {
      state.consecutive = 0;
      state.retry_after = TimePoint{0};
    }
    state.last_failures = failures_now;
  }
  cycles_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry != nullptr) telemetry->metrics().counter(obs::metric::kPrefetchCycles).add();
  return refreshed;
}

void Prefetcher::loop() {
  for (;;) {
    {
      MutexLock lock(mu_);
      const auto deadline = std::chrono::steady_clock::now() + options_.scan_interval;
      while (!stop_ && cv_.wait_until(mu_, deadline) != std::cv_status::timeout) {
      }
      if (stop_) return;
    }
    scan_once();
  }
}

}  // namespace ig::info
