// Background TTL prefetch — the paper's information-degradation loop made
// asynchronous.
//
// The paper refreshes a keyword when a client request finds the cache past
// its TTL (or below its quality threshold): the unlucky client pays the
// provider's latency inline. The prefetcher moves that work off the
// request path: a single background thread scans every ManagedProvider on
// a fixed real-time cadence and proactively re-runs the ones whose cache
// entry is about to expire (or has degraded below the quality floor), so a
// hot keyword is refreshed *before* a client needs it and the request path
// sees a warm cache.
//
// The scan cadence is real time (the thread actually sleeps) while all
// TTL/age arithmetic uses the injected Clock, so tests drive expiry with a
// VirtualClock and still get a live prefetch thread.
//
// Providers whose TTL is 0 (execute-every-time keywords, per Table 1) and
// keywords never queried are skipped — prefetch keeps hot data warm, it
// does not invent load.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <thread>

#include "common/clock.hpp"
#include "common/sync.hpp"

namespace ig::obs {
class Counter;
}

namespace ig::info {

class SystemMonitor;

struct PrefetchOptions {
  /// Real time between scans (independent of the service clock).
  std::chrono::milliseconds scan_interval{20};
  /// Refresh when remaining lifetime drops below this fraction of the TTL.
  double margin_fraction = 0.25;
  /// Also refresh when degradation drops cache quality below this value.
  std::optional<double> quality_floor;
  /// A keyword whose refresh failed is skipped for failure_backoff, doubling
  /// per consecutive failure up to failure_backoff_max (service-clock time,
  /// like the TTL arithmetic), instead of hammering a broken source every
  /// scan. A successful refresh resets the backoff.
  Duration failure_backoff = ms(100);
  Duration failure_backoff_max = seconds(5);
};

/// One scan thread over a SystemMonitor's providers. The monitor must
/// outlive the prefetcher (SystemMonitor owns its prefetcher, so this
/// holds by construction).
class Prefetcher {
 public:
  Prefetcher(SystemMonitor& monitor, PrefetchOptions options = {});
  ~Prefetcher();

  Prefetcher(const Prefetcher&) = delete;
  Prefetcher& operator=(const Prefetcher&) = delete;

  void start();
  void stop();
  bool running() const;

  /// Run one synchronous scan on the caller's thread (used by the loop;
  /// exposed for deterministic tests). Returns refreshes performed.
  std::size_t scan_once();

  std::uint64_t cycles() const { return cycles_.load(std::memory_order_relaxed); }
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  /// Refresh failures seen by the scan (each starts/extends a backoff).
  std::uint64_t failures() const { return failures_.load(std::memory_order_relaxed); }

 private:
  void loop();

  /// Per-keyword failure-backoff bookkeeping. Failures are detected via
  /// deltas of ManagedProvider::failure_count(), because the stale-serve
  /// shield makes a failed refresh look successful at the Result level.
  struct BackoffState {
    std::uint64_t last_failures = 0;
    int consecutive = 0;
    TimePoint retry_after{0};
  };

  SystemMonitor& monitor_;
  PrefetchOptions options_;

  /// Unranked: leaf lock, released around every monitor_ call.
  Mutex backoff_mu_{lock_rank::kUnranked, "info.Prefetcher.backoff"};
  std::map<std::string, BackoffState> backoff_ IG_GUARDED_BY(backoff_mu_);

  mutable Mutex mu_{lock_rank::kPrefetcher, "info.Prefetcher"};
  CondVar cv_;
  bool stop_ IG_GUARDED_BY(mu_) = false;
  bool running_ IG_GUARDED_BY(mu_) = false;
  /// Started under mu_ in start(); joined in stop() after running_ clears.
  std::thread thread_;

  std::atomic<std::uint64_t> cycles_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> failures_{0};
};

}  // namespace ig::info
