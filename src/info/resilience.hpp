// Resilience primitives for the provider pipeline: bounded retry with
// jittered exponential backoff and a per-keyword circuit breaker.
//
// The breaker follows the classic three-state machine. Closed: requests
// flow, consecutive failures are counted. Open (after `failure_threshold`
// consecutive failures): requests fast-fail with kUnavailable instead of
// hammering a provider that is known to be down — the information-service
// analogue of BDII's "stop asking a dead LDAP backend". Half-open (after
// `open_duration` on the injected clock): one probe is let through; its
// success closes the breaker, its failure re-opens it.
//
// Everything is clock-injected and Rng-seeded, so tests drive the state
// machine deterministically with a VirtualClock.
#pragma once

#include <functional>
#include <string_view>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/sync.hpp"

namespace ig::info {

/// Bounded retry schedule. max_attempts == 1 disables retries (default).
struct RetryOptions {
  int max_attempts = 1;
  Duration initial_backoff = ms(10);
  double multiplier = 2.0;
  Duration max_backoff = seconds(5);
  /// Fraction of the backoff randomized away (0.2 = up to ±20%), so
  /// synchronized clients do not retry in lockstep.
  double jitter = 0.2;
};

/// Backoff before retry number `retry` (1-based: the wait after the first
/// failed attempt is retry 1). Exponential with jitter, capped.
Duration retry_backoff(const RetryOptions& options, int retry, Rng& rng);

enum class BreakerState { kClosed, kOpen, kHalfOpen };

std::string_view to_string(BreakerState state);

struct BreakerOptions {
  int failure_threshold = 5;        ///< consecutive failures that open it
  Duration open_duration = seconds(30);  ///< how long to fast-fail
};

class CircuitBreaker {
 public:
  CircuitBreaker(BreakerOptions options, const Clock& clock);

  /// May a request proceed right now? Open + elapsed open_duration flips
  /// to half-open and admits the probe.
  bool allow();
  void record_success();
  void record_failure();

  BreakerState state() const;

  /// Invoked (outside the lock) on every state change. Set at wiring
  /// time, before traffic.
  void set_transition_hook(std::function<void(BreakerState)> hook);

 private:
  void transition_locked(BreakerState next, std::function<void(BreakerState)>& fire)
      IG_REQUIRES(mu_);

  BreakerOptions options_;
  const Clock& clock_;
  mutable Mutex mu_{lock_rank::kResilience, "info.CircuitBreaker"};
  BreakerState state_ IG_GUARDED_BY(mu_) = BreakerState::kClosed;
  int consecutive_failures_ IG_GUARDED_BY(mu_) = 0;
  TimePoint open_until_ IG_GUARDED_BY(mu_){0};
  std::function<void(BreakerState)> hook_ IG_GUARDED_BY(mu_);
};

}  // namespace ig::info
