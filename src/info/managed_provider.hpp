// ManagedProvider: the paper's SystemInformation interface semantics.
//
// Mirrors the Java interface of Sec. 6.2 around any InfoSource:
//
//   * query_state()  — non-blocking; valid information only if previously
//     queried and the TTL has not expired, otherwise an error (the paper
//     throws an exception; here it is a kStale Result).
//   * update_state() — blocking; "if multiple updateState methods are
//     invoked, monitors are used to perform only one such update at a
//     time" (a mutex serializes real refreshes, and a thread that waited
//     while another refreshed reuses the fresh result).
//   * delay          — minimum time between consecutive *actual* runs of
//     the underlying command, protecting the host from clients asking
//     faster than the information can be produced.
//   * ttl            — lifetime of the cached record; 0 means "execute the
//     keyword every time it is requested" (Table 1).
//   * performance    — mean/stddev of the time each update took, returned
//     through the xRSL `performance` tag.
//   * validity       — current quality of the cache after degradation.
//
// Optionally the TTL self-adapts to the observed volatility of the data
// ("self adaptation of information updates", Sec. 6.1): values that barely
// change between refreshes earn a longer TTL, volatile ones a shorter.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/sync.hpp"
#include "info/degradation.hpp"
#include "info/provider.hpp"
#include "info/resilience.hpp"
#include "obs/telemetry.hpp"
#include "rsl/xrsl.hpp"

namespace ig::info {

/// Failure handling around the underlying source. Defaults keep the
/// historical behaviour except for stale-serve: a refresh failure with a
/// cached record now degrades instead of erroring — the paper's quality
/// mechanism used as the failure shield.
struct ResilienceOptions {
  RetryOptions retry;  ///< max_attempts 1 = no retries
  bool breaker_enabled = false;
  BreakerOptions breaker;
  /// On refresh failure with a cached record, serve last_state() with its
  /// degraded quality plus `stale=true` / `source=cache` attributes
  /// instead of the error. Cold caches still surface the error.
  bool serve_stale_on_error = true;
};

struct ProviderOptions {
  Duration ttl = ms(60000);
  Duration delay{0};
  std::shared_ptr<DegradationFunction> degradation = std::make_shared<BinaryDegradation>();

  /// Enable TTL self-adaptation within [min_ttl, max_ttl].
  bool adaptive_ttl = false;
  Duration min_ttl = ms(100);
  Duration max_ttl = seconds(600);
  /// Relative-change thresholds steering the adaptation.
  double shrink_above = 0.05;
  double grow_below = 0.005;

  ResilienceOptions resilience;
};

/// Per-request constraints: the xRSL `timeout` / `action` tags applied to
/// an information query. action=cancel arms a deadline that interrupts a
/// polling source mid-run (result: kTimeout, shielded by stale-serve);
/// action=exception lets the refresh finish and annotates the record with
/// `deadline_exceeded=true` when it came back late.
struct GetOptions {
  std::optional<Duration> timeout;
  rsl::TimeoutAction action = rsl::TimeoutAction::kCancel;
};

/// One immutable published generation of a provider's cache. Refresh builds
/// a CacheSnapshot off-lock and publishes it through an ig::SnapshotCell;
/// readers take one acquire-load and share the generation by shared_ptr —
/// no mutex, no copy. When the degradation model is constant within the TTL
/// (`fast_path_eligible`), the wire payloads are pre-rendered here at
/// refresh time, so a TTL-valid cache hit can answer with a string_view
/// into the snapshot: zero locks and zero allocations end to end.
struct CacheSnapshot {
  format::InfoRecord record;  ///< quality stamped 100 at refresh
  TimePoint refreshed_at{0};  ///< when `record` was produced
  /// True when the degradation function guarantees quality is constant for
  /// every age within the TTL (binary model): only then are the bytes
  /// rendered at refresh exact for the snapshot's whole TTL-valid life.
  bool fast_path_eligible = false;
  std::string ldif;  ///< pre-rendered single-record payloads (empty when
  std::string xml;   ///<   not fast_path_eligible); byte-identical to the
  std::string dsml;  ///<   legacy render of a fresh cache hit

  /// Pre-rendered payload for `format`; empty view when not eligible.
  std::string_view payload(rsl::OutputFormat format) const;
};
using CacheSnapshotPtr = std::shared_ptr<const CacheSnapshot>;

class ManagedProvider {
 public:
  ManagedProvider(std::shared_ptr<InfoSource> source, Clock& clock,
                  ProviderOptions options = {});

  const std::string& keyword() const { return keyword_; }
  std::string command() const { return source_->command(); }

  /// Non-blocking cache read; kStale if never updated or past TTL.
  /// Degraded quality values are applied to the returned attributes.
  /// Lock-free: reads the published snapshot, never touches a mutex.
  Result<format::InfoRecord> query_state() const;

  /// The current published cache generation (nullptr before the first
  /// successful refresh), regardless of age. Lock-free.
  CacheSnapshotPtr snapshot() const { return cell_.read(); }

  /// The zero-lock zero-alloc cache-hit primitive: the published snapshot
  /// iff it is TTL-valid *and* fast-path eligible (pre-rendered payloads
  /// are exact), else nullptr and the caller falls back to query_state()/
  /// refresh. Counts a cache hit on success.
  CacheSnapshotPtr snapshot_if_fresh(TimePoint now) const;

  /// Blocking refresh. With force=false, a cache made fresh while waiting
  /// for the update monitor (or within the delay window) is returned
  /// without re-running the command.
  Result<format::InfoRecord> update_state(bool force = false);

  /// Whatever is cached, regardless of age (response=last); kNotFound if
  /// the keyword has never been produced.
  Result<format::InfoRecord> last_state() const;

  /// xRSL response-mode dispatch, optionally under a deadline.
  Result<format::InfoRecord> get(rsl::ResponseMode mode) { return get(mode, GetOptions{}); }
  Result<format::InfoRecord> get(rsl::ResponseMode mode, const GetOptions& options);

  /// Quality-threshold read (xRSL `quality` tag): refresh if any returned
  /// attribute degraded below `threshold_percent`.
  Result<format::InfoRecord> get_with_quality(double threshold_percent,
                                              const GetOptions& options = {});

  /// How the background prefetcher should treat this provider right now.
  /// kDisabled — nothing cached yet (the keyword has never been hot) or
  /// TTL<=0 (execute-every-time keywords cannot be kept warm); kFresh —
  /// plenty of lifetime left; kExpiring — inside the margin (remaining
  /// lifetime below `margin_fraction` of the TTL) or degraded below
  /// `quality_floor`, refresh now to keep it warm; kExpired — already past
  /// the TTL, a refresh is repair rather than prefetch.
  enum class PrefetchState { kDisabled, kFresh, kExpiring, kExpired };
  PrefetchState prefetch_state(double margin_fraction,
                               std::optional<double> quality_floor = std::nullopt) const;

  Duration ttl() const;
  void set_ttl(Duration ttl);
  Duration delay() const;
  void set_delay(Duration delay);

  /// Provider timing statistics in seconds (the `performance` tag).
  RunningStats performance() const { return perf_.snapshot(); }
  Duration average_update_time() const;

  /// Current cache quality, 0..100 (0 when nothing is cached).
  int validity() const;

  /// Number of real command executions this provider has made.
  std::uint64_t refresh_count() const;

  /// Total source failures (each failed produce attempt counts one); the
  /// prefetcher keys its failure backoff off deltas of this, since the
  /// stale-serve shield hides failures from update_state()'s Result.
  std::uint64_t failure_count() const;

  /// Circuit-breaker state; kClosed when the breaker is disabled.
  BreakerState breaker_state() const;
  bool breaker_enabled() const { return breaker_ != nullptr; }

  const DegradationFunction& degradation() const { return *options_.degradation; }

  /// Count cache hits/misses and refresh latency into `telemetry`
  /// (info.cache.hits / info.cache.misses / info.refresh.seconds).
  /// A hit is a request served from cache; a miss actually ran the
  /// source. Nullable; usually set by SystemMonitor::set_telemetry.
  void set_telemetry(std::shared_ptr<obs::Telemetry> telemetry);

 private:
  void count_hit() const;

  /// Copy of the snapshot's record with degradation applied for age
  /// `now - refreshed_at` against the *current* TTL.
  format::InfoRecord degraded_copy(const CacheSnapshot& snap, TimePoint now) const;
  void note_change(const format::InfoRecord& old_record,
                   const format::InfoRecord& new_record, Duration elapsed);
  /// The real refresh: breaker gate, attempt/retry loop, deadline, cache
  /// stamp. update_state(force) is refresh(force, {}).
  Result<format::InfoRecord> refresh(bool force, const GetOptions& get_options);
  /// Failure shield: degraded+annotated cached record, or `err` when cold.
  Result<format::InfoRecord> shield(const Error& err);
  /// Tail-retention slow verdict, per keyword: raise kSignalSlow when a
  /// refresh ran past the p99-derived threshold of *this keyword's*
  /// refresh-latency histogram (the global request threshold would let a
  /// habitually slow keyword hide a fast one's outliers). The threshold is
  /// cached in an atomic, refreshed every 64 checks.
  void maybe_signal_slow(double elapsed_s);

  std::shared_ptr<InfoSource> source_;
  std::string keyword_;
  Clock& clock_;  ///< non-const: retry backoff sleeps between attempts
  ProviderOptions options_;

  /// The published cache. Every write happens under update_mu_ (refresh is
  /// the only writer), so generations go through cell_.publish() directly;
  /// readers never lock. The TTL is authoritative here, not in the
  /// snapshot: set_ttl() and adaptive-TTL changes take effect immediately
  /// for freshness/degradation of the already-published record, exactly as
  /// the old mutex-guarded current_ttl_ did.
  SnapshotCell<CacheSnapshot> cell_{"info.ManagedProvider.cache"};
  std::atomic<std::int64_t> ttl_us_{0};

  /// The paper's "monitor": held across the whole refresh, including the
  /// underlying command run. Deliberately kUnranked: composite providers
  /// (`all`, schema, health) re-enter SystemMonitor::query under their
  /// monitor, and the nested get() then takes *other* providers' update
  /// monitors — same-class nesting a fixed rank cannot order (the Giis
  /// case). Keyword expansion dedups, so a true self-cycle shows up as
  /// the recursive-acquisition check, which kUnranked locks still get.
  Mutex update_mu_{lock_rank::kUnranked, "info.ManagedProvider.update"};
  TimePoint last_attempt_ IG_GUARDED_BY(update_mu_){0};  ///< for the delay throttle
  std::atomic<std::int64_t> delay_us_{0};

  SharedStats perf_;
  std::atomic<std::uint64_t> refreshes_{0};
  std::atomic<std::uint64_t> failures_{0};

  std::unique_ptr<CircuitBreaker> breaker_;  ///< null when disabled
  Rng retry_rng_ IG_GUARDED_BY(update_mu_);  ///< jitter stream

  std::shared_ptr<obs::Telemetry> telemetry_;  ///< written before use, then const
  obs::Counter* cache_hits_ = nullptr;
  obs::Counter* cache_misses_ = nullptr;
  obs::Histogram* refresh_seconds_ = nullptr;
  obs::Histogram* keyword_refresh_seconds_ = nullptr;  ///< info.refresh.seconds.<keyword>
  obs::Counter* retry_attempts_ = nullptr;
  obs::Counter* retry_recovered_ = nullptr;
  obs::Counter* retry_exhausted_ = nullptr;
  obs::Counter* degraded_served_ = nullptr;
  obs::Gauge* breaker_gauge_ = nullptr;  ///< info.breaker.state.<keyword>
  obs::Counter* breaker_opened_ = nullptr;
  obs::Counter* breaker_half_open_ = nullptr;
  obs::Counter* breaker_closed_ = nullptr;
  /// Cached per-keyword slow threshold (seconds); +inf until the keyword
  /// histogram has enough samples. See maybe_signal_slow().
  std::atomic<double> slow_threshold_s_{std::numeric_limits<double>::infinity()};
  std::atomic<std::uint64_t> slow_checks_{0};
};

}  // namespace ig::info
