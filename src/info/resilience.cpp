#include "info/resilience.hpp"

#include <algorithm>
#include <cmath>

namespace ig::info {

Duration retry_backoff(const RetryOptions& options, int retry, Rng& rng) {
  double base = static_cast<double>(options.initial_backoff.count()) *
                std::pow(options.multiplier, retry - 1);
  base = std::min(base, static_cast<double>(options.max_backoff.count()));
  if (options.jitter > 0.0) {
    base *= rng.uniform(1.0 - options.jitter, 1.0 + options.jitter);
  }
  auto capped = std::min(base, static_cast<double>(options.max_backoff.count()));
  return Duration(static_cast<std::int64_t>(std::max(capped, 0.0)));
}

std::string_view to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(BreakerOptions options, const Clock& clock)
    : options_(options), clock_(clock) {}

void CircuitBreaker::transition_locked(BreakerState next,
                                       std::function<void(BreakerState)>& fire) {
  if (state_ == next) return;
  state_ = next;
  fire = hook_;
}

bool CircuitBreaker::allow() {
  std::function<void(BreakerState)> fire;
  bool allowed = false;
  {
    MutexLock lock(mu_);
    switch (state_) {
      case BreakerState::kClosed:
      case BreakerState::kHalfOpen:
        // Half-open admits probes; the provider's update monitor already
        // serializes refreshes, so at most one probe is in flight.
        allowed = true;
        break;
      case BreakerState::kOpen:
        if (clock_.now() >= open_until_) {
          transition_locked(BreakerState::kHalfOpen, fire);
          allowed = true;
        }
        break;
    }
  }
  if (fire) fire(BreakerState::kHalfOpen);
  return allowed;
}

void CircuitBreaker::record_success() {
  std::function<void(BreakerState)> fire;
  {
    MutexLock lock(mu_);
    consecutive_failures_ = 0;
    transition_locked(BreakerState::kClosed, fire);
  }
  if (fire) fire(BreakerState::kClosed);
}

void CircuitBreaker::record_failure() {
  std::function<void(BreakerState)> fire;
  {
    MutexLock lock(mu_);
    ++consecutive_failures_;
    bool reopen = state_ == BreakerState::kHalfOpen;  // failed probe
    if (reopen || (state_ == BreakerState::kClosed &&
                   consecutive_failures_ >= options_.failure_threshold)) {
      open_until_ = clock_.now() + options_.open_duration;
      transition_locked(BreakerState::kOpen, fire);
    }
  }
  if (fire) fire(BreakerState::kOpen);
}

BreakerState CircuitBreaker::state() const {
  MutexLock lock(mu_);
  return state_;
}

void CircuitBreaker::set_transition_hook(std::function<void(BreakerState)> hook) {
  MutexLock lock(mu_);
  hook_ = std::move(hook);
}

}  // namespace ig::info
