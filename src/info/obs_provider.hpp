// The `obs` provider family: the service's own telemetry exposed through
// the same keyword machinery as every other information source — the
// paper's reflection idea (info=schema) extended to the runtime itself.
//
//   (info=metrics)       all counters/gauges/histograms (with exemplars)
//   (info=metrics.jobs)  the gram.* / exec.* job subset
//   (info=traces)        the retained (stitched, multi-hop) request traces
//   (info=slo)           every objective's compliance + burn rates
//   (info=alerts)        only the objectives currently firing
//   (info=profile)       continuous-profiler summary (locks/allocs/pools)
//   (info=profile.locks) full lock-contention table with exemplars
//   (info=profile.pool)  per-pool queue-wait / utilization profile
//
// Registered with ttl=0 ("execute the keyword every time it is
// requested", Table 1), so queries always see live values, and the
// keywords show up in schema reflection like any provider.
#pragma once

#include <memory>
#include <string>

#include "info/system_monitor.hpp"
#include "obs/telemetry.hpp"

namespace ig::info {

/// Register a TTL-0 live keyword on `monitor`: the producer runs on
/// every request ("execute the keyword every time it is requested",
/// Table 1) and is never served stale — a failing live producer surfaces
/// its error, not yesterday's values. This is the shared shape of every
/// introspection keyword (metrics/traces/profile/health/replicas);
/// kAlreadyExists if the keyword is taken.
Status register_live_provider(SystemMonitor& monitor, const std::string& keyword,
                              FunctionSource::Producer producer,
                              const std::string& description);

/// Register the `metrics`, `metrics.jobs`, `traces`, `slo` and `alerts`
/// keywords on `monitor`, backed by `telemetry`. kAlreadyExists if any
/// keyword is taken; no-op success when `telemetry` is null.
Status register_obs_providers(SystemMonitor& monitor,
                              std::shared_ptr<obs::Telemetry> telemetry);

/// Register the TTL-0 `profile`, `profile.locks` and `profile.pool`
/// keywords on `monitor`: the continuous profiler's summary, the full
/// lock-contention table and the per-pool scheduler profile.
/// kAlreadyExists if any keyword is taken; no-op success when `telemetry`
/// is null.
Status register_profile_providers(SystemMonitor& monitor,
                                  std::shared_ptr<obs::Telemetry> telemetry);

/// Register the TTL-0 `health` keyword on `monitor`: per-provider breaker
/// state, cache validity and refresh/failure counters (the resilience
/// layer made queryable). Works without telemetry. The producer captures
/// `monitor` by reference — the monitor owns the provider, so the
/// reference cannot dangle (a shared_ptr would be a cycle).
Status register_health_provider(SystemMonitor& monitor);

}  // namespace ig::info
