// Information providers — the paper's SystemInformation interface.
//
// Paper Sec. 6.2 lists three ways the system information service obtains
// data: (a) a system command run via the runtime, (b) a function exposing
// runtime information, (c) a read from a file such as the Linux /proc
// filesystem. InfoSource is that producer-side interface; the TTL/cache/
// delay/performance machinery of the paper's interface lives in
// ManagedProvider (src/info/managed_provider.hpp), which wraps any source.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/error.hpp"
#include "exec/command.hpp"
#include "format/record.hpp"
#include "format/schema.hpp"

namespace ig::info {

/// Producer of raw information for one keyword.
class InfoSource {
 public:
  virtual ~InfoSource() = default;

  virtual std::string keyword() const = 0;

  /// Produce a fresh record. Blocking; may be expensive. The caller
  /// (ManagedProvider) stamps generated_at/ttl and serializes calls.
  virtual Result<format::InfoRecord> produce() = 0;

  /// Cancellable production: sources that poll (command execution, the
  /// fault-injection hang) honour `cancel` mid-run, which is how info
  /// deadlines ((timeout=...)(action=cancel)) interrupt a slow provider.
  /// The default ignores the token and produces normally.
  virtual Result<format::InfoRecord> produce(const exec::CancelToken* cancel) {
    (void)cancel;
    return produce();
  }

  /// Describe the command or mechanism behind the keyword, for schema
  /// reflection ("date -u", "function:jvm.load", "file:/proc/meminfo").
  virtual std::string command() const = 0;
};

/// (a) Command-backed source: runs a command line through the registry and
/// parses "name: value" output lines into attributes.
class CommandSource final : public InfoSource {
 public:
  CommandSource(std::string keyword, std::string command_line,
                std::shared_ptr<exec::CommandRegistry> registry);

  std::string keyword() const override { return keyword_; }
  Result<format::InfoRecord> produce() override { return produce(nullptr); }
  Result<format::InfoRecord> produce(const exec::CancelToken* cancel) override;
  std::string command() const override { return command_line_; }

 private:
  std::string keyword_;
  std::string command_line_;
  std::shared_ptr<exec::CommandRegistry> registry_;
};

/// (b) Function-backed source: runtime information exposed directly.
class FunctionSource final : public InfoSource {
 public:
  using Producer = std::function<Result<format::InfoRecord>()>;

  FunctionSource(std::string keyword, Producer producer, std::string description = "");

  std::string keyword() const override { return keyword_; }
  Result<format::InfoRecord> produce() override { return producer_(); }
  std::string command() const override { return description_; }

 private:
  std::string keyword_;
  Producer producer_;
  std::string description_;
};

/// (c) File-backed source: reads a simulated /proc file and parses
/// "name: value" lines.
class ProcFileSource final : public InfoSource {
 public:
  ProcFileSource(std::string keyword, std::string path,
                 std::shared_ptr<exec::SimSystem> system);

  std::string keyword() const override { return keyword_; }
  Result<format::InfoRecord> produce() override;
  std::string command() const override { return "file:" + path_; }

 private:
  std::string keyword_;
  std::string path_;
  std::shared_ptr<exec::SimSystem> system_;
};

/// Parse "name: value" lines (the convention of all simulated commands
/// and proc files) into a record for `keyword`.
format::InfoRecord parse_key_value_output(const std::string& keyword,
                                          const std::string& output);

}  // namespace ig::info
