#include "info/fault_source.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace ig::info {

FaultInjectingSource::FaultInjectingSource(std::shared_ptr<InfoSource> inner,
                                           std::shared_ptr<FaultInjector> injector,
                                           Clock& clock)
    : inner_(std::move(inner)),
      injector_(std::move(injector)),
      clock_(clock),
      point_("info." + inner_->keyword()) {}

Result<format::InfoRecord> FaultInjectingSource::produce(const exec::CancelToken* cancel) {
  FaultDecision fault = injector_->evaluate(point_);
  if (fault.fire) {
    switch (fault.kind) {
      case FaultKind::kError:
      case FaultKind::kDrop:
        return fault.to_error(point_);
      case FaultKind::kLatency:
        clock_.sleep_for(fault.latency);
        break;  // slow but successful
      case FaultKind::kHang: {
        // Block in cancellable slices: a deadline-armed token interrupts
        // the hang (kCancelled, mapped to kTimeout above); without one the
        // hang is bounded by the spec latency so the pipeline cannot
        // deadlock, and ends in the same unavailability error.
        Duration remaining = fault.latency;
        const Duration slice = ms(1);
        while (remaining.count() > 0) {
          if (cancel != nullptr && cancel->cancelled()) {
            return Error(ErrorCode::kCancelled, "hang cancelled at " + point_);
          }
          Duration step = std::min(remaining, slice);
          clock_.sleep_for(step);
          remaining -= step;
        }
        return fault.to_error(point_);
      }
      case FaultKind::kGarbage: {
        // A syntactically valid record carrying nonsense: downstream must
        // pass it through (or filter it) without crashing.
        format::InfoRecord garbage;
        garbage.keyword = inner_->keyword();
        garbage.add("garbage",
                    strings::format("\x7f#corrupt-%llu",
                                    static_cast<unsigned long long>(fault.sequence)));
        return garbage;
      }
      case FaultKind::kCrash:
        return Error(ErrorCode::kIoError, "injected crash at " + point_);
    }
  }
  return inner_->produce(cancel);
}

}  // namespace ig::info
