// Information degradation (paper Sec. 5.2 and 6.4).
//
// "It is not unreasonable to attach a degradation function with the actual
// value of information that reflects the degree of degradation. This
// function may be influenced by time, system state, or prediction
// functions." Quality is a percentage in [0,100]; the service attaches it
// to every attribute and the xRSL `quality` tag triggers a refresh when it
// falls below the client's threshold.
//
// Four models, matching the paper's taxonomy:
//  * Binary — "case one": information is accurate or inaccurate (a step at
//    the TTL).
//  * Linear — discrete-ish decay to zero over a horizon.
//  * Exponential — smooth decay with a time constant.
//  * ObservationCorrected — "self correction based on observation data"
//    (the data-assimilation analogy): wraps a base model and rescales its
//    clock by the observed change rate of the underlying value, so a
//    volatile source degrades faster and a static one slower.
#pragma once

#include <memory>
#include <string>

#include "common/clock.hpp"
#include "common/stats.hpp"
#include "common/sync.hpp"

namespace ig::info {

class DegradationFunction {
 public:
  virtual ~DegradationFunction() = default;

  /// Quality percentage for information of age `age`, given the provider's
  /// TTL. Must be non-increasing in `age` and within [0,100].
  virtual double quality(Duration age, Duration ttl) const = 0;

  /// True when quality is a constant 100 for every age within the TTL (the
  /// binary model). Providers pre-render response payloads into their
  /// published cache snapshot only under this guarantee — with a constant
  /// in-TTL quality the bytes rendered at refresh time are exact for the
  /// snapshot's whole TTL-valid life, which is what makes the cache-hit
  /// query path allocation-free. Time-varying models still get lock-free
  /// snapshot reads, just not the pre-rendered fast path.
  virtual bool constant_within_ttl() const { return false; }

  virtual std::string name() const = 0;
};

/// 100 while age <= ttl, 0 after.
class BinaryDegradation final : public DegradationFunction {
 public:
  double quality(Duration age, Duration ttl) const override;
  bool constant_within_ttl() const override { return true; }
  std::string name() const override { return "binary"; }
};

/// Linear decay hitting 0 at `horizon_ttls` multiples of the TTL.
class LinearDegradation final : public DegradationFunction {
 public:
  explicit LinearDegradation(double horizon_ttls = 2.0) : horizon_ttls_(horizon_ttls) {}
  double quality(Duration age, Duration ttl) const override;
  std::string name() const override { return "linear"; }

 private:
  double horizon_ttls_;
};

/// 100 * exp(-age / (tau_ttls * ttl)).
class ExponentialDegradation final : public DegradationFunction {
 public:
  explicit ExponentialDegradation(double tau_ttls = 1.0) : tau_ttls_(tau_ttls) {}
  double quality(Duration age, Duration ttl) const override;
  std::string name() const override { return "exponential"; }

 private:
  double tau_ttls_;
};

/// Self-correcting wrapper. Callers report, at each refresh, the relative
/// change of the value since the previous refresh together with the time
/// between refreshes; the model estimates a change rate and speeds up or
/// slows down the base function's clock accordingly.
class ObservationCorrectedDegradation final : public DegradationFunction {
 public:
  explicit ObservationCorrectedDegradation(std::shared_ptr<DegradationFunction> base,
                                           double nominal_change_per_ttl = 0.1);

  double quality(Duration age, Duration ttl) const override;
  std::string name() const override;

  /// Report an observation: the value changed by `relative_change`
  /// (|new-old| / max(|old|, eps)) over `elapsed` since the last refresh.
  void observe(double relative_change, Duration elapsed, Duration ttl);

  /// Current clock-scaling factor (1 = nominal, >1 = degrade faster).
  double rate_factor() const;

 private:
  std::shared_ptr<DegradationFunction> base_;
  double nominal_change_per_ttl_;
  /// Lock-free accumulator: quality() runs on the snapshot read path
  /// (degraded copies of cached records), which must take zero ig locks.
  AtomicStats observed_change_per_ttl_;
};

/// Construct by name ("binary", "linear", "exponential", "observed");
/// nullptr for unknown names.
std::shared_ptr<DegradationFunction> make_degradation(const std::string& name);

}  // namespace ig::info
