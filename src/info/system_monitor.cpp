#include "info/system_monitor.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "common/thread_pool.hpp"

namespace ig::info {

SystemMonitor::SystemMonitor(Clock& clock, std::string service_name)
    : clock_(clock), service_name_(std::move(service_name)) {
  // Publish an empty generation up front so readers never see nullptr.
  state_.publish(std::make_shared<const MonitorState>());
}

SystemMonitor::~SystemMonitor() { stop_prefetch(); }

Status SystemMonitor::start_prefetch(PrefetchOptions options) {
  MutexLock lock(prefetch_mu_);
  if (prefetcher_ != nullptr && prefetcher_->running()) {
    return Error(ErrorCode::kAlreadyExists, "prefetch already running");
  }
  prefetcher_ = std::make_unique<Prefetcher>(*this, options);
  prefetcher_->start();
  return Status::success();
}

void SystemMonitor::stop_prefetch() {
  MutexLock lock(prefetch_mu_);
  if (prefetcher_ != nullptr) prefetcher_->stop();
}

const Prefetcher* SystemMonitor::prefetcher() const {
  MutexLock lock(prefetch_mu_);
  return prefetcher_.get();
}

Status SystemMonitor::add_provider(std::shared_ptr<ManagedProvider> provider) {
  MutexLock lock(mu_);
  MonitorStatePtr current = state_.read();
  if (current->providers.count(provider->keyword()) != 0) {
    return Error(ErrorCode::kAlreadyExists,
                 "provider already registered: " + provider->keyword());
  }
  if (current->telemetry != nullptr) provider->set_telemetry(current->telemetry);
  auto next = std::make_shared<MonitorState>(*current);
  next->providers.emplace(provider->keyword(), std::move(provider));
  state_.publish(std::move(next));
  return Status::success();
}

void SystemMonitor::set_telemetry(std::shared_ptr<obs::Telemetry> telemetry) {
  MutexLock lock(mu_);
  auto next = std::make_shared<MonitorState>(*state_.read());
  next->telemetry = std::move(telemetry);
  next->query_seconds =
      next->telemetry != nullptr
          ? &next->telemetry->metrics().histogram(obs::metric::kInfoQuerySeconds)
          : nullptr;
  for (const auto& [kw, p] : next->providers) p->set_telemetry(next->telemetry);
  state_.publish(std::move(next));
}

std::shared_ptr<obs::Telemetry> SystemMonitor::telemetry() const {
  return state_.read()->telemetry;
}

Status SystemMonitor::add_source(std::shared_ptr<InfoSource> source, ProviderOptions options) {
  return add_provider(
      std::make_shared<ManagedProvider>(std::move(source), clock_, std::move(options)));
}

std::shared_ptr<ManagedProvider> SystemMonitor::provider(const std::string& keyword) const {
  MonitorStatePtr state = state_.read();
  auto it = state->providers.find(keyword);
  return it == state->providers.end() ? nullptr : it->second;
}

IG_STATIC_FAST_PATH
CacheSnapshotPtr SystemMonitor::query_cached_fast(std::string_view keyword,
                                                  TimePoint now) const {
  MonitorStatePtr state = state_.read();
  auto it = state->providers.find(keyword);  // heterogeneous: no temp string
  if (it == state->providers.end()) return nullptr;
  return it->second->snapshot_if_fresh(now);
}

std::vector<std::string> SystemMonitor::keywords() const {
  MonitorStatePtr state = state_.read();
  std::vector<std::string> out;
  out.reserve(state->providers.size());
  for (const auto& [kw, p] : state->providers) out.push_back(kw);
  return out;
}

std::size_t SystemMonitor::provider_count() const {
  return state_.read()->providers.size();
}

Result<format::InfoRecord> SystemMonitor::get(const std::string& keyword,
                                              rsl::ResponseMode mode,
                                              std::optional<double> quality_threshold,
                                              const GetOptions& options) {
  auto p = provider(keyword);
  if (p == nullptr) return Error(ErrorCode::kNotFound, "unknown keyword: " + keyword);
  if (quality_threshold && mode == rsl::ResponseMode::kCached) {
    return p->get_with_quality(*quality_threshold, options);
  }
  return p->get(mode, options);
}

std::vector<std::string> SystemMonitor::expand(const MonitorState& state,
                                               const std::vector<std::string>& keywords) {
  std::vector<std::string> out;
  for (const auto& kw : keywords) {
    if (strings::iequals(kw, "all")) {
      for (const auto& [name, p] : state.providers) out.push_back(name);
    } else {
      out.push_back(kw);
    }
  }
  // Dedup while preserving order.
  std::vector<std::string> unique;
  for (auto& kw : out) {
    if (std::find(unique.begin(), unique.end(), kw) == unique.end()) {
      unique.push_back(std::move(kw));
    }
  }
  return unique;
}

Result<std::vector<format::InfoRecord>> SystemMonitor::query(
    const std::vector<std::string>& keywords, rsl::ResponseMode mode,
    std::optional<double> quality_threshold, const std::vector<std::string>& filters,
    obs::TraceContext* trace, ThreadPool* pool, const GetOptions& options) {
  MonitorStatePtr state = state_.read();
  std::vector<std::string> expanded = expand(*state, keywords);
  obs::Histogram* query_seconds = state->query_seconds;
  const std::shared_ptr<obs::Telemetry>& telemetry = state->telemetry;
  // Per-keyword attribution follows the request's sampling decision
  // (trace != nullptr): unsampled queries stay at the tracing baseline,
  // which is what keeps continuous profiling within its overhead budget.
  obs::Profiler* profiler =
      trace != nullptr && telemetry != nullptr && telemetry->profiler().enabled()
          ? &telemetry->profiler()
          : nullptr;
  ScopedTimer timer(clock_);
  std::vector<Result<format::InfoRecord>> slots(expanded.size(),
                                                Error(ErrorCode::kInternal, "unresolved"));
  auto resolve_one = [&](std::size_t i) {
    const std::string& kw = expanded[i];
    std::optional<obs::TraceContext::Span> span;
    std::optional<obs::TraceScope> scope;
    if (trace != nullptr) {
      span.emplace(trace->span("info:" + kw));
      // fan_out workers have empty thread-locals: re-activate the trace
      // (parented under this keyword's span) so providers that go back on
      // the wire — hierarchy forwards, broker lookups — propagate it.
      scope.emplace(*trace, span->id());
    }
    // Per-keyword allocation attribution, opened on the *resolving*
    // thread — fan_out work is invisible to the request thread's scope.
    obs::AllocScope alloc_scope;
    auto record = get(kw, mode, quality_threshold, options);
    if (profiler != nullptr) {
      profiler->record_alloc(kw, alloc_scope.allocs(), alloc_scope.bytes());
      if (trace != nullptr && span) {
        trace->set_span_alloc(span->id(), alloc_scope.allocs(), alloc_scope.bytes());
      }
    }
    if (!record.ok()) {
      if (span) span->end(record.error().to_string());
      slots[i] = record.error();
      return;
    }
    slots[i] = record->filtered(filters);
  };
  if (pool != nullptr && expanded.size() > 1) {
    pool->fan_out(expanded.size(), resolve_one);
  } else {
    // Serial path keeps the historical short-circuit: keywords after the
    // first failure are not resolved at all.
    for (std::size_t i = 0; i < expanded.size(); ++i) {
      resolve_one(i);
      if (!slots[i].ok()) return slots[i].error();
    }
  }
  // Join order-stable: records come back in request order regardless of
  // which worker resolved them; the first failed keyword (in request
  // order) decides the error, preserving the serial all-or-nothing
  // semantics.
  std::vector<format::InfoRecord> out;
  out.reserve(expanded.size());
  for (auto& slot : slots) {
    if (!slot.ok()) return slot.error();
    out.push_back(std::move(slot.value()));
  }
  if (query_seconds != nullptr) {
    // Exemplar: a slow bucket points at the trace that fell into it.
    query_seconds->observe(
        static_cast<double>(timer.elapsed().count()) / 1e6,
        trace != nullptr ? std::string_view(trace->id()) : std::string_view());
  }
  return out;
}

Result<format::InfoRecord> SystemMonitor::performance_record(
    const std::vector<std::string>& keywords) {
  std::vector<std::string> expanded = expand(*state_.read(), keywords);
  format::InfoRecord record;
  record.keyword = "Performance";
  record.generated_at = clock_.now();
  for (const auto& kw : expanded) {
    auto p = provider(kw);
    if (p == nullptr) return Error(ErrorCode::kNotFound, "unknown keyword: " + kw);
    auto stats = p->performance();
    record.add(kw + ":mean_s", strings::format("%.6f", stats.mean()));
    record.add(kw + ":stddev_s", strings::format("%.6f", stats.stddev()));
    record.add(kw + ":count", std::to_string(stats.count()));
  }
  return record;
}

format::ServiceSchema SystemMonitor::schema() const {
  MonitorStatePtr state = state_.read();
  format::ServiceSchema schema;
  schema.service = service_name_;
  for (const auto& [kw_name, p] : state->providers) {
    format::KeywordSchema kw;
    kw.keyword = p->keyword();
    kw.command = p->command();
    kw.ttl = p->ttl();
    if (auto last = p->last_state(); last.ok()) {
      for (const auto& attr : last->attributes) {
        format::AttributeSchema a;
        a.name = attr.name;
        if (strings::parse_int(attr.value)) {
          a.type = "integer";
        } else if (strings::parse_double(attr.value)) {
          a.type = "float";
        } else {
          a.type = "string";
        }
        kw.attributes.push_back(std::move(a));
      }
    }
    schema.keywords.push_back(std::move(kw));
  }
  return schema;
}

format::InfoRecord SystemMonitor::health_record() const {
  MonitorStatePtr state = state_.read();
  format::InfoRecord record;
  record.keyword = "health";
  record.generated_at = clock_.now();
  record.add("providers", std::to_string(state->providers.size()));
  for (const auto& [kw, p] : state->providers) {
    record.add(kw + ":breaker", std::string(to_string(p->breaker_state())));
    record.add(kw + ":validity", std::to_string(p->validity()));
    record.add(kw + ":refreshes", std::to_string(p->refresh_count()));
    record.add(kw + ":failures", std::to_string(p->failure_count()));
  }
  return record;
}

std::uint64_t SystemMonitor::total_refreshes() const {
  MonitorStatePtr state = state_.read();
  std::uint64_t total = 0;
  for (const auto& [kw, p] : state->providers) total += p->refresh_count();
  return total;
}

}  // namespace ig::info
