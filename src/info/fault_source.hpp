// Fault-injecting InfoSource decorator.
//
// Wraps any source and consults a FaultInjector at the point
// "info.<keyword>" on every produce(). Lets the chaos suite break
// individual providers — errors, latency spikes, hangs, garbage output —
// without touching the provider implementations, and exercises every
// resilience layer above (deadline, retry, breaker, stale-serve) exactly
// where real failures would hit.
#pragma once

#include <memory>

#include "common/fault.hpp"
#include "info/provider.hpp"

namespace ig::info {

class FaultInjectingSource final : public InfoSource {
 public:
  /// Point name is "info.<inner keyword>". The clock is used to charge
  /// injected latency and to pace the cancellable hang loop.
  FaultInjectingSource(std::shared_ptr<InfoSource> inner,
                       std::shared_ptr<FaultInjector> injector, Clock& clock);

  std::string keyword() const override { return inner_->keyword(); }
  std::string command() const override { return inner_->command(); }
  Result<format::InfoRecord> produce() override { return produce(nullptr); }
  Result<format::InfoRecord> produce(const exec::CancelToken* cancel) override;

  const std::string& point() const { return point_; }

 private:
  std::shared_ptr<InfoSource> inner_;
  std::shared_ptr<FaultInjector> injector_;
  Clock& clock_;
  std::string point_;
};

}  // namespace ig::info
