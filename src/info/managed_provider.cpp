#include "info/managed_provider.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/strings.hpp"
#include "format/dsml.hpp"
#include "format/ldif.hpp"
#include "format/xml.hpp"

namespace ig::info {

namespace {
std::uint64_t keyword_seed(const std::string& keyword) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (char c : keyword) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::int64_t breaker_gauge_value(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return 0;
    case BreakerState::kHalfOpen:
      return 1;
    case BreakerState::kOpen:
      return 2;
  }
  return -1;
}
}  // namespace

std::string_view CacheSnapshot::payload(rsl::OutputFormat format) const {
  switch (format) {
    case rsl::OutputFormat::kLdif:
      return ldif;
    case rsl::OutputFormat::kXml:
      return xml;
    case rsl::OutputFormat::kDsml:
      return dsml;
  }
  return {};
}

ManagedProvider::ManagedProvider(std::shared_ptr<InfoSource> source, Clock& clock,
                                 ProviderOptions options)
    : source_(std::move(source)),
      keyword_(source_->keyword()),
      clock_(clock),
      options_(std::move(options)),
      retry_rng_(keyword_seed(keyword_)) {
  ttl_us_.store(options_.ttl.count(), std::memory_order_relaxed);
  delay_us_.store(options_.delay.count(), std::memory_order_relaxed);
  if (options_.resilience.breaker_enabled) {
    breaker_ = std::make_unique<CircuitBreaker>(options_.resilience.breaker, clock_);
    breaker_->set_transition_hook([this](BreakerState state) {
      if (breaker_gauge_ != nullptr) breaker_gauge_->set(breaker_gauge_value(state));
      obs::Counter* counter = state == BreakerState::kOpen       ? breaker_opened_
                              : state == BreakerState::kHalfOpen ? breaker_half_open_
                                                                 : breaker_closed_;
      if (counter != nullptr) counter->add();
    });
  }
}

void ManagedProvider::set_telemetry(std::shared_ptr<obs::Telemetry> telemetry) {
  telemetry_ = std::move(telemetry);
  if (telemetry_ == nullptr) {
    cache_hits_ = cache_misses_ = nullptr;
    refresh_seconds_ = nullptr;
    keyword_refresh_seconds_ = nullptr;
    retry_attempts_ = retry_recovered_ = retry_exhausted_ = nullptr;
    degraded_served_ = nullptr;
    breaker_gauge_ = nullptr;
    breaker_opened_ = breaker_half_open_ = breaker_closed_ = nullptr;
    return;
  }
  obs::MetricsRegistry& metrics = telemetry_->metrics();
  cache_hits_ = &metrics.counter(obs::metric::kInfoCacheHits);
  cache_misses_ = &metrics.counter(obs::metric::kInfoCacheMisses);
  refresh_seconds_ = &metrics.histogram(obs::metric::kInfoRefreshSeconds);
  // Per-keyword latency alongside the global histogram: what lets an SLO
  // objective target one keyword's providers instead of the aggregate.
  keyword_refresh_seconds_ =
      &metrics.histogram(std::string(obs::metric::kInfoRefreshSecondsPrefix) + keyword_);
  retry_attempts_ = &metrics.counter(obs::metric::kInfoRetryAttempts);
  retry_recovered_ = &metrics.counter(obs::metric::kInfoRetryRecovered);
  retry_exhausted_ = &metrics.counter(obs::metric::kInfoRetryExhausted);
  degraded_served_ = &metrics.counter(obs::metric::kInfoDegradedServed);
  if (breaker_ != nullptr) {
    breaker_gauge_ =
        &metrics.gauge(std::string(obs::metric::kInfoBreakerStatePrefix) + keyword_);
    breaker_opened_ = &metrics.counter(obs::metric::kInfoBreakerOpened);
    breaker_half_open_ = &metrics.counter(obs::metric::kInfoBreakerHalfOpen);
    breaker_closed_ = &metrics.counter(obs::metric::kInfoBreakerClosed);
  }
}

void ManagedProvider::count_hit() const {
  if (cache_hits_ != nullptr) cache_hits_->add();
}

format::InfoRecord ManagedProvider::degraded_copy(const CacheSnapshot& snap,
                                                  TimePoint now) const {
  format::InfoRecord copy = snap.record;
  Duration age = now - snap.refreshed_at;
  double q = options_.degradation->quality(age, ttl());
  for (auto& attr : copy.attributes) attr.quality = q;
  return copy;
}

Result<format::InfoRecord> ManagedProvider::query_state() const {
  TimePoint now = clock_.now();
  CacheSnapshotPtr snap = cell_.read();
  if (snap == nullptr) {
    return Error(ErrorCode::kStale, "keyword never queried: " + keyword_);
  }
  Duration ttl_now = ttl();
  if (ttl_now.count() <= 0 || now - snap->refreshed_at > ttl_now) {
    return Error(ErrorCode::kStale,
                 strings::format("cached %s expired (age %lldus, ttl %lldus)", keyword_.c_str(),
                                 static_cast<long long>((now - snap->refreshed_at).count()),
                                 static_cast<long long>(ttl_now.count())));
  }
  count_hit();
  return degraded_copy(*snap, now);
}

IG_STATIC_FAST_PATH
CacheSnapshotPtr ManagedProvider::snapshot_if_fresh(TimePoint now) const {
  CacheSnapshotPtr snap = cell_.read();
  if (snap == nullptr || !snap->fast_path_eligible) return nullptr;
  Duration ttl_now = ttl();
  if (ttl_now.count() <= 0 || now - snap->refreshed_at > ttl_now) return nullptr;
  count_hit();
  return snap;
}

Result<format::InfoRecord> ManagedProvider::last_state() const {
  CacheSnapshotPtr snap = cell_.read();
  if (snap == nullptr) {
    return Error(ErrorCode::kNotFound, "keyword never produced: " + keyword_);
  }
  count_hit();
  return degraded_copy(*snap, clock_.now());
}

Result<format::InfoRecord> ManagedProvider::update_state(bool force) {
  return refresh(force, GetOptions{});
}

Result<format::InfoRecord> ManagedProvider::refresh(bool force, const GetOptions& get_options) {
  // action=cancel arms a deadline that interrupts a polling source; the
  // exception action never interrupts, it only annotates a late record.
  const bool armed = get_options.timeout.has_value() &&
                     get_options.action == rsl::TimeoutAction::kCancel;
  const TimePoint deadline =
      get_options.timeout ? clock_.now() + *get_options.timeout : TimePoint{0};
  ScopedTimer total(clock_);

  MutexLock update_lock(update_mu_);
  TimePoint now = clock_.now();
  if (CacheSnapshotPtr snap = cell_.read()) {
    Duration age = now - snap->refreshed_at;
    Duration ttl_now = ttl();
    bool fresh = ttl_now.count() > 0 && age <= ttl_now;
    // Another thread refreshed while we waited on the monitor.
    if (!force && fresh) {
      count_hit();
      return degraded_copy(*snap, now);
    }
    // The delay throttle applies even to forced updates: the host cannot
    // produce the information faster than this.
    Duration delay{delay_us_.load(std::memory_order_relaxed)};
    if (delay.count() > 0 && now - last_attempt_ < delay) {
      count_hit();
      return degraded_copy(*snap, now);
    }
  }

  if (breaker_ != nullptr && !breaker_->allow()) {
    obs::signal_tail(obs::kSignalBreaker);
    return shield(Error(ErrorCode::kUnavailable, "circuit open: " + keyword_));
  }

  const int max_attempts = std::max(1, options_.resilience.retry.max_attempts);
  Error last_error(ErrorCode::kUnavailable, "refresh never attempted: " + keyword_);
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    now = clock_.now();
    if (armed && now >= deadline) {
      last_error = Error(ErrorCode::kTimeout, "info deadline exceeded: " + keyword_);
      obs::signal_tail(obs::kSignalDeadline);
      break;
    }
    exec::CancelToken token;
    if (armed) token.arm_deadline(&clock_, deadline);
    last_attempt_ = now;
    ScopedTimer timer(clock_);
    auto produced = source_->produce(armed ? &token : nullptr);
    Duration elapsed = timer.elapsed();
    if (produced.ok()) {
      if (attempt > 1) {
        if (retry_recovered_ != nullptr) retry_recovered_->add();
        obs::signal_tail(obs::kSignalRetry);
      }
      if (breaker_ != nullptr) breaker_->record_success();
      double elapsed_s = static_cast<double>(elapsed.count()) / 1e6;
      maybe_signal_slow(elapsed_s);
      perf_.add(elapsed_s);
      refreshes_.fetch_add(1, std::memory_order_relaxed);
      if (cache_misses_ != nullptr) cache_misses_->add();
      if (refresh_seconds_ != nullptr) refresh_seconds_->observe(elapsed_s);
      if (keyword_refresh_seconds_ != nullptr) keyword_refresh_seconds_->observe(elapsed_s);

      format::InfoRecord record = std::move(produced.value());
      record.keyword = keyword_;
      TimePoint done = clock_.now();
      record.generated_at = done;
      for (auto& attr : record.attributes) {
        attr.timestamp = done;
        attr.quality = 100.0;
      }

      // Build the next generation entirely off-lock (update_mu_ already
      // serializes writers) and publish it in one release-store.
      CacheSnapshotPtr prev = cell_.read();
      if (prev != nullptr) {
        note_change(prev->record, record, done - prev->refreshed_at);
      }
      record.ttl = ttl();  // note_change may have adapted the TTL
      auto next = std::make_shared<CacheSnapshot>();
      next->record = std::move(record);
      next->refreshed_at = done;
      next->fast_path_eligible = next->record.ttl.count() > 0 &&
                                 options_.degradation->constant_within_ttl();
      if (next->fast_path_eligible) {
        // Quality is constant 100 for the whole TTL, so the wire bytes
        // rendered now are exact for every TTL-valid hit on this snapshot.
        std::vector<format::InfoRecord> one{next->record};
        next->ldif = format::to_ldif(one);
        next->xml = format::to_xml(one);
        next->dsml = format::to_dsml(one);
      }
      format::InfoRecord copy = degraded_copy(*next, done);
      cell_.publish(std::move(next));
      if (get_options.timeout && get_options.action == rsl::TimeoutAction::kException &&
          total.elapsed() > *get_options.timeout) {
        copy.add("deadline_exceeded", "true", copy.min_quality());
        obs::signal_tail(obs::kSignalDeadline);
      }
      return copy;
    }

    failures_.fetch_add(1, std::memory_order_relaxed);
    last_error = produced.error();
    if (last_error.code == ErrorCode::kCancelled) {
      last_error = Error(ErrorCode::kTimeout, "info deadline exceeded: " + keyword_);
      obs::signal_tail(obs::kSignalDeadline);
    }
    if (breaker_ != nullptr) breaker_->record_failure();
    // Past the deadline there is no budget left for another attempt.
    if (last_error.code == ErrorCode::kTimeout) break;
    if (breaker_ != nullptr && breaker_->state() == BreakerState::kOpen) break;
    if (attempt < max_attempts) {
      if (retry_attempts_ != nullptr) retry_attempts_->add();
      clock_.sleep_for(retry_backoff(options_.resilience.retry, attempt, retry_rng_));
    }
  }
  if (max_attempts > 1 && retry_exhausted_ != nullptr) retry_exhausted_->add();
  return shield(last_error);
}

Result<format::InfoRecord> ManagedProvider::shield(const Error& err) {
  if (!options_.resilience.serve_stale_on_error) return err;
  CacheSnapshotPtr snap = cell_.read();
  if (snap == nullptr) return err;
  format::InfoRecord copy = degraded_copy(*snap, clock_.now());
  double q = copy.min_quality();
  copy.add("stale", "true", q);
  copy.add("source", "cache", q);
  if (degraded_served_ != nullptr) degraded_served_->add();
  // The shield hides the failure from the caller's Result — raising the
  // degraded bit here is what keeps the *request* retainable anyway.
  obs::signal_tail(obs::kSignalDegraded);
  return copy;
}

void ManagedProvider::maybe_signal_slow(double elapsed_s) {
  if (telemetry_ == nullptr || telemetry_->tail() == nullptr) return;
  std::uint64_t check = slow_checks_.fetch_add(1, std::memory_order_relaxed);
  if (check % 64 == 0 && keyword_refresh_seconds_ != nullptr) {
    slow_threshold_s_.store(
        telemetry_->tail()->threshold_from(keyword_refresh_seconds_->snapshot()),
        std::memory_order_relaxed);
  }
  if (elapsed_s > slow_threshold_s_.load(std::memory_order_relaxed)) {
    obs::signal_tail(obs::kSignalSlow);
  }
}

void ManagedProvider::note_change(const format::InfoRecord& old_record,
                                  const format::InfoRecord& new_record, Duration elapsed) {
  // Mean relative change over attributes present in both records.
  double total = 0.0;
  int counted = 0;
  for (const auto& attr : new_record.attributes) {
    const format::Attribute* old_attr = old_record.find(attr.name);
    if (old_attr == nullptr) continue;
    auto new_v = strings::parse_double(attr.value);
    auto old_v = strings::parse_double(old_attr->value);
    if (new_v && old_v) {
      double denom = std::max(std::abs(*old_v), 1e-9);
      total += std::abs(*new_v - *old_v) / denom;
    } else {
      total += attr.value == old_attr->value ? 0.0 : 1.0;
    }
    ++counted;
  }
  if (counted == 0) return;
  double change = total / counted;

  Duration ttl_now = ttl();
  if (auto* observed =
          dynamic_cast<ObservationCorrectedDegradation*>(options_.degradation.get())) {
    observed->observe(change, elapsed, ttl_now);
  }
  if (options_.adaptive_ttl && ttl_now.count() > 0) {
    if (change > options_.shrink_above) {
      ttl_now = Duration(static_cast<std::int64_t>(
          static_cast<double>(ttl_now.count()) * 0.7));
    } else if (change < options_.grow_below) {
      ttl_now = Duration(static_cast<std::int64_t>(
          static_cast<double>(ttl_now.count()) * 1.3));
    }
    set_ttl(std::clamp(ttl_now, options_.min_ttl, options_.max_ttl));
  }
}

Result<format::InfoRecord> ManagedProvider::get(rsl::ResponseMode mode,
                                                const GetOptions& options) {
  switch (mode) {
    case rsl::ResponseMode::kImmediate:
      return refresh(/*force=*/true, options);
    case rsl::ResponseMode::kLast:
      return last_state();
    case rsl::ResponseMode::kCached: {
      auto cached = query_state();
      if (cached.ok()) return cached;
      if (cached.code() != ErrorCode::kStale) return cached;
      return refresh(/*force=*/false, options);
    }
  }
  return Error(ErrorCode::kInternal, "unknown response mode");
}

Result<format::InfoRecord> ManagedProvider::get_with_quality(double threshold_percent,
                                                             const GetOptions& options) {
  if (CacheSnapshotPtr snap = cell_.read()) {
    auto copy = degraded_copy(*snap, clock_.now());
    if (copy.min_quality() >= threshold_percent) {
      count_hit();
      return copy;
    }
  }
  return refresh(/*force=*/true, options);
}

ManagedProvider::PrefetchState ManagedProvider::prefetch_state(
    double margin_fraction, std::optional<double> quality_floor) const {
  TimePoint now = clock_.now();
  CacheSnapshotPtr snap = cell_.read();
  Duration ttl_now = ttl();
  if (snap == nullptr || ttl_now.count() <= 0) return PrefetchState::kDisabled;
  Duration age = now - snap->refreshed_at;
  if (age > ttl_now) return PrefetchState::kExpired;
  if (quality_floor &&
      options_.degradation->quality(age, ttl_now) < *quality_floor) {
    return PrefetchState::kExpiring;
  }
  auto margin = Duration(static_cast<std::int64_t>(
      static_cast<double>(ttl_now.count()) * margin_fraction));
  if (ttl_now - age <= margin) return PrefetchState::kExpiring;
  return PrefetchState::kFresh;
}

Duration ManagedProvider::ttl() const {
  return Duration(ttl_us_.load(std::memory_order_relaxed));
}

void ManagedProvider::set_ttl(Duration ttl) {
  ttl_us_.store(ttl.count(), std::memory_order_relaxed);
}

Duration ManagedProvider::delay() const {
  return Duration(delay_us_.load(std::memory_order_relaxed));
}

void ManagedProvider::set_delay(Duration delay) {
  delay_us_.store(delay.count(), std::memory_order_relaxed);
}

Duration ManagedProvider::average_update_time() const {
  auto stats = perf_.snapshot();
  return Duration(static_cast<std::int64_t>(stats.mean() * 1e6));
}

int ManagedProvider::validity() const {
  CacheSnapshotPtr snap = cell_.read();
  if (snap == nullptr) return 0;
  Duration age = clock_.now() - snap->refreshed_at;
  return static_cast<int>(std::lround(options_.degradation->quality(age, ttl())));
}

std::uint64_t ManagedProvider::refresh_count() const {
  return refreshes_.load(std::memory_order_relaxed);
}

std::uint64_t ManagedProvider::failure_count() const {
  return failures_.load(std::memory_order_relaxed);
}

BreakerState ManagedProvider::breaker_state() const {
  return breaker_ != nullptr ? breaker_->state() : BreakerState::kClosed;
}

}  // namespace ig::info
