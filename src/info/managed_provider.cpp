#include "info/managed_provider.hpp"

#include <algorithm>
#include <cmath>

#include "common/strings.hpp"

namespace ig::info {

namespace {
std::uint64_t keyword_seed(const std::string& keyword) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (char c : keyword) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::int64_t breaker_gauge_value(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return 0;
    case BreakerState::kHalfOpen:
      return 1;
    case BreakerState::kOpen:
      return 2;
  }
  return -1;
}
}  // namespace

ManagedProvider::ManagedProvider(std::shared_ptr<InfoSource> source, Clock& clock,
                                 ProviderOptions options)
    : source_(std::move(source)),
      keyword_(source_->keyword()),
      clock_(clock),
      options_(std::move(options)),
      current_ttl_(options_.ttl),
      retry_rng_(keyword_seed(keyword_)) {
  delay_us_.store(options_.delay.count(), std::memory_order_relaxed);
  if (options_.resilience.breaker_enabled) {
    breaker_ = std::make_unique<CircuitBreaker>(options_.resilience.breaker, clock_);
    breaker_->set_transition_hook([this](BreakerState state) {
      if (breaker_gauge_ != nullptr) breaker_gauge_->set(breaker_gauge_value(state));
      obs::Counter* counter = state == BreakerState::kOpen       ? breaker_opened_
                              : state == BreakerState::kHalfOpen ? breaker_half_open_
                                                                 : breaker_closed_;
      if (counter != nullptr) counter->add();
    });
  }
}

void ManagedProvider::set_telemetry(std::shared_ptr<obs::Telemetry> telemetry) {
  telemetry_ = std::move(telemetry);
  if (telemetry_ == nullptr) {
    cache_hits_ = cache_misses_ = nullptr;
    refresh_seconds_ = nullptr;
    keyword_refresh_seconds_ = nullptr;
    retry_attempts_ = retry_recovered_ = retry_exhausted_ = nullptr;
    degraded_served_ = nullptr;
    breaker_gauge_ = nullptr;
    breaker_opened_ = breaker_half_open_ = breaker_closed_ = nullptr;
    return;
  }
  obs::MetricsRegistry& metrics = telemetry_->metrics();
  cache_hits_ = &metrics.counter(obs::metric::kInfoCacheHits);
  cache_misses_ = &metrics.counter(obs::metric::kInfoCacheMisses);
  refresh_seconds_ = &metrics.histogram(obs::metric::kInfoRefreshSeconds);
  // Per-keyword latency alongside the global histogram: what lets an SLO
  // objective target one keyword's providers instead of the aggregate.
  keyword_refresh_seconds_ =
      &metrics.histogram(std::string(obs::metric::kInfoRefreshSecondsPrefix) + keyword_);
  retry_attempts_ = &metrics.counter(obs::metric::kInfoRetryAttempts);
  retry_recovered_ = &metrics.counter(obs::metric::kInfoRetryRecovered);
  retry_exhausted_ = &metrics.counter(obs::metric::kInfoRetryExhausted);
  degraded_served_ = &metrics.counter(obs::metric::kInfoDegradedServed);
  if (breaker_ != nullptr) {
    breaker_gauge_ =
        &metrics.gauge(std::string(obs::metric::kInfoBreakerStatePrefix) + keyword_);
    breaker_opened_ = &metrics.counter(obs::metric::kInfoBreakerOpened);
    breaker_half_open_ = &metrics.counter(obs::metric::kInfoBreakerHalfOpen);
    breaker_closed_ = &metrics.counter(obs::metric::kInfoBreakerClosed);
  }
}

void ManagedProvider::count_hit() const {
  if (cache_hits_ != nullptr) cache_hits_->add();
}

format::InfoRecord ManagedProvider::degraded_copy_locked(TimePoint now) const {
  format::InfoRecord copy = *cache_;
  Duration age = now - last_refresh_;
  double q = options_.degradation->quality(age, current_ttl_);
  for (auto& attr : copy.attributes) attr.quality = q;
  return copy;
}

Result<format::InfoRecord> ManagedProvider::query_state() const {
  TimePoint now = clock_.now();
  ReaderLock lock(cache_mu_);
  if (!cache_) {
    return Error(ErrorCode::kStale, "keyword never queried: " + keyword_);
  }
  if (current_ttl_.count() <= 0 || now - last_refresh_ > current_ttl_) {
    return Error(ErrorCode::kStale,
                 strings::format("cached %s expired (age %lldus, ttl %lldus)", keyword_.c_str(),
                                 static_cast<long long>((now - last_refresh_).count()),
                                 static_cast<long long>(current_ttl_.count())));
  }
  count_hit();
  return degraded_copy_locked(now);
}

Result<format::InfoRecord> ManagedProvider::last_state() const {
  ReaderLock lock(cache_mu_);
  if (!cache_) return Error(ErrorCode::kNotFound, "keyword never produced: " + keyword_);
  count_hit();
  return degraded_copy_locked(clock_.now());
}

Result<format::InfoRecord> ManagedProvider::update_state(bool force) {
  return refresh(force, GetOptions{});
}

Result<format::InfoRecord> ManagedProvider::refresh(bool force, const GetOptions& get_options) {
  // action=cancel arms a deadline that interrupts a polling source; the
  // exception action never interrupts, it only annotates a late record.
  const bool armed = get_options.timeout.has_value() &&
                     get_options.action == rsl::TimeoutAction::kCancel;
  const TimePoint deadline =
      get_options.timeout ? clock_.now() + *get_options.timeout : TimePoint{0};
  ScopedTimer total(clock_);

  MutexLock update_lock(update_mu_);
  TimePoint now = clock_.now();
  {
    ReaderLock lock(cache_mu_);
    if (cache_) {
      Duration age = now - last_refresh_;
      bool fresh = current_ttl_.count() > 0 && age <= current_ttl_;
      // Another thread refreshed while we waited on the monitor.
      if (!force && fresh) {
        count_hit();
        return degraded_copy_locked(now);
      }
      // The delay throttle applies even to forced updates: the host cannot
      // produce the information faster than this.
      Duration delay{delay_us_.load(std::memory_order_relaxed)};
      if (delay.count() > 0 && now - last_attempt_ < delay) {
        count_hit();
        return degraded_copy_locked(now);
      }
    }
  }

  if (breaker_ != nullptr && !breaker_->allow()) {
    return shield(Error(ErrorCode::kUnavailable, "circuit open: " + keyword_));
  }

  const int max_attempts = std::max(1, options_.resilience.retry.max_attempts);
  Error last_error(ErrorCode::kUnavailable, "refresh never attempted: " + keyword_);
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    now = clock_.now();
    if (armed && now >= deadline) {
      last_error = Error(ErrorCode::kTimeout, "info deadline exceeded: " + keyword_);
      break;
    }
    exec::CancelToken token;
    if (armed) token.arm_deadline(&clock_, deadline);
    last_attempt_ = now;
    ScopedTimer timer(clock_);
    auto produced = source_->produce(armed ? &token : nullptr);
    Duration elapsed = timer.elapsed();
    if (produced.ok()) {
      if (attempt > 1 && retry_recovered_ != nullptr) retry_recovered_->add();
      if (breaker_ != nullptr) breaker_->record_success();
      double elapsed_s = static_cast<double>(elapsed.count()) / 1e6;
      perf_.add(elapsed_s);
      refreshes_.fetch_add(1, std::memory_order_relaxed);
      if (cache_misses_ != nullptr) cache_misses_->add();
      if (refresh_seconds_ != nullptr) refresh_seconds_->observe(elapsed_s);
      if (keyword_refresh_seconds_ != nullptr) keyword_refresh_seconds_->observe(elapsed_s);

      format::InfoRecord record = std::move(produced.value());
      record.keyword = keyword_;
      TimePoint done = clock_.now();
      record.generated_at = done;
      record.ttl = current_ttl_;
      for (auto& attr : record.attributes) {
        attr.timestamp = done;
        attr.quality = 100.0;
      }

      WriterLock lock(cache_mu_);
      if (cache_) {
        note_change(*cache_, record, done - last_refresh_);
        record.ttl = current_ttl_;  // note_change may have adapted the TTL
      }
      cache_ = std::move(record);
      last_refresh_ = done;
      format::InfoRecord copy = degraded_copy_locked(done);
      if (get_options.timeout && get_options.action == rsl::TimeoutAction::kException &&
          total.elapsed() > *get_options.timeout) {
        copy.add("deadline_exceeded", "true", copy.min_quality());
      }
      return copy;
    }

    failures_.fetch_add(1, std::memory_order_relaxed);
    last_error = produced.error();
    if (last_error.code == ErrorCode::kCancelled) {
      last_error = Error(ErrorCode::kTimeout, "info deadline exceeded: " + keyword_);
    }
    if (breaker_ != nullptr) breaker_->record_failure();
    // Past the deadline there is no budget left for another attempt.
    if (last_error.code == ErrorCode::kTimeout) break;
    if (breaker_ != nullptr && breaker_->state() == BreakerState::kOpen) break;
    if (attempt < max_attempts) {
      if (retry_attempts_ != nullptr) retry_attempts_->add();
      clock_.sleep_for(retry_backoff(options_.resilience.retry, attempt, retry_rng_));
    }
  }
  if (max_attempts > 1 && retry_exhausted_ != nullptr) retry_exhausted_->add();
  return shield(last_error);
}

Result<format::InfoRecord> ManagedProvider::shield(const Error& err) {
  if (!options_.resilience.serve_stale_on_error) return err;
  ReaderLock lock(cache_mu_);
  if (!cache_) return err;
  format::InfoRecord copy = degraded_copy_locked(clock_.now());
  double q = copy.min_quality();
  copy.add("stale", "true", q);
  copy.add("source", "cache", q);
  if (degraded_served_ != nullptr) degraded_served_->add();
  return copy;
}

void ManagedProvider::note_change(const format::InfoRecord& old_record,
                                  const format::InfoRecord& new_record, Duration elapsed) {
  // Mean relative change over attributes present in both records.
  double total = 0.0;
  int counted = 0;
  for (const auto& attr : new_record.attributes) {
    const format::Attribute* old_attr = old_record.find(attr.name);
    if (old_attr == nullptr) continue;
    auto new_v = strings::parse_double(attr.value);
    auto old_v = strings::parse_double(old_attr->value);
    if (new_v && old_v) {
      double denom = std::max(std::abs(*old_v), 1e-9);
      total += std::abs(*new_v - *old_v) / denom;
    } else {
      total += attr.value == old_attr->value ? 0.0 : 1.0;
    }
    ++counted;
  }
  if (counted == 0) return;
  double change = total / counted;

  if (auto* observed =
          dynamic_cast<ObservationCorrectedDegradation*>(options_.degradation.get())) {
    observed->observe(change, elapsed, current_ttl_);
  }
  if (options_.adaptive_ttl && current_ttl_.count() > 0) {
    if (change > options_.shrink_above) {
      current_ttl_ = Duration(static_cast<std::int64_t>(
          static_cast<double>(current_ttl_.count()) * 0.7));
    } else if (change < options_.grow_below) {
      current_ttl_ = Duration(static_cast<std::int64_t>(
          static_cast<double>(current_ttl_.count()) * 1.3));
    }
    current_ttl_ = std::clamp(current_ttl_, options_.min_ttl, options_.max_ttl);
  }
}

Result<format::InfoRecord> ManagedProvider::get(rsl::ResponseMode mode,
                                                const GetOptions& options) {
  switch (mode) {
    case rsl::ResponseMode::kImmediate:
      return refresh(/*force=*/true, options);
    case rsl::ResponseMode::kLast:
      return last_state();
    case rsl::ResponseMode::kCached: {
      auto cached = query_state();
      if (cached.ok()) return cached;
      if (cached.code() != ErrorCode::kStale) return cached;
      return refresh(/*force=*/false, options);
    }
  }
  return Error(ErrorCode::kInternal, "unknown response mode");
}

Result<format::InfoRecord> ManagedProvider::get_with_quality(double threshold_percent,
                                                             const GetOptions& options) {
  {
    ReaderLock lock(cache_mu_);
    if (cache_) {
      auto copy = degraded_copy_locked(clock_.now());
      if (copy.min_quality() >= threshold_percent) {
        count_hit();
        return copy;
      }
    }
  }
  return refresh(/*force=*/true, options);
}

ManagedProvider::PrefetchState ManagedProvider::prefetch_state(
    double margin_fraction, std::optional<double> quality_floor) const {
  TimePoint now = clock_.now();
  ReaderLock lock(cache_mu_);
  if (!cache_ || current_ttl_.count() <= 0) return PrefetchState::kDisabled;
  Duration age = now - last_refresh_;
  if (age > current_ttl_) return PrefetchState::kExpired;
  if (quality_floor &&
      options_.degradation->quality(age, current_ttl_) < *quality_floor) {
    return PrefetchState::kExpiring;
  }
  auto margin = Duration(static_cast<std::int64_t>(
      static_cast<double>(current_ttl_.count()) * margin_fraction));
  if (current_ttl_ - age <= margin) return PrefetchState::kExpiring;
  return PrefetchState::kFresh;
}

Duration ManagedProvider::ttl() const {
  ReaderLock lock(cache_mu_);
  return current_ttl_;
}

void ManagedProvider::set_ttl(Duration ttl) {
  WriterLock lock(cache_mu_);
  current_ttl_ = ttl;
}

Duration ManagedProvider::delay() const {
  return Duration(delay_us_.load(std::memory_order_relaxed));
}

void ManagedProvider::set_delay(Duration delay) {
  delay_us_.store(delay.count(), std::memory_order_relaxed);
}

Duration ManagedProvider::average_update_time() const {
  auto stats = perf_.snapshot();
  return Duration(static_cast<std::int64_t>(stats.mean() * 1e6));
}

int ManagedProvider::validity() const {
  ReaderLock lock(cache_mu_);
  if (!cache_) return 0;
  Duration age = clock_.now() - last_refresh_;
  return static_cast<int>(std::lround(options_.degradation->quality(age, current_ttl_)));
}

std::uint64_t ManagedProvider::refresh_count() const {
  return refreshes_.load(std::memory_order_relaxed);
}

std::uint64_t ManagedProvider::failure_count() const {
  return failures_.load(std::memory_order_relaxed);
}

BreakerState ManagedProvider::breaker_state() const {
  return breaker_ != nullptr ? breaker_->state() : BreakerState::kClosed;
}

}  // namespace ig::info
