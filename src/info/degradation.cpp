#include "info/degradation.hpp"

#include <algorithm>
#include <cmath>

namespace ig::info {

namespace {
double ratio(Duration age, Duration ttl) {
  if (ttl.count() <= 0) return age.count() > 0 ? std::numeric_limits<double>::infinity() : 0.0;
  return static_cast<double>(age.count()) / static_cast<double>(ttl.count());
}
}  // namespace

double BinaryDegradation::quality(Duration age, Duration ttl) const {
  if (ttl.count() <= 0) return age.count() > 0 ? 0.0 : 100.0;
  return age <= ttl ? 100.0 : 0.0;
}

double LinearDegradation::quality(Duration age, Duration ttl) const {
  double r = ratio(age, ttl) / horizon_ttls_;
  return std::clamp(100.0 * (1.0 - r), 0.0, 100.0);
}

double ExponentialDegradation::quality(Duration age, Duration ttl) const {
  double r = ratio(age, ttl);
  if (std::isinf(r)) return 0.0;
  return 100.0 * std::exp(-r / tau_ttls_);
}

ObservationCorrectedDegradation::ObservationCorrectedDegradation(
    std::shared_ptr<DegradationFunction> base, double nominal_change_per_ttl)
    : base_(std::move(base)), nominal_change_per_ttl_(nominal_change_per_ttl) {}

std::string ObservationCorrectedDegradation::name() const {
  return "observed(" + base_->name() + ")";
}

void ObservationCorrectedDegradation::observe(double relative_change, Duration elapsed,
                                              Duration ttl) {
  if (elapsed.count() <= 0 || ttl.count() <= 0) return;
  double ttls = static_cast<double>(elapsed.count()) / static_cast<double>(ttl.count());
  observed_change_per_ttl_.add(relative_change / ttls);
}

double ObservationCorrectedDegradation::rate_factor() const {
  if (observed_change_per_ttl_.count() < 2) return 1.0;
  double observed = observed_change_per_ttl_.snapshot().mean();
  // Volatile values (large observed change per TTL) degrade faster than
  // the nominal model; static ones slower. Clamp to a sane band.
  return std::clamp(observed / nominal_change_per_ttl_, 0.25, 10.0);
}

double ObservationCorrectedDegradation::quality(Duration age, Duration ttl) const {
  double factor = rate_factor();
  auto scaled_age = Duration(static_cast<std::int64_t>(
      static_cast<double>(age.count()) * factor));
  return base_->quality(scaled_age, ttl);
}

std::shared_ptr<DegradationFunction> make_degradation(const std::string& name) {
  if (name == "binary") return std::make_shared<BinaryDegradation>();
  if (name == "linear") return std::make_shared<LinearDegradation>();
  if (name == "exponential") return std::make_shared<ExponentialDegradation>();
  if (name == "observed") {
    return std::make_shared<ObservationCorrectedDegradation>(
        std::make_shared<ExponentialDegradation>());
  }
  return nullptr;
}

}  // namespace ig::info
