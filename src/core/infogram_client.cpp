#include "core/infogram_client.hpp"

#include "common/strings.hpp"

namespace ig::core {

InfoGramClient::InfoGramClient(net::Network& network, net::Address address,
                               security::Credential credential,
                               const security::TrustStore& trust, const Clock& clock)
    : network_(network),
      address_(std::move(address)),
      credential_(std::move(credential)),
      trust_(trust),
      clock_(clock) {}

Status InfoGramClient::ensure_connected() {
  if (connection_ != nullptr) return Status::success();
  auto conn = network_.connect(address_);
  if (!conn.ok()) return conn.error();
  connection_ = std::move(conn.value());
  auto auth = security::authenticate(*connection_, credential_, trust_, clock_);
  if (!auth.ok()) {
    closed_stats_.merge(connection_->stats());
    connection_.reset();
    return auth.error();
  }
  return Status::success();
}

Result<net::Message> InfoGramClient::roundtrip(const net::Message& request) {
  if (auto status = ensure_connected(); !status.ok()) return status.error();
  auto resp = connection_->request(request);
  if (!resp.ok()) return resp;
  if (resp->is_error()) return net::Message::to_error(*resp);
  return resp;
}

Result<InfoGramResponse> InfoGramClient::request(const std::string& xrsl,
                                                 const std::string& callback_address) {
  net::Message req("XRSL", xrsl);
  if (!callback_address.empty()) req.with("callback", callback_address);
  auto resp = roundtrip(req);
  if (!resp.ok()) return resp.error();

  InfoGramResponse out;
  if (auto contact = resp->header("contact")) out.job_contact = *contact;
  if (auto contacts = resp->header("contacts")) {
    out.job_contacts = strings::split_fields(*contacts, ',');
  } else if (out.job_contact) {
    out.job_contacts.push_back(*out.job_contact);
  }
  out.payload = resp->body;
  std::string type = resp->header_or("type", "");
  if (type == "schema") {
    auto schema = format::ServiceSchema::parse_xml(resp->body);
    if (!schema.ok()) return schema.error();
    out.schema = std::move(schema.value());
  } else if (type == "records") {
    std::string fmt = resp->header_or("format", "ldif");
    auto records = fmt == "xml"    ? format::parse_xml(resp->body)
                   : fmt == "dsml" ? format::parse_dsml(resp->body)
                                   : format::parse_ldif(resp->body);
    if (!records.ok()) return records.error();
    out.records = std::move(records.value());
  }
  return out;
}

Result<InfoGramResponse> InfoGramClient::request(const rsl::XrslRequest& req,
                                                 const std::string& callback_address) {
  return request(req.to_rsl(), callback_address);
}

Result<std::string> InfoGramClient::submit_job(const rsl::XrslRequest& req,
                                               const std::string& callback_address) {
  auto resp = request(req, callback_address);
  if (!resp.ok()) return resp.error();
  if (!resp->job_contact) {
    return Error(ErrorCode::kInternal, "submit response carried no job contact");
  }
  return *resp->job_contact;
}

Result<std::vector<format::InfoRecord>> InfoGramClient::query_info(
    const std::vector<std::string>& keywords, rsl::ResponseMode mode,
    rsl::OutputFormat format) {
  rsl::XrslBuilder builder;
  for (const auto& kw : keywords) builder.info(kw);
  builder.response(mode).format(format);
  auto resp = request(builder.request());
  if (!resp.ok()) return resp.error();
  return std::move(resp->records);
}

Result<format::ServiceSchema> InfoGramClient::fetch_schema() {
  rsl::XrslBuilder builder;
  builder.schema();
  auto resp = request(builder.request());
  if (!resp.ok()) return resp.error();
  if (!resp->schema) return Error(ErrorCode::kInternal, "schema response missing schema");
  return std::move(*resp->schema);
}

namespace {
Result<gram::GramClient::RemoteStatus> parse_status(const net::Message& resp) {
  gram::GramClient::RemoteStatus status;
  auto state = gram::job_state_from_string(resp.header_or("state", ""));
  if (!state.ok()) return state.error();
  status.state = state.value();
  status.exit_code =
      static_cast<int>(strings::parse_int(resp.header_or("exit_code", "-1")).value_or(-1));
  status.restarts =
      static_cast<int>(strings::parse_int(resp.header_or("restarts", "0")).value_or(0));
  status.timeout_fired = resp.header_or("timeout_fired", "0") == "1";
  return status;
}
}  // namespace

Result<gram::GramClient::RemoteStatus> InfoGramClient::job_status(const std::string& contact) {
  net::Message req("GRAM_STATUS");
  req.with("contact", contact);
  auto resp = roundtrip(req);
  if (!resp.ok()) return resp.error();
  return parse_status(*resp);
}

Result<std::string> InfoGramClient::job_output(const std::string& contact) {
  net::Message req("GRAM_OUTPUT");
  req.with("contact", contact);
  auto resp = roundtrip(req);
  if (!resp.ok()) return resp.error();
  return resp->body;
}

Status InfoGramClient::cancel(const std::string& contact) {
  net::Message req("GRAM_CANCEL");
  req.with("contact", contact);
  auto resp = roundtrip(req);
  if (!resp.ok()) return resp.error();
  return Status::success();
}

Result<gram::GramClient::RemoteStatus> InfoGramClient::wait(const std::string& contact,
                                                            Duration timeout) {
  net::Message req("GRAM_WAIT");
  req.with("contact", contact);
  req.with("timeout_ms", std::to_string(timeout.count() / 1000));
  auto resp = roundtrip(req);
  if (!resp.ok()) return resp.error();
  return parse_status(*resp);
}

net::TrafficStats InfoGramClient::stats() const {
  net::TrafficStats total = closed_stats_;
  if (connection_ != nullptr) total.merge(connection_->stats());
  return total;
}

void InfoGramClient::disconnect() {
  if (connection_ != nullptr) {
    closed_stats_.merge(connection_->stats());
    connection_.reset();
  }
}

}  // namespace ig::core
