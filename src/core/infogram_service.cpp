#include "core/infogram_service.hpp"

#include "common/strings.hpp"
#include "info/obs_provider.hpp"

namespace ig::core {

const format::InfoRecord* InfoGramResult::record(std::size_t i) const {
  if (cached != nullptr) return i == 0 ? &cached->record : nullptr;
  return i < records.size() ? &records[i] : nullptr;
}

std::string InfoGramResult::payload() const {
  if (schema) return schema->to_xml();
  if (cached != nullptr) return std::string(cached->payload(format));
  if (records.empty()) return "";
  switch (format) {
    case rsl::OutputFormat::kXml:
      return format::to_xml(records);
    case rsl::OutputFormat::kDsml:
      return format::to_dsml(records);
    case rsl::OutputFormat::kLdif:
      break;
  }
  return format::to_ldif(records);
}

std::string_view InfoGramResult::payload_view() const {
  return cached != nullptr ? cached->payload(format) : std::string_view();
}

InfoGramService::InfoGramService(std::shared_ptr<info::SystemMonitor> monitor,
                                 std::shared_ptr<exec::LocalJobExecution> backend,
                                 security::Credential credential,
                                 const security::TrustStore* trust,
                                 const security::GridMap* gridmap,
                                 const security::AuthorizationPolicy* policy,
                                 const Clock* clock,
                                 std::shared_ptr<logging::Logger> logger,
                                 InfoGramConfig config)
    : monitor_(std::move(monitor)),
      backend_(backend),
      authenticator_(credential, trust, gridmap, clock),
      policy_(policy),
      clock_(clock),
      logger_(logger),
      config_(std::move(config)),
      gram_(std::move(backend), std::move(credential), trust, gridmap, policy, clock,
            std::move(logger),
            gram::GramConfig{config_.host, config_.port, config_.max_restarts,
                             config_.jar_backend, config_.telemetry}) {
  if (config_.telemetry != nullptr) {
    obs::MetricsRegistry& metrics = config_.telemetry->metrics();
    requests_total_ = &metrics.counter(obs::metric::kRequestsTotal);
    requests_xrsl_ = &metrics.counter(obs::metric::kRequestsXrsl);
    requests_gram_ = &metrics.counter(obs::metric::kRequestsGram);
    requests_errors_ = &metrics.counter(obs::metric::kRequestsErrors);
    request_seconds_ = &metrics.histogram(obs::metric::kRequestSeconds);
    format_renders_ = &metrics.counter(obs::metric::kFormatRenders);
    cache_fast_hits_ = &metrics.counter(obs::metric::kInfoCacheFastHits);
    authenticator_.set_telemetry(config_.telemetry);
    monitor_->set_telemetry(config_.telemetry);
    // The deployment's sampling rate (default: 1 in kDefaultTraceSampling
    // roots). Metrics stay 100%; only span retention is sampled.
    config_.telemetry->set_trace_sampling(config_.trace_sample_every);
    // Tail retention rides on top: head-declined requests become
    // provisional traces kept only when the finish-time verdict fires.
    if (config_.tail_sampling) config_.telemetry->enable_tail();
    if (!config_.flight_record_dir.empty()) {
      obs::FlightRecorder::Options fr_options;
      fr_options.dump_dir = config_.flight_record_dir;
      config_.telemetry->set_flight_recorder(
          std::make_shared<obs::FlightRecorder>(*clock_, config_.host, fr_options));
    }
    // Spans recorded here carry this node's identity so stitched
    // multi-hop traces say where each span ran.
    if (config_.telemetry->node_id().empty()) {
      config_.telemetry->set_node_id(config_.host);
    }
    if (!config_.trace_export_path.empty()) {
      obs::JsonlExporter::Options export_options;
      export_options.sample_every = config_.trace_export_sample_every;
      config_.telemetry->set_exporter(std::make_shared<obs::JsonlExporter>(
          config_.trace_export_path, export_options));
    }
    // Default objectives over the metrics this service already records;
    // deployments that added their own keep theirs.
    if (config_.telemetry->slo().size() == 0) {
      obs::SloEngine& slo = config_.telemetry->slo();
      obs::SloObjective latency;
      latency.name = "request-latency";
      latency.layer = "core";
      latency.kind = obs::SloObjective::Kind::kLatency;
      latency.metric = obs::metric::kRequestSeconds;
      latency.threshold_seconds = 0.5;
      latency.target = 0.99;
      slo.add(std::move(latency));
      obs::SloObjective availability;
      availability.name = "request-availability";
      availability.layer = "core";
      availability.kind = obs::SloObjective::Kind::kErrorRate;
      availability.metric = obs::metric::kRequestsErrors;
      availability.total_metric = obs::metric::kRequestsTotal;
      availability.target = 0.999;
      slo.add(std::move(availability));
      obs::SloObjective info_latency;
      info_latency.name = "info-query-latency";
      info_latency.layer = "info";
      info_latency.kind = obs::SloObjective::Kind::kLatency;
      info_latency.metric = obs::metric::kInfoQuerySeconds;
      info_latency.threshold_seconds = 0.25;
      info_latency.target = 0.99;
      slo.add(std::move(info_latency));
    }
    // Dogfooding: the telemetry is itself a provider family, so
    // (info=metrics) / (info=traces) / (info=slo) / (info=alerts) travel
    // the same path as any keyword.
    (void)info::register_obs_providers(*monitor_, config_.telemetry);
    if (config_.profiling) {
      // Always-on profiler: contended lock waits land in the process
      // registry, keyword/request allocation attribution turns on, and
      // the profile keyword family joins the catalog.
      obs::LockContentionRegistry::install();
      config_.telemetry->profiler().set_enabled(true);
      obs::MetricsRegistry& m = config_.telemetry->metrics();
      profile_request_allocs_ = &m.histogram(
          obs::metric::kProfileRequestAllocs, {10.0, 100.0, 1000.0, 10000.0, 100000.0});
      profile_request_alloc_bytes_ =
          &m.histogram(obs::metric::kProfileRequestAllocBytes,
                       {1024.0, 16384.0, 131072.0, 1048576.0, 16777216.0});
      (void)info::register_profile_providers(*monitor_, config_.telemetry);
    }
  }
  // The resilience layer made queryable (info=health): breaker states,
  // cache validity and failure counters per keyword. Telemetry-independent.
  (void)info::register_health_provider(*monitor_);
  if (config_.telemetry != nullptr) {
    if (logger_ != nullptr) {
      std::shared_ptr<logging::Logger> logger_copy = logger_;
      config_.telemetry->set_trace_listener([logger_copy](const obs::TraceRecord& rec) {
        if (!logger_copy->has_sinks()) return;  // don't format for nobody
        logger_copy->log(logging::EventType::kTrace, "", "", 0,
                         rec.root + " id=" + rec.id + " status=" + rec.status +
                             " spans=" + std::to_string(rec.spans.size()) +
                             " duration_us=" + std::to_string(rec.duration.count()));
      });
    }
  }
  if (config_.worker_threads > 0) {
    pool_ = std::make_unique<ThreadPool>(
        ThreadPool::Options{config_.worker_threads, config_.queue_depth}, clock_);
    wire_pool_metrics();
  }
  if (config_.prefetch) (void)monitor_->start_prefetch(config_.prefetch_options);
}

InfoGramService::~InfoGramService() {
  // The telemetry (and its profiler) can outlive us: drop the pool
  // snapshot callback before the pool it captures goes away.
  if (config_.telemetry != nullptr) {
    config_.telemetry->profiler().detach_pool("core.request");
  }
  if (pool_ != nullptr) pool_->shutdown();
  if (config_.prefetch) monitor_->stop_prefetch();
}

void InfoGramService::wire_pool_metrics() {
  if (config_.telemetry == nullptr) return;
  obs::MetricsRegistry& metrics = config_.telemetry->metrics();
  ThreadPool::Hooks hooks;
  // Resolved once; registry references stay valid for the telemetry's
  // lifetime, which the captured shared_ptr extends past ours.
  std::shared_ptr<obs::Telemetry> keep = config_.telemetry;
  obs::Gauge* depth = &metrics.gauge(obs::metric::kPoolQueueDepth);
  obs::Gauge* highwater = &metrics.gauge(obs::metric::kPoolQueueHighwater);
  obs::Counter* shed = &metrics.counter(obs::metric::kPoolShed);
  obs::Counter* tasks = &metrics.counter(obs::metric::kPoolTasks);
  obs::Histogram* task_seconds = &metrics.histogram(obs::metric::kPoolTaskSeconds);
  std::vector<obs::Counter*> worker_tasks;
  std::vector<obs::Counter*> worker_busy;
  for (std::size_t i = 0; i < pool_->worker_count(); ++i) {
    std::string prefix = std::string(obs::metric::kPoolWorkerPrefix) + std::to_string(i);
    worker_tasks.push_back(&metrics.counter(prefix + ".tasks"));
    worker_busy.push_back(&metrics.counter(prefix + ".busy_us"));
  }
  hooks.on_depth = [keep, depth, highwater](std::size_t d, std::size_t hw) {
    depth->set(static_cast<std::int64_t>(d));
    highwater->set(static_cast<std::int64_t>(hw));
  };
  hooks.on_shed = [keep, shed] { shed->add(); };
  // Scheduler profiling: queue wait (enqueue→dequeue) feeds its own
  // histogram when the profiler is on; run time keeps the PR-4 metrics.
  obs::Histogram* pool_wait =
      config_.profiling
          ? &metrics.histogram(obs::metric::kProfilePoolWaitSeconds)
          : nullptr;
  hooks.on_task_done = [keep, tasks, task_seconds, pool_wait, worker_tasks,
                        worker_busy](std::size_t worker, Duration wait, Duration busy) {
    tasks->add();
    task_seconds->observe(static_cast<double>(busy.count()) / 1e6);
    if (pool_wait != nullptr) {
      pool_wait->observe(static_cast<double>(wait.count()) / 1e6);
    }
    if (worker < worker_tasks.size()) {
      worker_tasks[worker]->add();
      worker_busy[worker]->add(static_cast<std::uint64_t>(busy.count()));
    }
  };
  pool_->set_hooks(std::move(hooks));
  if (config_.profiling) {
    // `profile.pool` reads this; reset_window=true closes the windowed
    // high-water so bursts don't shadow steady state forever.
    config_.telemetry->profiler().attach_pool(
        "core.request", [pool = pool_.get()](bool reset_window) {
          return reset_window ? pool->snapshot_and_reset_window() : pool->stats();
        });
  }
}

Status InfoGramService::start(net::Network& network) {
  network_ = &network;
  gram_.attach_network(network);  // for callback notifications
  if (config_.telemetry != nullptr) network.set_telemetry(config_.telemetry);
  if (logger_ != nullptr) logger_->log(logging::EventType::kServiceStart, "", "", 0, "infogram");
  // Note: gram_.start() is never called — the GRAM machinery serves
  // through *this* endpoint. One port, one protocol.
  return network.listen(address(),
                        authenticator_.wrap([this](const net::Message& req,
                                                   net::Session& session) {
                          return handle(req, session);
                        }));
}

void InfoGramService::stop() {
  if (logger_ != nullptr) logger_->log(logging::EventType::kServiceStop, "", "", 0, "infogram");
  if (network_ != nullptr) network_->close(address());
}

// The serve half of the fast path, after the gate conditions and
// authorization: everything from here to the returned result is inside
// the static purity proof (authorization stays outside — its deny path
// builds an Error string, and the runtime counter proof in
// tests/snapshot_test.cpp measures exactly this post-authorize region).
// The timestamp is a parameter so the clock read stays with the caller.
IG_STATIC_FAST_PATH
bool InfoGramService::try_serve_snapshot(const rsl::XrslRequest& request, TimePoint now,
                                         InfoGramResult& result) {
  info::CacheSnapshotPtr hit = monitor_->query_cached_fast(request.info_keys.front(), now);
  if (hit == nullptr) return false;
  if (cache_fast_hits_ != nullptr) cache_fast_hits_->add();
  result.cached = std::move(hit);
  return true;
}

Result<InfoGramResult> InfoGramService::execute(const rsl::XrslRequest& request,
                                                const std::string& subject,
                                                const std::string& local_user,
                                                const std::string& callback_address,
                                                obs::TraceContext* trace) {
  InfoGramResult result;
  result.format = request.format;

  // Zero-lock, zero-alloc fast path: a single-keyword cached-mode info
  // query with no schema/performance/filters/quality-threshold work is
  // answered straight from the provider's published snapshot — one
  // acquire-load for the provider table, one for the cache generation,
  // no mutex and no heap allocation anywhere on the hit path (the
  // response bytes were pre-rendered at refresh time). Traced requests
  // take the full path so per-keyword spans and allocation attribution
  // keep working; so do requests whose snapshot is cold, expired, or
  // rendered under a time-varying degradation model.
  // Audited deployments (a logger with sinks) take the full path so the
  // per-query kInfoQuery event keeps feeding accounting; audits() is a
  // relaxed atomic load, not a lock.
  if (trace == nullptr && (logger_ == nullptr || !logger_->audits()) && !request.is_job() &&
      request.is_info() && !request.wants_schema && request.performance_keys.empty() &&
      request.info_keys.size() == 1 && request.response == rsl::ResponseMode::kCached &&
      !request.quality_threshold && request.filters.empty()) {
    if (policy_ != nullptr) {
      auto auth = policy_->authorize(subject, config_.host, "query", clock_->now());
      if (!auth.ok()) return auth.error();
    }
    if (try_serve_snapshot(request, clock_->now(), result)) return result;
    // Miss: fall through to the full path (which re-authorizes — the
    // policy is a pure function, so the double evaluation only costs a
    // rule scan on the slow path).
  }

  if (request.is_job()) {
    // Authorization happens inside the GRAM submit path ("submit" action).
    // The GRAM machinery needs to see the network for callbacks; it shares
    // ours.
    auto contact = gram_.submit_local(request, subject, local_user, callback_address, trace);
    if (!contact.ok()) return contact.error();
    result.job_contact = std::move(contact.value());
  }

  if (request.is_info()) {
    if (policy_ != nullptr) {
      auto auth = policy_->authorize(subject, config_.host, "query", clock_->now());
      if (!auth.ok()) return auth.error();
    }
    if (request.wants_schema) {
      result.schema = monitor_->schema();
      // Reflection covers the execution half too (paper Sec. 6.5).
      format::ExecutionSchema exec;
      exec.backend = backend_ != nullptr ? backend_->name() : "none";
      exec.jar_supported = config_.jar_backend != nullptr;
      exec.max_restarts = config_.max_restarts;
      if (backend_ != nullptr) exec.queues = backend_->queues();
      result.schema->execution = std::move(exec);
    }
    if (!request.info_keys.empty()) {
      // The xRSL timeout/action pair applies to info queries too: cancel
      // arms a per-keyword deadline, exception annotates late records.
      info::GetOptions get_options{request.timeout, request.action};
      auto records = monitor_->query(request.info_keys, request.response,
                                     request.quality_threshold, request.filters, trace,
                                     pool_.get(), get_options);
      if (!records.ok()) return records.error();
      result.records = std::move(records.value());
    }
    if (!request.performance_keys.empty()) {
      auto perf = monitor_->performance_record(request.performance_keys);
      if (!perf.ok()) return perf.error();
      result.records.push_back(std::move(perf.value()));
    }
    if (logger_ != nullptr) {
      logger_->log(logging::EventType::kInfoQuery, subject, local_user, 0,
                   strings::join(request.info_keys, ","));
    }
  }
  return result;
}

net::Message InfoGramService::handle(const net::Message& request, net::Session& session) {
  if (pool_ == nullptr) return process(request, session);
  // Admission-controlled wire path: the caller's (network) thread blocks on
  // the worker's result; overload is shed here with the documented error
  // instead of queueing without bound. Fan-out inside the request re-enters
  // the pool through fan_out(), which cannot deadlock (caller participates).
  std::promise<net::Message> promise;
  std::future<net::Message> future = promise.get_future();
  Status admitted = pool_->submit([this, &request, &session, &promise] {
    promise.set_value(process(request, session));
  });
  if (!admitted.ok()) {
    if (requests_errors_ != nullptr) requests_errors_->add();
    return net::Message::error(admitted.error());
  }
  return future.get();
}

net::Message InfoGramService::process(const net::Message& request, net::Session& session) {
  // Serving-side extraction: a propagated wire context makes this request
  // a remote hop of the caller's trace rather than a root of its own.
  std::optional<obs::WireContext> wire;
  if (auto header = request.header(obs::kTraceHeader)) {
    wire = obs::WireContext::decode(*header);
  }

  const std::shared_ptr<obs::Telemetry>& telemetry = config_.telemetry;
  if (telemetry == nullptr) {
    // Uninstrumented middle hop: forward the caller's context (or its
    // don't-sample decision) so the trace survives passing through us.
    if (wire.has_value() && wire->sampled) {
      obs::PassThroughScope forward(wire->trace_id, wire->parent_span, wire->provisional);
      return dispatch(request, session, nullptr);
    }
    if (wire.has_value()) {
      obs::SuppressScope suppress;
      return dispatch(request, session, nullptr);
    }
    return dispatch(request, session, nullptr);
  }

  requests_total_->add();
  if (request.verb == "XRSL") {
    requests_xrsl_->add();
  } else if (strings::starts_with(request.verb, "GRAM_")) {
    requests_gram_->add();
  }

  // The originator's sampling decision rides the header; only a root
  // (no wire context) consults the local sampler.
  bool sampled = wire.has_value() ? wire->sampled : telemetry->should_sample();
  if (!sampled) {
    if (!wire.has_value() && telemetry->tail() != nullptr) {
      // Tail-watched root: the head sampler declined, but a verdict at
      // finish may still retain this request. The PendingTrace is a stack
      // struct — a real context (and its allocations) only materializes
      // if an outbound hop needs a wire id, so the clean path stays at
      // the head-sampling cost.
      std::unique_ptr<obs::TraceContext> lazy;
      obs::PendingTrace pending;
      pending.materialize = [&] {
        lazy = telemetry->make_provisional_trace(request.verb);
        return lazy.get();
      };
      ScopedTimer timer(*clock_);
      net::Message resp;
      {
        obs::ProvisionalScope scope(pending);
        resp = dispatch(request, session, nullptr);
      }
      if (resp.is_error()) requests_errors_->add();
      Duration latency = timer.elapsed();
      request_seconds_->observe(static_cast<double>(latency.count()) / 1e6);
      telemetry->finish_provisional(
          pending, request.verb, latency,
          resp.is_error() ? (resp.body.empty() ? "error" : resp.body) : "ok");
      return resp;
    }
    // Allocation attribution rides the sampling decision: an unsampled
    // request pays the tracing baseline and nothing more — that is how
    // continuous profiling stays within its overhead budget.
    obs::SuppressScope suppress;
    ScopedTimer timer(*clock_);
    net::Message resp = dispatch(request, session, nullptr);
    if (resp.is_error()) requests_errors_->add();
    request_seconds_->observe(static_cast<double>(timer.elapsed().count()) / 1e6);
    return resp;
  }

  if (wire.has_value() && wire->provisional) {
    // Provisional wire join: record like any remote hop, but route the
    // finish through the tail gate — retained locally only if *this* hop
    // saw a verdict; otherwise the spans and signal bits backhaul to the
    // origin, whose verdict decides. No latency exemplar: a discarded
    // provisional id must not leak into histogram exemplars.
    std::unique_ptr<obs::TraceContext> trace =
        telemetry->make_remote_provisional(request.verb, wire->trace_id, wire->parent_span);
    ScopedTimer timer(*clock_);
    net::Message resp;
    {
      obs::TraceScope scope(*trace);
      resp = dispatch(request, session, trace.get());
    }
    if (resp.is_error()) {
      requests_errors_->add();
      trace->fail(resp.body.empty() ? "error" : resp.body);
    }
    request_seconds_->observe(static_cast<double>(timer.elapsed().count()) / 1e6);
    obs::TraceRecord record = telemetry->collect_provisional(*trace);
    if (!resp.is_error()) {
      resp.with(obs::kTraceSpansHeader, obs::encode_spans(record.spans));
      if (record.signals != 0) {
        resp.with(obs::kTraceSignalsHeader, std::to_string(record.signals));
      }
    }
    return resp;
  }

  std::unique_ptr<obs::TraceContext> trace =
      wire.has_value()
          ? telemetry->make_remote_trace(request.verb, wire->trace_id, wire->parent_span)
          : telemetry->make_trace(request.verb);
  ScopedTimer timer(*clock_);
  obs::AllocScope alloc_scope;
  net::Message resp;
  {
    // Active for the dispatch so outbound hops (hierarchy forwards,
    // broker lookups) propagate this trace onward.
    obs::TraceScope scope(*trace);
    resp = dispatch(request, session, trace.get());
  }
  if (resp.is_error()) {
    requests_errors_->add();
    trace->fail(resp.body.empty() ? "error" : resp.body);
  }
  // The latency exemplar: this bucket's sample links straight to us.
  request_seconds_->observe(static_cast<double>(timer.elapsed().count()) / 1e6,
                            trace->id());
  if (profile_request_allocs_ != nullptr) {
    // Scope closes here (dispatch ran on this thread); the root span
    // carries the request's allocation profile before the record is
    // completed/backhauled below.
    profile_request_allocs_->observe(static_cast<double>(alloc_scope.allocs()), trace->id());
    profile_request_alloc_bytes_->observe(static_cast<double>(alloc_scope.bytes()),
                                          trace->id());
    trace->set_span_alloc(0, alloc_scope.allocs(), alloc_scope.bytes());
  }
  if (wire.has_value() && !resp.is_error()) {
    // Backhaul our spans (ours + any we adopted from hops below us) so
    // the caller stitches the whole subtree into its record, plus any
    // tail-signal bits layers below raised (faults a shield absorbed
    // still retain at the origin).
    obs::TraceRecord record = telemetry->complete_and_collect(*trace);
    resp.with(obs::kTraceSpansHeader, obs::encode_spans(record.spans));
    if (record.signals != 0) {
      resp.with(obs::kTraceSignalsHeader, std::to_string(record.signals));
    }
  } else {
    telemetry->complete(*trace);
  }
  return resp;
}

std::future<Result<InfoGramResult>> InfoGramService::submit_async(rsl::XrslRequest request,
                                                                  std::string subject,
                                                                  std::string local_user,
                                                                  std::string callback_address) {
  auto promise = std::make_shared<std::promise<Result<InfoGramResult>>>();
  std::future<Result<InfoGramResult>> future = promise->get_future();
  auto run = [this, promise, request = std::move(request), subject = std::move(subject),
              local_user = std::move(local_user),
              callback_address = std::move(callback_address)] {
    const std::shared_ptr<obs::Telemetry>& telemetry = config_.telemetry;
    if (telemetry == nullptr) {
      promise->set_value(execute(request, subject, local_user, callback_address));
      return;
    }
    requests_total_->add();
    requests_xrsl_->add();
    // Same sampling contract as the wire path: an unsampled request pays
    // metrics only, and suppresses so downstream hops don't root either.
    if (!telemetry->should_sample()) {
      if (telemetry->tail() != nullptr) {
        // Tail-watched root, async flavour — see process() for the
        // lazy-materialization contract.
        std::unique_ptr<obs::TraceContext> lazy;
        obs::PendingTrace pending;
        pending.materialize = [&] {
          lazy = telemetry->make_provisional_trace("XRSL");
          return lazy.get();
        };
        ScopedTimer timer(*clock_);
        Result<InfoGramResult> result = Error(ErrorCode::kUnavailable, "unset");
        {
          obs::ProvisionalScope scope(pending);
          result = execute(request, subject, local_user, callback_address);
        }
        if (!result.ok()) requests_errors_->add();
        Duration latency = timer.elapsed();
        request_seconds_->observe(static_cast<double>(latency.count()) / 1e6);
        telemetry->finish_provisional(pending, "XRSL", latency,
                                      result.ok() ? "ok" : result.error().to_string());
        promise->set_value(std::move(result));
        return;
      }
      // Unsampled: tracing baseline only — allocation attribution rides
      // the sampling decision (see process()).
      obs::SuppressScope suppress;
      ScopedTimer timer(*clock_);
      Result<InfoGramResult> result = execute(request, subject, local_user, callback_address);
      if (!result.ok()) requests_errors_->add();
      request_seconds_->observe(static_cast<double>(timer.elapsed().count()) / 1e6);
      promise->set_value(std::move(result));
      return;
    }
    obs::TraceContext trace = telemetry->start_trace("XRSL");
    ScopedTimer timer(*clock_);
    obs::AllocScope alloc_scope;
    Result<InfoGramResult> result = Error(ErrorCode::kUnavailable, "unset");
    {
      obs::TraceScope scope(trace);
      result = execute(request, subject, local_user, callback_address, &trace);
    }
    if (!result.ok()) {
      requests_errors_->add();
      trace.fail(result.error().to_string());
    }
    request_seconds_->observe(static_cast<double>(timer.elapsed().count()) / 1e6,
                              trace.id());
    if (profile_request_allocs_ != nullptr) {
      profile_request_allocs_->observe(static_cast<double>(alloc_scope.allocs()), trace.id());
      profile_request_alloc_bytes_->observe(static_cast<double>(alloc_scope.bytes()),
                                            trace.id());
      trace.set_span_alloc(0, alloc_scope.allocs(), alloc_scope.bytes());
    }
    telemetry->complete(trace);
    promise->set_value(std::move(result));
  };
  if (pool_ == nullptr) {
    run();
    return future;
  }
  Status admitted = pool_->submit(std::move(run));
  if (!admitted.ok()) {
    if (requests_errors_ != nullptr) requests_errors_->add();
    promise->set_value(admitted.error());
  }
  return future;
}

net::Message InfoGramService::dispatch(const net::Message& request, net::Session& session,
                                       obs::TraceContext* trace) {
  if (request.verb == "XRSL") return handle_xrsl(request, session, trace);
  // Protocol backwards compatibility: a legacy GRAM client speaking GRAMP
  // works against an InfoGram endpoint unchanged (paper: "providing
  // backwards compatibility by adhering to standard Grid protocols").
  if (strings::starts_with(request.verb, "GRAM_")) {
    return gram_.handle(request, session);
  }
  return net::Message::error(
      Error(ErrorCode::kInvalidArgument, "unknown InfoGram verb: " + request.verb));
}

net::Message InfoGramService::handle_xrsl(const net::Message& request, net::Session& session,
                                          obs::TraceContext* trace) {
  // Multi-requests ('+') dispatch each sub-specification in order; a
  // plain specification is the single-element case of the same path.
  std::optional<obs::TraceContext::Span> parse_span;
  if (trace != nullptr) parse_span.emplace(trace->span("parse"));
  auto parsed = rsl::XrslRequest::parse_all(request.body);
  if (!parsed.ok()) {
    if (parse_span) parse_span->end(parsed.error().to_string());
    return net::Message::error(parsed.error());
  }
  parse_span.reset();

  InfoGramResult combined;
  std::vector<std::string> contacts;
  for (const rsl::XrslRequest& req : parsed.value()) {
    auto result = execute(req, session.authenticated_subject().value_or(""),
                          session.local_user().value_or(""),
                          request.header_or("callback", ""), trace);
    if (!result.ok()) return net::Message::error(result.error());
    if (result->job_contact) contacts.push_back(*result->job_contact);
    if (parsed.value().size() == 1 && result->cached && !combined.cached) {
      // Single-spec cache hit: carry the snapshot through so the response
      // body reuses the pre-rendered bytes instead of re-rendering.
      combined.cached = std::move(result->cached);
    } else if (result->cached) {
      combined.records.push_back(result->cached->record);
    }
    for (auto& record : result->records) combined.records.push_back(std::move(record));
    if (result->schema && !combined.schema) combined.schema = std::move(result->schema);
    combined.format = result->format;
  }

  std::optional<obs::TraceContext::Span> format_span;
  if (trace != nullptr) {
    format_span.emplace(trace->span("format:" + std::string(to_string(combined.format))));
  }
  net::Message resp = net::Message::ok(combined.payload());
  format_span.reset();
  if (format_renders_ != nullptr && combined.record_count() + (combined.schema ? 1 : 0) > 0) {
    format_renders_->add();
  }
  if (!contacts.empty()) {
    combined.job_contact = contacts.front();
    resp.with("contact", contacts.front());
    resp.with("contacts", strings::join(contacts, ","));
  }
  if (combined.schema) {
    resp.with("type", "schema");
  } else if (combined.record_count() > 0) {
    resp.with("type", "records");
    resp.with("format", std::string(to_string(combined.format)));
    resp.with("count", std::to_string(combined.record_count()));
  }
  return resp;
}

Result<gram::ManagedJobInfo> InfoGramService::job_info(const std::string& contact) const {
  return gram_.job_info(contact);
}

Status InfoGramService::cancel(const std::string& contact) { return gram_.cancel(contact); }

Result<gram::ManagedJobInfo> InfoGramService::wait(const std::string& contact,
                                                   Duration timeout) const {
  return gram_.wait(contact, timeout);
}

Result<std::size_t> InfoGramService::recover_from_log(
    const std::vector<logging::LogEvent>& events) {
  auto plan = logging::build_recovery_plan(events);
  std::size_t recovered = 0;
  for (const auto& job : plan) {
    auto request = rsl::XrslRequest::parse(job.rsl);
    if (!request.ok()) return request.error();
    if (logger_ != nullptr) {
      logger_->log(logging::EventType::kJobRestarted, job.subject, job.local_user,
                   job.job_id, job.rsl);
    }
    auto contact = gram_.submit_local(request.value(), job.subject, job.local_user);
    if (!contact.ok()) return contact.error();
    ++recovered;
  }
  return recovered;
}

std::shared_ptr<mds::Gris> InfoGramService::make_gris() const {
  return std::make_shared<mds::Gris>(monitor_, config_.host, *clock_);
}

}  // namespace ig::core
