#include "core/config.hpp"

#include "common/strings.hpp"
#include "info/degradation.hpp"

namespace ig::core {

Result<Configuration> Configuration::parse(const std::string& text) {
  Configuration config;
  int line_no = 0;
  for (const auto& raw : strings::split(text, '\n')) {
    ++line_no;
    auto line = strings::trim(raw);
    if (line.empty() || line.front() == '#') continue;
    auto fields = strings::split_fields(line, ' ');
    if (fields.size() < 3) {
      return Error(ErrorCode::kParseError,
                   strings::format("config line %d: expected TTL, keyword, command", line_no));
    }
    KeywordConfig kw;
    auto ttl = strings::parse_int(fields[0]);
    if (!ttl || *ttl < 0) {
      return Error(ErrorCode::kParseError,
                   strings::format("config line %d: bad TTL '%s'", line_no, fields[0].c_str()));
    }
    kw.ttl = ms(*ttl);
    kw.keyword = fields[1];
    // Remaining fields are the command line, except trailing key=value
    // options which configure the provider.
    std::vector<std::string> command_parts;
    for (std::size_t i = 2; i < fields.size(); ++i) {
      std::size_t eq = fields[i].find('=');
      bool is_option = eq != std::string::npos &&
                       (strings::starts_with(fields[i], "degradation=") ||
                        strings::starts_with(fields[i], "delay=") ||
                        strings::starts_with(fields[i], "adaptive_ttl="));
      if (!is_option) {
        command_parts.push_back(fields[i]);
        continue;
      }
      std::string key = fields[i].substr(0, eq);
      std::string value = fields[i].substr(eq + 1);
      if (key == "degradation") {
        if (info::make_degradation(value) == nullptr) {
          return Error(ErrorCode::kParseError,
                       strings::format("config line %d: unknown degradation '%s'", line_no,
                                       value.c_str()));
        }
        kw.degradation = value;
      } else if (key == "delay") {
        auto d = strings::parse_int(value);
        if (!d || *d < 0) {
          return Error(ErrorCode::kParseError,
                       strings::format("config line %d: bad delay", line_no));
        }
        kw.delay = ms(*d);
      } else {  // adaptive_ttl
        kw.adaptive_ttl = value == "1" || value == "true";
      }
    }
    if (command_parts.empty()) {
      return Error(ErrorCode::kParseError,
                   strings::format("config line %d: missing command", line_no));
    }
    kw.command_line = strings::join(command_parts, " ");
    if (config.find(kw.keyword) != nullptr) {
      return Error(ErrorCode::kParseError,
                   strings::format("config line %d: duplicate keyword '%s'", line_no,
                                   kw.keyword.c_str()));
    }
    config.keywords_.push_back(std::move(kw));
  }
  return config;
}

Configuration Configuration::table1() {
  // The exact mapping of the paper's Table 1.
  auto parsed = parse(
      "60   Date    date -u\n"
      "80   Memory  /sbin/sysinfo.exe -mem\n"
      "100  CPU     /sbin/sysinfo.exe -cpu\n"
      "0    CPULoad /usr/local/bin/cpuload.exe\n"
      "1000 list    /bin/ls /home/gregor\n");
  return parsed.value();
}

Configuration Configuration::extended() {
  auto parsed = parse(
      "60    Date     date -u\n"
      "80    Memory   /sbin/sysinfo.exe -mem degradation=linear\n"
      "100   CPU      /sbin/sysinfo.exe -cpu\n"
      "0     CPULoad  /usr/local/bin/cpuload.exe degradation=observed delay=5\n"
      "1000  list     /bin/ls /home/gregor\n"
      "5000  Disk     /bin/df degradation=linear adaptive_ttl=1\n"
      "500   Network  /sbin/netstat.exe degradation=exponential\n"
      "200   Uptime   /usr/bin/uptime\n"
      "60000 Hostname /bin/hostname\n");
  return parsed.value();
}

const KeywordConfig* Configuration::find(const std::string& keyword) const {
  for (const auto& kw : keywords_) {
    if (kw.keyword == keyword) return &kw;
  }
  return nullptr;
}

void Configuration::add(KeywordConfig config) { keywords_.push_back(std::move(config)); }

std::string Configuration::serialize() const {
  std::string out = "# TTL(ms) Keyword Command\n";
  for (const auto& kw : keywords_) {
    out += strings::format("%lld %s %s", static_cast<long long>(kw.ttl.count() / 1000),
                           kw.keyword.c_str(), kw.command_line.c_str());
    if (kw.degradation != "binary") out += " degradation=" + kw.degradation;
    if (kw.delay.count() > 0) {
      out += strings::format(" delay=%lld", static_cast<long long>(kw.delay.count() / 1000));
    }
    if (kw.adaptive_ttl) out += " adaptive_ttl=1";
    out += '\n';
  }
  return out;
}

Status Configuration::apply(info::SystemMonitor& monitor,
                            std::shared_ptr<exec::CommandRegistry> registry) const {
  for (const auto& kw : keywords_) {
    auto [path, args] = exec::split_command_line(kw.command_line);
    if (!registry->contains(path)) {
      return Error(ErrorCode::kNotFound,
                   "configured command not installed: " + path + " (keyword " + kw.keyword +
                       ")");
    }
    info::ProviderOptions options;
    options.ttl = kw.ttl;
    options.delay = kw.delay;
    options.degradation = info::make_degradation(kw.degradation);
    options.adaptive_ttl = kw.adaptive_ttl;
    auto status = monitor.add_source(
        std::make_shared<info::CommandSource>(kw.keyword, kw.command_line, registry),
        std::move(options));
    if (!status.ok()) return status;
  }
  return Status::success();
}

}  // namespace ig::core
