// Client for an InfoGram service: ONE connection, ONE handshake, ONE
// protocol for job submission, information queries and combined requests
// (contrast GramClient + MdsClient, which need one of each).
#pragma once

#include "core/infogram_service.hpp"
#include "gram/service.hpp"

namespace ig::core {

/// Parsed response to one xRSL request.
struct InfoGramResponse {
  std::optional<std::string> job_contact;  ///< first contact, if any
  std::vector<std::string> job_contacts;   ///< all contacts (multi-requests)
  std::string payload;                      ///< raw LDIF/XML text
  std::vector<format::InfoRecord> records;  ///< parsed from the payload
  std::optional<format::ServiceSchema> schema;
};

class InfoGramClient {
 public:
  InfoGramClient(net::Network& network, net::Address address,
                 security::Credential credential, const security::TrustStore& trust,
                 const Clock& clock);

  /// Send an xRSL request (string or typed). One round trip; the response
  /// may carry a job contact, information records, a schema, or several.
  Result<InfoGramResponse> request(const std::string& xrsl,
                                   const std::string& callback_address = "");
  Result<InfoGramResponse> request(const rsl::XrslRequest& req,
                                   const std::string& callback_address = "");

  /// Convenience wrappers over request().
  Result<std::string> submit_job(const rsl::XrslRequest& req,
                                 const std::string& callback_address = "");
  Result<std::vector<format::InfoRecord>> query_info(
      const std::vector<std::string>& keywords,
      rsl::ResponseMode mode = rsl::ResponseMode::kCached,
      rsl::OutputFormat format = rsl::OutputFormat::kLdif);
  Result<format::ServiceSchema> fetch_schema();

  /// Job management over the same connection and protocol.
  Result<gram::GramClient::RemoteStatus> job_status(const std::string& contact);
  Result<std::string> job_output(const std::string& contact);
  Status cancel(const std::string& contact);
  Result<gram::GramClient::RemoteStatus> wait(const std::string& contact, Duration timeout);

  net::TrafficStats stats() const;
  void disconnect();

 private:
  Status ensure_connected();
  Result<net::Message> roundtrip(const net::Message& request);

  net::Network& network_;
  net::Address address_;
  security::Credential credential_;
  const security::TrustStore& trust_;
  const Clock& clock_;
  std::unique_ptr<net::Connection> connection_;
  net::TrafficStats closed_stats_;
};

}  // namespace ig::core
