// The InfoGram service (paper Sec. 6): one endpoint, one protocol, for
// both job execution and information queries.
//
// "If we think abstractly about job execution and an information service,
// we must recognize that they are based on the same principle: a query
// formulated and submitted to a server followed by a stream of information
// that returns the result based on the query."
//
// The wire protocol has a single request verb, XRSL, whose body is an
// xRSL specification. Dispatch:
//   * job attributes present      -> gatekeeper path: authorize ("submit"),
//     start a JobManager, return the contact;
//   * info/performance/schema tags -> information path: authorize
//     ("query"), resolve through the SystemMonitor honouring response /
//     quality / filter / format tags;
//   * both at once                 -> both, in one round trip — the
//     unification the paper is about.
// Job-management verbs (GRAM_STATUS/OUTPUT/CANCEL/WAIT, GRAM_SUBMIT for
// protocol backwards compatibility with pure GRAM clients) are served on
// the same port over the same framed protocol and the same authenticated
// connection.
//
// Restart: the service logs every submission's RSL (checkpoint); after a
// crash, recover_from_log() resubmits the jobs the log shows incomplete
// (paper Sec. 6: "the log can be used to restart our InfoGRAM service in
// case it needs to be restarted").
#pragma once

#include <future>

#include "common/thread_pool.hpp"
#include "core/config.hpp"
#include "format/dsml.hpp"
#include "format/ldif.hpp"
#include "format/xml.hpp"
#include "gram/service.hpp"
#include "info/system_monitor.hpp"
#include "mds/gris.hpp"
#include "obs/telemetry.hpp"

namespace ig::core {

struct InfoGramConfig {
  std::string host = "infogram.sim";
  int port = 2135;  ///< ONE port for everything (contrast GRAM 2119 + MDS 2135)
  int max_restarts = 1;
  std::shared_ptr<exec::LocalJobExecution> jar_backend;
  /// Observability bundle. When set, the service counts every request's
  /// metrics (SLOs keep full fidelity), traces a sampled subset (see
  /// `trace_sample_every`), shares the bundle with the monitor, GRAM and
  /// the authenticator, and registers the `metrics` / `metrics.jobs` /
  /// `traces` keywords so the telemetry is queryable through InfoGram
  /// itself. Null = zero-overhead opt-out.
  std::shared_ptr<obs::Telemetry> telemetry;
  /// Root-trace sampling applied to `telemetry` at construction: record
  /// 1 in N root traces (1 = every request — what tests asserting on
  /// specific traces want). Unsampled requests still observe all metrics;
  /// the decision propagates to downstream hops on the wire header.
  std::uint64_t trace_sample_every = obs::kDefaultTraceSampling;
  /// Request pipeline. worker_threads > 0 creates a fixed ThreadPool: wire
  /// requests and submit_async() run on the pool behind a bounded
  /// admission queue (overflow is shed with kUnavailable "admission queue
  /// full"), and multi-keyword info queries fan out across the workers.
  /// 0 keeps the historical fully-synchronous service.
  std::size_t worker_threads = 0;
  std::size_t queue_depth = 64;  ///< waiting requests before shedding
  /// Background TTL prefetch over the monitor's providers (keeps hot
  /// keywords warm so requests hit cache instead of paying provider
  /// latency inline). Started by the constructor, stopped on destruction.
  bool prefetch = false;
  info::PrefetchOptions prefetch_options;
  /// Durable trace export: non-empty attaches a JsonlExporter at this
  /// path (sampling 1-in-`trace_export_sample_every`) so completed traces
  /// survive restart and can be diffed in CI. Requires `telemetry`.
  std::string trace_export_path;
  std::uint64_t trace_export_sample_every = 1;
  /// Tail-based trace retention (requires `telemetry`; DESIGN.md §15):
  /// requests the head sampler declines become *provisional* traces,
  /// classified at finish — anomalies (errors, deadline hits, breaker
  /// trips, failovers, stale serves, retry recoveries, p99-derived slow
  /// outliers) are retained 100% while clean traffic stays at the
  /// 1-in-`trace_sample_every` head rate. Also arms SLO-burn-adaptive
  /// sampling: the head rate widens to base/8 while an objective burns
  /// and decays back once healthy. Default on — the tail layer is the
  /// observability contract; false keeps the PR-8 head-only behaviour
  /// (the bench_tail_sampling baseline).
  bool tail_sampling = true;
  /// Anomaly flight recorder (requires `telemetry`): non-empty attaches a
  /// FlightRecorder dumping FLIGHT_<node>_<seq>.jsonl files into this
  /// directory when a verdict retains a trace or an SLO page fires, and
  /// registers the TTL-0 `flightrecorder` keyword.
  std::string flight_record_dir;
  /// Continuous profiler (requires `telemetry`): installs the process
  /// lock-contention listener, enables per-keyword allocation
  /// attribution, attaches the request pool's scheduler profile, and
  /// registers the TTL-0 `profile` / `profile.locks` / `profile.pool`
  /// keywords. Default on — the whole point is an always-on profiler;
  /// false keeps a telemetry-carrying stack profiler-dark (the
  /// bench_profile_overhead baseline).
  bool profiling = true;
};

/// What one xRSL request produced.
struct InfoGramResult {
  std::optional<std::string> job_contact;
  std::vector<format::InfoRecord> records;  ///< info + performance records
  /// Zero-copy cache hit: set *instead of* `records` when the query was
  /// answered from a provider's published snapshot (single keyword, cached
  /// mode, no schema/filters/quality threshold). Shares the immutable
  /// generation — record and pre-rendered payloads — without copying;
  /// `records` stays empty in that case. Use record_count()/record() to
  /// read uniformly across both representations.
  info::CacheSnapshotPtr cached;
  std::optional<format::ServiceSchema> schema;
  rsl::OutputFormat format = rsl::OutputFormat::kLdif;

  /// Number of information records produced, across both representations.
  std::size_t record_count() const { return cached != nullptr ? 1 : records.size(); }
  /// Unified record access (index 0 is the cached record on the fast
  /// path); nullptr past the end.
  const format::InfoRecord* record(std::size_t i) const;

  /// Render the information part in the requested format (schema always
  /// renders as XML — it is hierarchical).
  std::string payload() const;
  /// Allocation-free payload for the cached fast path: a view into the
  /// snapshot's pre-rendered bytes, kept alive by `cached`. Empty when
  /// this result is not a cache hit.
  std::string_view payload_view() const;
};

class InfoGramService {
 public:
  InfoGramService(std::shared_ptr<info::SystemMonitor> monitor,
                  std::shared_ptr<exec::LocalJobExecution> backend,
                  security::Credential credential, const security::TrustStore* trust,
                  const security::GridMap* gridmap,
                  const security::AuthorizationPolicy* policy, const Clock* clock,
                  std::shared_ptr<logging::Logger> logger, InfoGramConfig config = {});
  /// Shutdown ordering: drain + join the worker pool first (in-flight
  /// requests may still touch every member), then stop the prefetch
  /// thread, then let members destruct.
  ~InfoGramService();

  Status start(net::Network& network);
  void stop();
  net::Address address() const { return {config_.host, config_.port}; }

  /// Execute an xRSL request in-process (also the recovery path). With
  /// `trace` set, submission and per-keyword resolution become spans.
  Result<InfoGramResult> execute(const rsl::XrslRequest& request, const std::string& subject,
                                 const std::string& local_user,
                                 const std::string& callback_address = "",
                                 obs::TraceContext* trace = nullptr);

  /// Asynchronous execute(): the request is admitted to the worker pool
  /// and the future resolves when a worker has processed it (traced and
  /// counted like a wire request). On admission-queue overflow the future
  /// is immediately ready with kUnavailable "admission queue full ..." —
  /// the documented shed behaviour. Without a pool (worker_threads == 0)
  /// the request executes inline and the future is ready on return.
  std::future<Result<InfoGramResult>> submit_async(rsl::XrslRequest request,
                                                   std::string subject,
                                                   std::string local_user,
                                                   std::string callback_address = "");

  /// The request pool (null when worker_threads == 0). Exposed for tests
  /// and benches to inspect queue/shed/utilization stats.
  ThreadPool* pool() { return pool_.get(); }

  /// Job-management passthrough (same contacts as the wire protocol).
  Result<gram::ManagedJobInfo> job_info(const std::string& contact) const;
  Status cancel(const std::string& contact);
  Result<gram::ManagedJobInfo> wait(const std::string& contact, Duration timeout) const;

  /// Resubmit every job the log shows as submitted-but-not-terminal.
  /// Returns the number of jobs recovered.
  Result<std::size_t> recover_from_log(const std::vector<logging::LogEvent>& events);

  /// Backwards compatibility (paper Sec. 6.6, "Advantages"): expose this
  /// service's providers as a GRIS so it plugs into the existing MDS.
  std::shared_ptr<mds::Gris> make_gris() const;

  std::shared_ptr<info::SystemMonitor> monitor() const { return monitor_; }

  /// The observability bundle (null when the config carried none). The
  /// soap gateway shares it so gateway requests join the same traces.
  const std::shared_ptr<obs::Telemetry>& telemetry() const { return config_.telemetry; }

 private:
  net::Message handle(const net::Message& request, net::Session& session);
  net::Message process(const net::Message& request, net::Session& session);
  net::Message dispatch(const net::Message& request, net::Session& session,
                        obs::TraceContext* trace);
  net::Message handle_xrsl(const net::Message& request, net::Session& session,
                           obs::TraceContext* trace);
  void wire_pool_metrics();
  /// The post-authorize serve branch of the zero-lock fast path; true
  /// when `result` was filled from a fresh snapshot. Statically proven
  /// lock-free/alloc-free (IG_STATIC_FAST_PATH, see tools/analyze).
  bool try_serve_snapshot(const rsl::XrslRequest& request, TimePoint now,
                          InfoGramResult& result);

  std::shared_ptr<info::SystemMonitor> monitor_;
  std::shared_ptr<exec::LocalJobExecution> backend_;  ///< for reflection
  security::Authenticator authenticator_;
  const security::AuthorizationPolicy* policy_;
  const Clock* clock_;
  std::shared_ptr<logging::Logger> logger_;
  InfoGramConfig config_;
  /// The job half reuses the GRAM machinery verbatim — the simplification
  /// is in the protocol and deployment, not in reinventing execution.
  gram::GramService gram_;
  net::Network* network_ = nullptr;
  /// Request-path metrics resolved once at construction (null without
  /// telemetry) — the per-request path must not pay registry lookups.
  obs::Counter* requests_total_ = nullptr;
  obs::Counter* requests_xrsl_ = nullptr;
  obs::Counter* requests_gram_ = nullptr;
  obs::Counter* requests_errors_ = nullptr;
  obs::Histogram* request_seconds_ = nullptr;
  obs::Counter* format_renders_ = nullptr;
  /// Queries answered by the zero-lock snapshot fast path (a subset of
  /// info.cache.hits, which the provider counts on every cache hit).
  obs::Counter* cache_fast_hits_ = nullptr;
  /// Per-request allocation profile (null unless telemetry + profiling).
  obs::Histogram* profile_request_allocs_ = nullptr;
  obs::Histogram* profile_request_alloc_bytes_ = nullptr;
  /// Declared last so in-flight tasks (which touch the members above) are
  /// drained before anything else destructs; ~InfoGramService() shuts it
  /// down explicitly as well.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace ig::core
