#include "security/gridmap.hpp"

#include "common/strings.hpp"

namespace ig::security {

void GridMap::add(const std::string& subject_dn, const std::string& local_user) {
  cell_.update([&](const std::shared_ptr<const Table>& current) {
    auto next = current != nullptr ? std::make_shared<Table>(*current)
                                   : std::make_shared<Table>();
    (*next)[subject_dn] = local_user;
    return next;
  });
}

void GridMap::remove(const std::string& subject_dn) {
  cell_.update([&](const std::shared_ptr<const Table>& current) {
    auto next = current != nullptr ? std::make_shared<Table>(*current)
                                   : std::make_shared<Table>();
    next->erase(subject_dn);
    return next;
  });
}

Result<std::string> GridMap::map(const std::string& subject_dn) const {
  auto table = cell_.read();
  if (table != nullptr) {
    auto it = table->find(subject_dn);
    if (it != table->end()) return it->second;
  }
  return Error(ErrorCode::kDenied, "no gridmap entry for " + subject_dn);
}

bool GridMap::contains(std::string_view subject_dn) const {
  auto table = cell_.read();
  return table != nullptr && table->find(subject_dn) != table->end();
}

std::size_t GridMap::size() const {
  auto table = cell_.read();
  return table == nullptr ? 0 : table->size();
}

Result<GridMap> GridMap::parse(const std::string& text) {
  GridMap map;
  int line_no = 0;
  for (const auto& raw : strings::split(text, '\n')) {
    ++line_no;
    auto line = strings::trim(raw);
    if (line.empty() || line.front() == '#') continue;
    if (line.front() != '"') {
      return Error(ErrorCode::kParseError,
                   strings::format("gridmap line %d: DN must be quoted", line_no));
    }
    std::size_t close = line.find('"', 1);
    if (close == std::string_view::npos) {
      return Error(ErrorCode::kParseError,
                   strings::format("gridmap line %d: unterminated DN quote", line_no));
    }
    std::string dn(line.substr(1, close - 1));
    auto account = strings::trim(line.substr(close + 1));
    if (dn.empty() || account.empty()) {
      return Error(ErrorCode::kParseError,
                   strings::format("gridmap line %d: missing DN or account", line_no));
    }
    map.add(dn, std::string(account));
  }
  return map;
}

std::string GridMap::serialize() const {
  auto table = cell_.read();
  std::string out;
  if (table == nullptr) return out;
  for (const auto& [dn, account] : *table) {
    out += "\"" + dn + "\" " + account + "\n";
  }
  return out;
}

}  // namespace ig::security
