#include "security/gridmap.hpp"

#include "common/strings.hpp"

namespace ig::security {

void GridMap::add(const std::string& subject_dn, const std::string& local_user) {
  MutexLock lock(mu_);
  entries_[subject_dn] = local_user;
}

void GridMap::remove(const std::string& subject_dn) {
  MutexLock lock(mu_);
  entries_.erase(subject_dn);
}

Result<std::string> GridMap::map(const std::string& subject_dn) const {
  MutexLock lock(mu_);
  auto it = entries_.find(subject_dn);
  if (it == entries_.end()) {
    return Error(ErrorCode::kDenied, "no gridmap entry for " + subject_dn);
  }
  return it->second;
}

bool GridMap::contains(const std::string& subject_dn) const {
  MutexLock lock(mu_);
  return entries_.count(subject_dn) > 0;
}

std::size_t GridMap::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

Result<GridMap> GridMap::parse(const std::string& text) {
  GridMap map;
  int line_no = 0;
  for (const auto& raw : strings::split(text, '\n')) {
    ++line_no;
    auto line = strings::trim(raw);
    if (line.empty() || line.front() == '#') continue;
    if (line.front() != '"') {
      return Error(ErrorCode::kParseError,
                   strings::format("gridmap line %d: DN must be quoted", line_no));
    }
    std::size_t close = line.find('"', 1);
    if (close == std::string_view::npos) {
      return Error(ErrorCode::kParseError,
                   strings::format("gridmap line %d: unterminated DN quote", line_no));
    }
    std::string dn(line.substr(1, close - 1));
    auto account = strings::trim(line.substr(close + 1));
    if (dn.empty() || account.empty()) {
      return Error(ErrorCode::kParseError,
                   strings::format("gridmap line %d: missing DN or account", line_no));
    }
    map.add(dn, std::string(account));
  }
  return map;
}

std::string GridMap::serialize() const {
  MutexLock lock(mu_);
  std::string out;
  for (const auto& [dn, account] : entries_) {
    out += "\"" + dn + "\" " + account + "\n";
  }
  return out;
}

}  // namespace ig::security
