// Toy RSA key pairs for the simulated Grid Security Infrastructure.
//
// The paper's services authenticate with GSI (X.509 + SSL). This repo
// substitutes a miniature RSA over 62-bit moduli: small enough to factor in
// seconds, so NOT cryptography — but it is a real trapdoor scheme, which
// means certificate chains are *publicly verifiable* exactly like GSI's:
// a verifier holding only the issuer's public key checks a signature the
// issuer made with its private key. That property is what the GRAM/MDS/
// InfoGram handshake logic exercises.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.hpp"

namespace ig::security {

/// RSA public key: modulus n and exponent e.
struct PublicKey {
  std::uint64_t n = 0;
  std::uint64_t e = 0;

  std::string to_string() const;
  static bool from_string(const std::string& s, PublicKey& out);
  friend bool operator==(const PublicKey&, const PublicKey&) = default;
};

/// Full key pair (public + private exponent).
struct KeyPair {
  PublicKey pub;
  std::uint64_t d = 0;  ///< private exponent

  /// Generate a fresh pair from two random ~31-bit primes.
  static KeyPair generate(Rng& rng);

  /// Sign a 64-bit digest: sig = (digest mod n)^d mod n.
  std::uint64_t sign(std::uint64_t digest) const;
};

/// Verify: sig^e mod n == digest mod n.
bool verify(const PublicKey& key, std::uint64_t digest, std::uint64_t signature);

/// Deterministic Miller-Rabin for 64-bit inputs (exposed for tests).
bool is_prime(std::uint64_t n);

}  // namespace ig::security
