#include "security/certificate.hpp"

#include "common/id.hpp"
#include "common/strings.hpp"

namespace ig::security {

std::string_view to_string(CertType type) {
  switch (type) {
    case CertType::kCa:
      return "ca";
    case CertType::kUser:
      return "user";
    case CertType::kHost:
      return "host";
    case CertType::kProxy:
      return "proxy";
  }
  return "unknown";
}

namespace {
Result<CertType> parse_cert_type(const std::string& s) {
  if (s == "ca") return CertType::kCa;
  if (s == "user") return CertType::kUser;
  if (s == "host") return CertType::kHost;
  if (s == "proxy") return CertType::kProxy;
  return Error(ErrorCode::kParseError, "unknown certificate type: " + s);
}
}  // namespace

std::uint64_t Certificate::digest() const {
  std::string canonical = subject + "|" + issuer + "|" + std::string(to_string(type)) + "|" +
                          public_key.to_string() + "|" + std::to_string(not_before.count()) +
                          "|" + std::to_string(not_after.count()) + "|" +
                          std::to_string(serial);
  return fnv1a(canonical);
}

std::string Certificate::serialize() const {
  std::string out;
  out += "subject=" + subject + "\n";
  out += "issuer=" + issuer + "\n";
  out += "type=" + std::string(to_string(type)) + "\n";
  out += "key=" + public_key.to_string() + "\n";
  out += "not_before=" + std::to_string(not_before.count()) + "\n";
  out += "not_after=" + std::to_string(not_after.count()) + "\n";
  out += "serial=" + std::to_string(serial) + "\n";
  out += "signature=" + std::to_string(signature) + "\n";
  return out;
}

Result<Certificate> Certificate::parse(const std::string& text) {
  Certificate cert;
  bool have_subject = false, have_key = false, have_sig = false;
  for (const auto& line : strings::split(text, '\n')) {
    if (strings::trim(line).empty()) continue;
    std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Error(ErrorCode::kParseError, "malformed certificate line: " + line);
    }
    std::string key = line.substr(0, eq);
    std::string value = line.substr(eq + 1);
    if (key == "subject") {
      cert.subject = value;
      have_subject = true;
    } else if (key == "issuer") {
      cert.issuer = value;
    } else if (key == "type") {
      auto t = parse_cert_type(value);
      if (!t.ok()) return t.error();
      cert.type = t.value();
    } else if (key == "key") {
      if (!PublicKey::from_string(value, cert.public_key)) {
        return Error(ErrorCode::kParseError, "malformed public key: " + value);
      }
      have_key = true;
    } else if (key == "not_before" || key == "not_after" || key == "serial" ||
               key == "signature") {
      auto v = strings::parse_int(value);
      if (!v) return Error(ErrorCode::kParseError, "malformed integer field: " + line);
      if (key == "not_before") {
        cert.not_before = TimePoint(*v);
      } else if (key == "not_after") {
        cert.not_after = TimePoint(*v);
      } else if (key == "serial") {
        cert.serial = static_cast<std::uint64_t>(*v);
      } else {
        cert.signature = static_cast<std::uint64_t>(*v);
        have_sig = true;
      }
    } else {
      return Error(ErrorCode::kParseError, "unknown certificate field: " + key);
    }
  }
  if (!have_subject || !have_key || !have_sig) {
    return Error(ErrorCode::kParseError, "certificate missing required fields");
  }
  return cert;
}

Credential::Credential(Certificate cert, KeyPair keys, std::vector<Certificate> intermediates)
    : keys_(keys) {
  chain_.push_back(std::move(cert));
  for (auto& c : intermediates) chain_.push_back(std::move(c));
}

const std::string& Credential::base_subject() const {
  for (const auto& cert : chain_) {
    if (cert.type != CertType::kProxy) return cert.subject;
  }
  return chain_.back().subject;
}

std::uint64_t Credential::sign(const std::string& payload) const {
  return keys_.sign(fnv1a(payload));
}

Result<Credential> Credential::delegate_proxy(Duration lifetime, const Clock& clock,
                                              Rng& rng) const {
  if (empty()) return Error(ErrorCode::kInvalidArgument, "cannot delegate from empty credential");
  const Certificate& signer = certificate();
  TimePoint now = clock.now();
  if (!signer.valid_at(now)) {
    return Error(ErrorCode::kDenied, "delegating certificate expired: " + signer.subject);
  }
  KeyPair proxy_keys = KeyPair::generate(rng);
  Certificate proxy;
  proxy.subject = signer.subject + "/CN=proxy";
  proxy.issuer = signer.subject;
  proxy.type = CertType::kProxy;
  proxy.public_key = proxy_keys.pub;
  proxy.not_before = now;
  proxy.not_after = std::min(now + lifetime, signer.not_after);
  proxy.serial = IdGenerator::next();
  proxy.signature = keys_.sign(proxy.digest());
  std::vector<Certificate> intermediates = chain_;
  return Credential(std::move(proxy), proxy_keys, std::move(intermediates));
}

CertificateAuthority::CertificateAuthority(std::string subject, Duration lifetime,
                                           const Clock& clock, std::uint64_t seed)
    : clock_(clock), rng_(seed) {
  KeyPair keys = KeyPair::generate(rng_);
  Certificate root;
  root.subject = std::move(subject);
  root.issuer = root.subject;  // self-signed
  root.type = CertType::kCa;
  root.public_key = keys.pub;
  root.not_before = clock_.now();
  root.not_after = clock_.now() + lifetime;
  root.serial = IdGenerator::next();
  root.signature = keys.sign(root.digest());
  root_ = Credential(std::move(root), keys);
}

Credential CertificateAuthority::issue(const std::string& subject, CertType type,
                                       Duration lifetime) {
  KeyPair keys = KeyPair::generate(rng_);
  Certificate cert;
  cert.subject = subject;
  cert.issuer = root_.certificate().subject;
  cert.type = type;
  cert.public_key = keys.pub;
  cert.not_before = clock_.now();
  cert.not_after = clock_.now() + lifetime;
  cert.serial = IdGenerator::next();
  cert.signature = root_.keys().sign(cert.digest());
  return Credential(std::move(cert), keys);
}

void TrustStore::add_root(const Certificate& root) { roots_.push_back(root); }

Result<std::string> TrustStore::verify_chain(const std::vector<Certificate>& chain,
                                             TimePoint now) const {
  if (chain.empty()) return Error(ErrorCode::kDenied, "empty certificate chain");
  constexpr std::size_t kMaxChain = 8;
  if (chain.size() > kMaxChain) {
    return Error(ErrorCode::kDenied, "certificate chain too long");
  }
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const Certificate& cert = chain[i];
    if (!cert.valid_at(now)) {
      return Error(ErrorCode::kDenied, "certificate expired or not yet valid: " + cert.subject);
    }
    if (cert.type == CertType::kProxy) {
      // A proxy must be followed by its delegator, whose subject it extends.
      if (i + 1 >= chain.size()) {
        return Error(ErrorCode::kDenied, "proxy certificate without delegator: " + cert.subject);
      }
      const Certificate& delegator = chain[i + 1];
      if (cert.issuer != delegator.subject ||
          !strings::starts_with(cert.subject, delegator.subject + "/CN=")) {
        return Error(ErrorCode::kDenied,
                     "proxy subject does not extend delegator: " + cert.subject);
      }
      if (!verify(delegator.public_key, cert.digest(), cert.signature)) {
        return Error(ErrorCode::kDenied, "bad proxy signature: " + cert.subject);
      }
      continue;
    }
    // Non-proxy: must be signed by a trusted root.
    bool verified = false;
    for (const Certificate& root : roots_) {
      if (root.subject == cert.issuer && root.valid_at(now) &&
          verify(root.public_key, cert.digest(), cert.signature)) {
        verified = true;
        break;
      }
    }
    if (!verified) {
      return Error(ErrorCode::kDenied, "untrusted issuer for " + cert.subject);
    }
    // Everything above this certificate in the chain was proxy material;
    // this certificate is the base identity.
    return cert.subject;
  }
  return Error(ErrorCode::kDenied, "chain contains only proxy certificates");
}

std::string TrustStore::serialize_chain(const std::vector<Certificate>& chain) {
  std::string out;
  for (const auto& cert : chain) {
    out += "-----BEGIN CERT-----\n";
    out += cert.serialize();
    out += "-----END CERT-----\n";
  }
  return out;
}

Result<std::vector<Certificate>> TrustStore::parse_chain(const std::string& text) {
  std::vector<Certificate> chain;
  std::size_t pos = 0;
  while (true) {
    std::size_t begin = text.find("-----BEGIN CERT-----\n", pos);
    if (begin == std::string::npos) break;
    begin += std::string("-----BEGIN CERT-----\n").size();
    std::size_t end = text.find("-----END CERT-----", begin);
    if (end == std::string::npos) {
      return Error(ErrorCode::kParseError, "unterminated certificate block");
    }
    auto cert = Certificate::parse(text.substr(begin, end - begin));
    if (!cert.ok()) return cert.error();
    chain.push_back(std::move(cert.value()));
    pos = end;
  }
  if (chain.empty()) return Error(ErrorCode::kParseError, "no certificates in chain text");
  return chain;
}

}  // namespace ig::security
