// GSI-style mutual authentication over the simulated network.
//
// Every Globus service connection begins with a security handshake; the
// paper's Fig. 2 vs Fig. 4 comparison counts these per protocol. The
// handshake here is a two-round-trip challenge/response:
//
//   1. AUTH_HELLO  client sends a nonce; server answers with its own
//                  certificate chain, a signature over the client nonce
//                  (proving its identity) and a server nonce.
//   2. AUTH_PROVE  client sends its chain plus a signature over the server
//                  nonce; server verifies the chain against its trust
//                  store, optionally maps the subject through the gridmap,
//                  and records the identity in the connection session.
//
// Services wrap their request handler in Authenticator::wrap(), which
// rejects any non-handshake request on an unauthenticated session.
#pragma once

#include <memory>

#include "common/clock.hpp"
#include "net/network.hpp"
#include "obs/telemetry.hpp"
#include "security/certificate.hpp"
#include "security/gridmap.hpp"

namespace ig::security {

/// Server-side handshake state machine + handler guard.
class Authenticator {
 public:
  /// `gridmap` may be null: info-only services authenticate but do not
  /// need a local account. All pointers must outlive the Authenticator.
  Authenticator(Credential credential, const TrustStore* trust, const GridMap* gridmap,
                const Clock* clock);

  /// Wrap `inner` so that AUTH_* verbs perform the handshake and all other
  /// verbs require an authenticated session.
  net::Handler wrap(net::Handler inner) const;

  /// Count handshake outcomes (auth.handshakes / auth.failures) and
  /// unauthenticated-request rejections (auth.rejected). Nullable.
  void set_telemetry(std::shared_ptr<obs::Telemetry> telemetry) {
    telemetry_ = std::move(telemetry);
  }

 private:
  void count(const char* name) const;

  net::Message handle_hello(const net::Message& req, net::Session& session) const;
  net::Message handle_prove(const net::Message& req, net::Session& session) const;

  Credential credential_;
  const TrustStore* trust_;
  const GridMap* gridmap_;
  const Clock* clock_;
  std::shared_ptr<obs::Telemetry> telemetry_;
};

/// Client-side handshake. On success the connection's session is
/// authenticated on the server side and the verified server subject is
/// returned (mutual authentication).
Result<std::string> authenticate(net::Connection& conn, const Credential& credential,
                                 const TrustStore& trust, const Clock& clock);

}  // namespace ig::security
