// Authorization contracts (paper Sec. 5.3).
//
// Beyond authentication, InfoGram's framework "strives to include
// authorization that allows us to specify contracts such as 'allow access
// to this resource from 3 to 4 pm to user X'". This engine evaluates an
// ordered list of rules: the first rule whose subject/resource/action
// patterns and time window all match decides; no match falls through to a
// configurable default.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/error.hpp"

namespace ig::security {

enum class Decision { kAllow, kDeny };

/// Recurring daily window [start, end) expressed as offsets from midnight.
/// The engine folds absolute time into a day via the configured day length,
/// so tests on a VirtualClock can use small "days".
struct TimeWindow {
  Duration start{0};
  Duration end{0};

  bool contains(Duration time_of_day) const { return time_of_day >= start && time_of_day < end; }
};

struct Rule {
  std::string subject_pattern = "*";   ///< glob over the DN
  std::string resource_pattern = "*";  ///< glob over the resource name
  std::string action_pattern = "*";    ///< glob over the action ("submit", "query", ...)
  std::optional<TimeWindow> window;    ///< absent = always
  Decision decision = Decision::kAllow;
};

class AuthorizationPolicy {
 public:
  explicit AuthorizationPolicy(Decision default_decision = Decision::kDeny,
                               Duration day_length = seconds(86400))
      : default_decision_(default_decision), day_length_(day_length) {}

  void add_rule(Rule rule) { rules_.push_back(std::move(rule)); }
  std::size_t rule_count() const { return rules_.size(); }

  /// First-match evaluation.
  Decision evaluate(const std::string& subject, const std::string& resource,
                    const std::string& action, TimePoint now) const;

  /// evaluate() folded into a Status for service call sites.
  Status authorize(const std::string& subject, const std::string& resource,
                   const std::string& action, TimePoint now) const;

  /// Parse a policy text, one rule per line:
  ///   allow|deny <subject-glob> <resource-glob> <action-glob> [<startSec>-<endSec>]
  /// e.g.  allow /O=Grid/CN=alice hot.mcs.anl.gov submit 54000-57600
  static Result<AuthorizationPolicy> parse(const std::string& text,
                                           Decision default_decision = Decision::kDeny);

 private:
  Decision default_decision_;
  Duration day_length_;
  std::vector<Rule> rules_;
};

}  // namespace ig::security
