#include "security/keys.hpp"

#include "common/strings.hpp"

namespace ig::security {

namespace {

std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  return static_cast<std::uint64_t>(static_cast<unsigned __int128>(a) * b % m);
}

std::uint64_t powmod(std::uint64_t base, std::uint64_t exp, std::uint64_t m) {
  std::uint64_t result = 1 % m;
  base %= m;
  while (exp > 0) {
    if (exp & 1) result = mulmod(result, base, m);
    base = mulmod(base, base, m);
    exp >>= 1;
  }
  return result;
}

// Extended Euclid: inverse of a mod m, or 0 if gcd != 1.
std::uint64_t invmod(std::uint64_t a, std::uint64_t m) {
  std::int64_t t = 0, newt = 1;
  std::int64_t r = static_cast<std::int64_t>(m), newr = static_cast<std::int64_t>(a);
  while (newr != 0) {
    std::int64_t q = r / newr;
    t -= q * newt;
    std::swap(t, newt);
    r -= q * newr;
    std::swap(r, newr);
  }
  if (r != 1) return 0;
  if (t < 0) t += static_cast<std::int64_t>(m);
  return static_cast<std::uint64_t>(t);
}

std::uint64_t random_prime(Rng& rng, std::uint64_t lo, std::uint64_t hi) {
  while (true) {
    std::uint64_t candidate =
        static_cast<std::uint64_t>(rng.uniform_int(static_cast<std::int64_t>(lo),
                                                   static_cast<std::int64_t>(hi))) |
        1ULL;
    if (is_prime(candidate)) return candidate;
  }
}

}  // namespace

bool is_prime(std::uint64_t n) {
  if (n < 2) return false;
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL}) {
    if (n % p == 0) return n == p;
  }
  std::uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  // Deterministic witness set for n < 3,317,044,064,679,887,385,961,981.
  for (std::uint64_t a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL,
                          29ULL, 31ULL, 37ULL}) {
    if (a % n == 0) continue;
    std::uint64_t x = powmod(a, d, n);
    if (x == 1 || x == n - 1) continue;
    bool composite = true;
    for (int i = 0; i < r - 1; ++i) {
      x = mulmod(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

std::string PublicKey::to_string() const {
  return std::to_string(n) + "/" + std::to_string(e);
}

bool PublicKey::from_string(const std::string& s, PublicKey& out) {
  auto parts = strings::split(s, '/');
  if (parts.size() != 2) return false;
  auto n = strings::parse_int(parts[0]);
  auto e = strings::parse_int(parts[1]);
  if (!n || !e || *n <= 0 || *e <= 0) return false;
  out.n = static_cast<std::uint64_t>(*n);
  out.e = static_cast<std::uint64_t>(*e);
  return true;
}

KeyPair KeyPair::generate(Rng& rng) {
  constexpr std::uint64_t kE = 65537;
  while (true) {
    std::uint64_t p = random_prime(rng, 1ULL << 30, (1ULL << 31) - 1);
    std::uint64_t q = random_prime(rng, 1ULL << 30, (1ULL << 31) - 1);
    if (p == q) continue;
    std::uint64_t phi = (p - 1) * (q - 1);
    std::uint64_t d = invmod(kE, phi);
    if (d == 0) continue;  // e not coprime with phi; retry
    KeyPair pair;
    pair.pub.n = p * q;
    pair.pub.e = kE;
    pair.d = d;
    return pair;
  }
}

std::uint64_t KeyPair::sign(std::uint64_t digest) const {
  return powmod(digest % pub.n, d, pub.n);
}

bool verify(const PublicKey& key, std::uint64_t digest, std::uint64_t signature) {
  if (key.n == 0) return false;
  return powmod(signature, key.e, key.n) == digest % key.n;
}

}  // namespace ig::security
