// Gridmap: the GSI mechanism mapping global Grid identities (certificate
// distinguished names) to local account names. GRAM's gatekeeper consults
// it after authentication; a missing entry means the authenticated user
// has no account on the resource and the request is denied.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "common/error.hpp"
#include "common/sync.hpp"

namespace ig::security {

class GridMap {
 public:
  GridMap() = default;
  // Movable despite the internal mutex (locks the source; moves are only
  // safe when no other thread still uses `other`, as with any move).
  GridMap(GridMap&& other) noexcept {
    MutexLock lock(other.mu_);
    entries_ = std::move(other.entries_);
  }
  // Address-ordered two-lock acquisition; the conditional aliasing is
  // beyond the capability analysis, hence the (budgeted) escape hatch.
  GridMap& operator=(GridMap&& other) noexcept IG_NO_THREAD_SAFETY_ANALYSIS {
    if (this != &other) {
      Mutex& first = this < &other ? mu_ : other.mu_;
      Mutex& second = this < &other ? other.mu_ : mu_;
      MutexLock lock_first(first);
      MutexLock lock_second(second);
      entries_ = std::move(other.entries_);
    }
    return *this;
  }

  /// Register or replace a mapping.
  void add(const std::string& subject_dn, const std::string& local_user);
  void remove(const std::string& subject_dn);

  /// Local account for a DN, or kDenied.
  Result<std::string> map(const std::string& subject_dn) const;

  bool contains(const std::string& subject_dn) const;
  std::size_t size() const;

  /// Parse the classic gridmap file format, one mapping per line:
  ///   "/O=Grid/CN=alice" alice
  /// Quotes around the DN are required (DNs contain spaces); lines starting
  /// with '#' and blank lines are ignored.
  static Result<GridMap> parse(const std::string& text);
  std::string serialize() const;

 private:
  mutable Mutex mu_{lock_rank::kGridmap, "security.GridMap"};
  std::map<std::string, std::string> entries_ IG_GUARDED_BY(mu_);
};

}  // namespace ig::security
