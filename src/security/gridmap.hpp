// Gridmap: the GSI mechanism mapping global Grid identities (certificate
// distinguished names) to local account names. GRAM's gatekeeper consults
// it after authentication; a missing entry means the authenticated user
// has no account on the resource and the request is denied.
//
// Lookups sit on the authorization step of every query, so the table is
// published as an immutable snapshot (ig::SnapshotCell): map()/contains()
// take one acquire-load and never touch a mutex, which keeps the cache-hit
// query path lock-free end to end. Mutations rebuild the table off-lock
// and publish a new generation; the cell's internal writer mutex (rank
// kGridmap) serializes concurrent add()/remove() calls.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/error.hpp"
#include "common/sync.hpp"

namespace ig::security {

class GridMap {
 public:
  GridMap() = default;
  // Movable: snapshot publication makes moves plain pointer swaps — the
  // source is drained (left empty) and no lock ordering is involved, so
  // the old address-ordered two-lock dance (and its thread-safety-analysis
  // escape hatch) is gone. As with any move, `other` must be quiescent.
  GridMap(GridMap&& other) noexcept { cell_.publish(other.cell_.exchange(nullptr)); }
  GridMap& operator=(GridMap&& other) noexcept {
    if (this != &other) cell_.publish(other.cell_.exchange(nullptr));
    return *this;
  }

  /// Register or replace a mapping.
  void add(const std::string& subject_dn, const std::string& local_user);
  void remove(const std::string& subject_dn);

  /// Local account for a DN, or kDenied.
  Result<std::string> map(const std::string& subject_dn) const;

  /// Allocation-free authorization probe: true iff the DN has an entry.
  /// Heterogeneous lookup against the published snapshot — no temporary
  /// string, no lock; this is what the query fast path calls.
  bool contains(std::string_view subject_dn) const;
  std::size_t size() const;

  /// Parse the classic gridmap file format, one mapping per line:
  ///   "/O=Grid/CN=alice" alice
  /// Quotes around the DN are required (DNs contain spaces); lines starting
  /// with '#' and blank lines are ignored.
  static Result<GridMap> parse(const std::string& text);
  std::string serialize() const;

 private:
  using Table = std::map<std::string, std::string, std::less<>>;

  SnapshotCell<Table> cell_{"security.GridMap", lock_rank::kGridmap};
};

}  // namespace ig::security
