#include "security/authorization.hpp"

#include "common/strings.hpp"

namespace ig::security {

Decision AuthorizationPolicy::evaluate(const std::string& subject, const std::string& resource,
                                       const std::string& action, TimePoint now) const {
  Duration time_of_day{now.count() % day_length_.count()};
  for (const Rule& rule : rules_) {
    if (!strings::glob_match(rule.subject_pattern, subject)) continue;
    if (!strings::glob_match(rule.resource_pattern, resource)) continue;
    if (!strings::glob_match(rule.action_pattern, action)) continue;
    if (rule.window && !rule.window->contains(time_of_day)) continue;
    return rule.decision;
  }
  return default_decision_;
}

Status AuthorizationPolicy::authorize(const std::string& subject, const std::string& resource,
                                      const std::string& action, TimePoint now) const {
  if (evaluate(subject, resource, action, now) == Decision::kAllow) {
    return Status::success();
  }
  return Error(ErrorCode::kDenied,
               "policy denies " + action + " on " + resource + " to " + subject);
}

Result<AuthorizationPolicy> AuthorizationPolicy::parse(const std::string& text,
                                                       Decision default_decision) {
  AuthorizationPolicy policy(default_decision);
  int line_no = 0;
  for (const auto& raw : strings::split(text, '\n')) {
    ++line_no;
    auto line = strings::trim(raw);
    if (line.empty() || line.front() == '#') continue;
    auto fields = strings::split_fields(line, ' ');
    if (fields.size() != 4 && fields.size() != 5) {
      return Error(ErrorCode::kParseError,
                   strings::format("policy line %d: expected 4 or 5 fields", line_no));
    }
    Rule rule;
    if (fields[0] == "allow") {
      rule.decision = Decision::kAllow;
    } else if (fields[0] == "deny") {
      rule.decision = Decision::kDeny;
    } else {
      return Error(ErrorCode::kParseError,
                   strings::format("policy line %d: verb must be allow or deny", line_no));
    }
    rule.subject_pattern = fields[1];
    rule.resource_pattern = fields[2];
    rule.action_pattern = fields[3];
    if (fields.size() == 5) {
      auto range = strings::split(fields[4], '-');
      if (range.size() != 2) {
        return Error(ErrorCode::kParseError,
                     strings::format("policy line %d: window must be start-end", line_no));
      }
      auto lo = strings::parse_int(range[0]);
      auto hi = strings::parse_int(range[1]);
      if (!lo || !hi || *lo < 0 || *hi < *lo) {
        return Error(ErrorCode::kParseError,
                     strings::format("policy line %d: malformed window", line_no));
      }
      rule.window = TimeWindow{seconds(*lo), seconds(*hi)};
    }
    policy.add_rule(std::move(rule));
  }
  return policy;
}

}  // namespace ig::security
