// Certificates, credentials and the certificate authority of the simulated
// Grid Security Infrastructure.
//
// Identities are X.509-style distinguished names ("/O=Grid/OU=ANL/CN=alice").
// A CertificateAuthority issues user and host certificates; users delegate
// short-lived *proxy* certificates (GSI's single-sign-on mechanism), whose
// subject extends the delegator's subject with "/CN=proxy". A TrustStore
// verifies full chains: signatures, validity windows and proxy rules.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "security/keys.hpp"

namespace ig::security {

enum class CertType { kCa, kUser, kHost, kProxy };

std::string_view to_string(CertType type);

struct Certificate {
  std::string subject;  ///< DN, e.g. "/O=Grid/CN=alice"
  std::string issuer;   ///< DN of the signer
  CertType type = CertType::kUser;
  PublicKey public_key;
  TimePoint not_before{0};
  TimePoint not_after{0};
  std::uint64_t serial = 0;
  std::uint64_t signature = 0;  ///< issuer's signature over digest()

  /// Digest of all signed fields.
  std::uint64_t digest() const;

  bool valid_at(TimePoint now) const { return now >= not_before && now <= not_after; }

  /// Line-oriented text form used on the wire.
  std::string serialize() const;
  static Result<Certificate> parse(const std::string& text);

  friend bool operator==(const Certificate&, const Certificate&) = default;
};

/// A certificate plus its private key and the chain up to (but excluding)
/// a trusted root: chain_[0] is this certificate, followed by intermediate
/// certificates (e.g. the user certificate below a proxy).
class Credential {
 public:
  Credential() = default;
  Credential(Certificate cert, KeyPair keys, std::vector<Certificate> intermediates = {});

  const Certificate& certificate() const { return chain_.front(); }
  const std::vector<Certificate>& chain() const { return chain_; }
  const KeyPair& keys() const { return keys_; }

  /// The base (non-proxy) identity this credential speaks for.
  const std::string& base_subject() const;

  /// Sign an arbitrary payload with this credential's private key.
  std::uint64_t sign(const std::string& payload) const;

  /// Issue a proxy certificate for this credential (GSI delegation).
  /// The proxy's lifetime is clipped to the delegating cert's lifetime.
  Result<Credential> delegate_proxy(Duration lifetime, const Clock& clock, Rng& rng) const;

  bool empty() const { return chain_.empty(); }

 private:
  std::vector<Certificate> chain_;
  KeyPair keys_;
};

/// Issues certificates, GSI CA style.
class CertificateAuthority {
 public:
  /// Create a self-signed root with the given DN.
  CertificateAuthority(std::string subject, Duration lifetime, const Clock& clock,
                       std::uint64_t seed);

  const Certificate& root_certificate() const { return root_.certificate(); }

  /// Issue a user or host certificate for `subject`.
  Credential issue(const std::string& subject, CertType type, Duration lifetime);

 private:
  const Clock& clock_;
  Rng rng_;
  Credential root_;
};

/// Trusted roots + chain verification.
class TrustStore {
 public:
  void add_root(const Certificate& root);

  /// Verify a chain (leaf first). On success returns the *base subject* —
  /// the identity of the first non-proxy certificate, which is what the
  /// gridmap maps to a local account.
  Result<std::string> verify_chain(const std::vector<Certificate>& chain, TimePoint now) const;

  /// Serialize/parse a whole chain for the wire.
  static std::string serialize_chain(const std::vector<Certificate>& chain);
  static Result<std::vector<Certificate>> parse_chain(const std::string& text);

 private:
  std::vector<Certificate> roots_;
};

}  // namespace ig::security
