#include "security/handshake.hpp"

#include "common/id.hpp"
#include "common/strings.hpp"

namespace ig::security {

namespace {
/// Fresh unpredictable-enough nonce for the simulation.
std::string make_nonce() { return to_hex(fnv1a(std::to_string(IdGenerator::next()), 0x1234)); }
}  // namespace

Authenticator::Authenticator(Credential credential, const TrustStore* trust,
                             const GridMap* gridmap, const Clock* clock)
    : credential_(std::move(credential)), trust_(trust), gridmap_(gridmap), clock_(clock) {}

void Authenticator::count(const char* name) const {
  if (telemetry_ != nullptr) telemetry_->metrics().counter(name).add();
}

net::Handler Authenticator::wrap(net::Handler inner) const {
  // The returned handler copies `this` members by pointer; the
  // Authenticator must outlive the endpoint registration.
  return [this, inner = std::move(inner)](const net::Message& req,
                                          net::Session& session) -> net::Message {
    if (req.verb == "AUTH_HELLO") return handle_hello(req, session);
    if (req.verb == "AUTH_PROVE") {
      net::Message resp = handle_prove(req, session);
      count(resp.is_error() ? obs::metric::kAuthFailures : obs::metric::kAuthHandshakes);
      return resp;
    }
    if (!session.authenticated_subject()) {
      count(obs::metric::kAuthRejected);
      return net::Message::error(
          Error(ErrorCode::kDenied, "request on unauthenticated connection"));
    }
    return inner(req, session);
  };
}

net::Message Authenticator::handle_hello(const net::Message& req,
                                         net::Session& session) const {
  auto client_nonce = req.header("nonce");
  if (!client_nonce) {
    return net::Message::error(Error(ErrorCode::kParseError, "AUTH_HELLO missing nonce"));
  }
  std::string server_nonce = make_nonce();
  session.set("auth.server_nonce", server_nonce);
  net::Message resp = net::Message::ok(TrustStore::serialize_chain(credential_.chain()));
  resp.with("nonce", server_nonce);
  resp.with("proof", std::to_string(credential_.sign(*client_nonce)));
  return resp;
}

net::Message Authenticator::handle_prove(const net::Message& req,
                                         net::Session& session) const {
  auto server_nonce = session.get("auth.server_nonce");
  if (!server_nonce) {
    return net::Message::error(
        Error(ErrorCode::kDenied, "AUTH_PROVE before AUTH_HELLO on this connection"));
  }
  auto proof = req.header("proof");
  if (!proof) {
    return net::Message::error(Error(ErrorCode::kParseError, "AUTH_PROVE missing proof"));
  }
  auto chain = TrustStore::parse_chain(req.body);
  if (!chain.ok()) return net::Message::error(chain.error());
  auto subject = trust_->verify_chain(chain.value(), clock_->now());
  if (!subject.ok()) return net::Message::error(subject.error());
  // The proof must verify against the *leaf* key (the proxy, if delegated).
  std::uint64_t sig = 0;
  if (auto v = ig::strings::parse_int(*proof); v && *v >= 0) {
    sig = static_cast<std::uint64_t>(*v);
  }
  if (!verify(chain.value().front().public_key, fnv1a(*server_nonce), sig)) {
    return net::Message::error(Error(ErrorCode::kDenied, "bad handshake proof"));
  }
  session.set("auth.subject", subject.value());
  if (gridmap_ != nullptr) {
    auto local = gridmap_->map(subject.value());
    if (!local.ok()) return net::Message::error(local.error());
    session.set("auth.local_user", local.value());
  }
  net::Message resp = net::Message::ok();
  resp.with("subject", subject.value());
  return resp;
}

Result<std::string> authenticate(net::Connection& conn, const Credential& credential,
                                 const TrustStore& trust, const Clock& clock) {
  if (credential.empty()) {
    return Error(ErrorCode::kInvalidArgument, "authenticate: empty credential");
  }
  std::string client_nonce = make_nonce();
  net::Message hello("AUTH_HELLO");
  hello.with("nonce", client_nonce);
  auto hello_resp = conn.request(hello);
  if (!hello_resp.ok()) return hello_resp.error();
  if (hello_resp->is_error()) return net::Message::to_error(*hello_resp);

  // Mutual authentication: verify the server's chain and its proof over
  // our nonce before revealing anything about ourselves.
  auto server_chain = TrustStore::parse_chain(hello_resp->body);
  if (!server_chain.ok()) return server_chain.error();
  auto server_subject = trust.verify_chain(server_chain.value(), clock.now());
  if (!server_subject.ok()) return server_subject.error();
  std::uint64_t server_sig = 0;
  if (auto v = ig::strings::parse_int(hello_resp->header_or("proof", "")); v && *v >= 0) {
    server_sig = static_cast<std::uint64_t>(*v);
  }
  if (!verify(server_chain.value().front().public_key, fnv1a(client_nonce), server_sig)) {
    return Error(ErrorCode::kDenied, "server failed mutual authentication");
  }
  auto server_nonce = hello_resp->header("nonce");
  if (!server_nonce) return Error(ErrorCode::kParseError, "AUTH_HELLO response missing nonce");

  net::Message prove("AUTH_PROVE", TrustStore::serialize_chain(credential.chain()));
  prove.with("proof", std::to_string(credential.sign(*server_nonce)));
  auto prove_resp = conn.request(prove);
  if (!prove_resp.ok()) return prove_resp.error();
  if (prove_resp->is_error()) return net::Message::to_error(*prove_resp);
  return server_subject.value();
}

}  // namespace ig::security
