// Service reflection (paper Sec. 6.5).
//
// "Each information service can be queried and a client may inspect the
// schema that is returned" — an (info=schema) query returns a hierarchical
// document listing every configured keyword, the command behind it, its
// TTL, and the properties of the attributes it produces. Clients use this
// to adapt to whatever information model a site configured.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/error.hpp"

namespace ig::format {

struct AttributeSchema {
  std::string name;         ///< namespaced attribute name
  std::string type;         ///< "string", "integer", "float", ...
  std::string description;  ///< free text

  friend bool operator==(const AttributeSchema&, const AttributeSchema&) = default;
};

struct KeywordSchema {
  std::string keyword;
  std::string command;  ///< executable path + args behind the keyword
  Duration ttl{0};
  std::vector<AttributeSchema> attributes;

  friend bool operator==(const KeywordSchema&, const KeywordSchema&) = default;
};

/// Capabilities of the execution half of the service (paper Sec. 6.5:
/// clients introspect "the capabilities of an execution and information
/// service").
struct ExecutionSchema {
  std::string backend;  ///< scheduler family ("fork", "batch", ...)
  bool jar_supported = false;
  int max_restarts = 0;
  std::vector<std::string> queues;  ///< batch queues, if any

  friend bool operator==(const ExecutionSchema&, const ExecutionSchema&) = default;
};

struct ServiceSchema {
  std::string service;  ///< endpoint the schema describes
  std::optional<ExecutionSchema> execution;
  std::vector<KeywordSchema> keywords;

  const KeywordSchema* find(std::string_view keyword) const;

  /// XML rendering (the schema document is hierarchical; LDIF's flat
  /// entries fit it poorly, so reflection always returns XML).
  std::string to_xml() const;
  static Result<ServiceSchema> parse_xml(const std::string& text);

  friend bool operator==(const ServiceSchema&, const ServiceSchema&) = default;
};

}  // namespace ig::format
