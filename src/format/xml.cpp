#include "format/xml.hpp"

#include <cctype>

#include "common/strings.hpp"

namespace ig::format {

std::string xml_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string to_xml(const InfoRecord& record, const XmlOptions& options) {
  std::string out;
  out += options.indent + "<record keyword=\"" + xml_escape(record.keyword) +
         "\" generated=\"" + std::to_string(record.generated_at.count()) + "\" ttl=\"" +
         std::to_string(record.ttl.count()) + "\">\n";
  for (const Attribute& attr : record.attributes) {
    out += options.indent + options.indent + "<attribute name=\"" + xml_escape(attr.name) +
           "\"";
    if (options.include_quality) {
      out += " quality=\"" + strings::format("%.2f", attr.quality) + "\"";
    }
    out += ">" + xml_escape(attr.value) + "</attribute>\n";
  }
  out += options.indent + "</record>\n";
  return out;
}

std::string to_xml(const std::vector<InfoRecord>& records, const XmlOptions& options) {
  std::string out = "<infogram>\n";
  for (const InfoRecord& record : records) out += to_xml(record, options);
  out += "</infogram>\n";
  return out;
}

namespace {

class XmlParser {
 public:
  explicit XmlParser(std::string_view text) : text_(text) {}

  Result<XmlElement> parse_document() {
    skip_ws();
    if (lookahead("<?")) {  // XML declaration
      std::size_t end = text_.find("?>", pos_);
      if (end == std::string_view::npos) return fail("unterminated XML declaration");
      pos_ = end + 2;
      skip_ws();
    }
    auto root = parse_element();
    if (!root.ok()) return root;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing content after root element");
    return root;
  }

 private:
  Result<XmlElement> parse_element() {
    if (!lookahead("<")) return fail("expected '<'");
    ++pos_;
    XmlElement element;
    element.name = read_name();
    if (element.name.empty()) return fail("expected element name");
    // Attributes.
    while (true) {
      skip_ws();
      if (lookahead("/>")) {
        pos_ += 2;
        return element;
      }
      if (lookahead(">")) {
        ++pos_;
        break;
      }
      std::string attr = read_name();
      if (attr.empty()) return fail("expected attribute name");
      skip_ws();
      if (!lookahead("=")) return fail("expected '=' after attribute name");
      ++pos_;
      skip_ws();
      if (pos_ >= text_.size() || (text_[pos_] != '"' && text_[pos_] != '\'')) {
        return fail("expected quoted attribute value");
      }
      char quote = text_[pos_++];
      std::size_t end = text_.find(quote, pos_);
      if (end == std::string_view::npos) return fail("unterminated attribute value");
      auto value = unescape(text_.substr(pos_, end - pos_));
      if (!value.ok()) return value.error();
      element.attributes[attr] = std::move(value.value());
      pos_ = end + 1;
    }
    // Content.
    while (true) {
      if (pos_ >= text_.size()) return fail("unterminated element: " + element.name);
      if (lookahead("</")) {
        pos_ += 2;
        std::string closing = read_name();
        skip_ws();
        if (!lookahead(">")) return fail("malformed closing tag");
        ++pos_;
        if (closing != element.name) {
          return fail("mismatched closing tag: expected " + element.name + ", got " + closing);
        }
        return element;
      }
      if (lookahead("<")) {
        auto child = parse_element();
        if (!child.ok()) return child;
        element.children.push_back(std::move(child.value()));
      } else {
        std::size_t next = text_.find('<', pos_);
        if (next == std::string_view::npos) return fail("unterminated character data");
        auto chunk = unescape(text_.substr(pos_, next - pos_));
        if (!chunk.ok()) return chunk.error();
        element.text += chunk.value();
        pos_ = next;
      }
    }
  }

  std::string read_name() {
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' || c == ':' ||
          c == '.') {
        out += c;
        ++pos_;
      } else {
        break;
      }
    }
    return out;
  }

  Result<std::string> unescape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    std::size_t i = 0;
    while (i < s.size()) {
      if (s[i] != '&') {
        out += s[i++];
        continue;
      }
      std::size_t semi = s.find(';', i);
      if (semi == std::string_view::npos) {
        return Result<std::string>(Error(ErrorCode::kParseError, "unterminated XML entity"));
      }
      std::string_view entity = s.substr(i + 1, semi - i - 1);
      if (entity == "amp") {
        out += '&';
      } else if (entity == "lt") {
        out += '<';
      } else if (entity == "gt") {
        out += '>';
      } else if (entity == "quot") {
        out += '"';
      } else if (entity == "apos") {
        out += '\'';
      } else {
        return Result<std::string>(
            Error(ErrorCode::kParseError, "unknown XML entity: " + std::string(entity)));
      }
      i = semi + 1;
    }
    return out;
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }
  bool lookahead(std::string_view s) const {
    return text_.substr(pos_, s.size()) == s;
  }
  Error fail(std::string what) const {
    return Error(ErrorCode::kParseError, what + " at offset " + std::to_string(pos_));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const XmlElement* XmlElement::child(std::string_view name) const {
  for (const XmlElement& c : children) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

std::vector<const XmlElement*> XmlElement::children_named(std::string_view name) const {
  std::vector<const XmlElement*> out;
  for (const XmlElement& c : children) {
    if (c.name == name) out.push_back(&c);
  }
  return out;
}

std::string XmlElement::attribute_or(const std::string& key, std::string fallback) const {
  auto it = attributes.find(key);
  return it == attributes.end() ? std::move(fallback) : it->second;
}

Result<XmlElement> parse_xml_element(std::string_view text) {
  return XmlParser(text).parse_document();
}

Result<std::vector<InfoRecord>> parse_xml(const std::string& text) {
  auto root = parse_xml_element(text);
  if (!root.ok()) return root.error();
  if (root->name != "infogram") {
    return Error(ErrorCode::kParseError, "expected <infogram> root, got <" + root->name + ">");
  }
  std::vector<InfoRecord> records;
  for (const XmlElement* rec : root->children_named("record")) {
    InfoRecord record;
    record.keyword = rec->attribute_or("keyword", "");
    if (auto g = strings::parse_int(rec->attribute_or("generated", "0"))) {
      record.generated_at = TimePoint(*g);
    }
    if (auto t = strings::parse_int(rec->attribute_or("ttl", "0"))) {
      record.ttl = Duration(*t);
    }
    for (const XmlElement* attr : rec->children_named("attribute")) {
      Attribute a;
      a.name = attr->attribute_or("name", "");
      a.value = attr->text;
      a.timestamp = record.generated_at;
      if (auto q = strings::parse_double(attr->attribute_or("quality", "100"))) {
        a.quality = *q;
      }
      record.attributes.push_back(std::move(a));
    }
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace ig::format
