#include "format/dsml.hpp"

#include "common/strings.hpp"
#include "format/xml.hpp"

namespace ig::format {

namespace {

void emit_attr(std::string& out, const std::string& name, const std::string& value) {
  out += "      <dsml:attr name=\"" + xml_escape(name) + "\"><dsml:value>" +
         xml_escape(value) + "</dsml:value></dsml:attr>\n";
}

void emit_entry(std::string& out, const InfoRecord& record, const DsmlOptions& options) {
  std::string dn = "kw=" + record.keyword;
  if (!options.suffix.empty()) dn += ", " + options.suffix;
  out += "    <dsml:entry dn=\"" + xml_escape(dn) + "\">\n";
  emit_attr(out, "objectclass", "InfoGramRecord");
  emit_attr(out, "kw", record.keyword);
  emit_attr(out, "generated", std::to_string(record.generated_at.count()));
  emit_attr(out, "ttl", std::to_string(record.ttl.count()));
  for (const Attribute& attr : record.attributes) {
    emit_attr(out, attr.name, attr.value);
    if (options.include_quality) {
      emit_attr(out, attr.name + ";quality", strings::format("%.2f", attr.quality));
    }
  }
  out += "    </dsml:entry>\n";
}

}  // namespace

std::string to_dsml(const std::vector<InfoRecord>& records, const DsmlOptions& options) {
  std::string out =
      "<dsml:dsml xmlns:dsml=\"http://www.dsml.org/DSML\">\n"
      "  <dsml:directory-entries>\n";
  for (const InfoRecord& record : records) emit_entry(out, record, options);
  out += "  </dsml:directory-entries>\n</dsml:dsml>\n";
  return out;
}

std::string to_dsml(const InfoRecord& record, const DsmlOptions& options) {
  return to_dsml(std::vector<InfoRecord>{record}, options);
}

Result<std::vector<InfoRecord>> parse_dsml(const std::string& text) {
  auto root = parse_xml_element(text);
  if (!root.ok()) return root.error();
  if (root->name != "dsml:dsml") {
    return Error(ErrorCode::kParseError, "expected <dsml:dsml> root, got <" + root->name + ">");
  }
  const XmlElement* entries = root->child("dsml:directory-entries");
  if (entries == nullptr) {
    return Error(ErrorCode::kParseError, "DSML document has no directory-entries");
  }
  std::vector<InfoRecord> records;
  for (const XmlElement* entry : entries->children_named("dsml:entry")) {
    InfoRecord record;
    for (const XmlElement* attr : entry->children_named("dsml:attr")) {
      std::string name = attr->attribute_or("name", "");
      const XmlElement* value_el = attr->child("dsml:value");
      std::string value = value_el != nullptr ? value_el->text : "";
      if (name == "objectclass") continue;
      if (name == "kw") {
        record.keyword = value;
      } else if (name == "generated") {
        if (auto v = strings::parse_int(value)) record.generated_at = TimePoint(*v);
      } else if (name == "ttl") {
        if (auto v = strings::parse_int(value)) record.ttl = Duration(*v);
      } else if (strings::ends_with(name, ";quality")) {
        std::string base = name.substr(0, name.size() - std::string(";quality").size());
        for (auto it = record.attributes.rbegin(); it != record.attributes.rend(); ++it) {
          if (it->name == base) {
            if (auto q = strings::parse_double(value)) it->quality = *q;
            break;
          }
        }
      } else {
        Attribute a;
        a.name = name;
        a.value = value;
        a.timestamp = record.generated_at;
        record.attributes.push_back(std::move(a));
      }
    }
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace ig::format
