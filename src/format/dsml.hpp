// DSML (Directory Services Markup Language) v1-style rendering (paper
// Sec. 6.6: "it is straightforward to support other formats such as
// DSML"). DSML expresses LDAP directory content in XML:
//
//   <dsml:dsml>
//     <dsml:directory-entries>
//       <dsml:entry dn="kw=Memory, o=Grid">
//         <dsml:attr name="Memory:total"><dsml:value>512</dsml:value></dsml:attr>
//       </dsml:entry>
//     </dsml:directory-entries>
//   </dsml:dsml>
//
// InfoGram records render as their GRIS directory-entry view, so DSML
// output is byte-compatible with what an MDS exporter would produce.
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"
#include "format/record.hpp"

namespace ig::format {

struct DsmlOptions {
  bool include_quality = true;
  std::string suffix = "o=Grid";
};

std::string to_dsml(const std::vector<InfoRecord>& records, const DsmlOptions& options = {});
std::string to_dsml(const InfoRecord& record, const DsmlOptions& options = {});

/// Parse to_dsml() output back into records.
Result<std::vector<InfoRecord>> parse_dsml(const std::string& text);

}  // namespace ig::format
