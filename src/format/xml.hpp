// XML rendering of information records, plus a minimal pull parser.
//
// The paper argues XML schemas are "a viable alternative to the currently
// used LDAP schemas" and supports (format=xml) in xRSL. The writer emits:
//
//   <infogram>
//     <record keyword="Memory" generated="..." ttl="...">
//       <attribute name="Memory:total" quality="100.00">512MB</attribute>
//     </record>
//   </infogram>
//
// The pull parser handles the subset of XML this codebase produces (tags,
// attributes, character data, the five predefined entities) and exists so
// clients and tests can round-trip responses without a third-party library.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "format/record.hpp"

namespace ig::format {

struct XmlOptions {
  bool include_quality = true;
  std::string indent = "  ";
};

std::string to_xml(const std::vector<InfoRecord>& records, const XmlOptions& options = {});
std::string to_xml(const InfoRecord& record, const XmlOptions& options = {});

/// Parse to_xml() output back into records.
Result<std::vector<InfoRecord>> parse_xml(const std::string& text);

/// Escape &, <, >, ", ' for element/attribute content.
std::string xml_escape(std::string_view text);

/// A parsed XML element (subset: no namespaces, comments, PIs or CDATA).
struct XmlElement {
  std::string name;
  std::map<std::string, std::string> attributes;
  std::string text;  ///< concatenated character data directly inside
  std::vector<XmlElement> children;

  const XmlElement* child(std::string_view name) const;
  std::vector<const XmlElement*> children_named(std::string_view name) const;
  std::string attribute_or(const std::string& key, std::string fallback) const;
};

/// Parse a single-rooted document.
Result<XmlElement> parse_xml_element(std::string_view text);

}  // namespace ig::format
