// Information record model.
//
// A *key information provider* (paper Sec. 6.3) produces, per keyword, a
// set of attributes namespaced by the keyword — the attribute `total` of
// the `Memory` provider is `Memory:total`. Each attribute carries a
// quality-of-information value (paper Sec. 5.2/6.4) and a timestamp, so
// degradation can be assessed per attribute.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"

namespace ig::format {

struct Attribute {
  std::string name;   ///< namespaced, e.g. "Memory:total"
  std::string value;
  double quality = 100.0;  ///< percent; 100 = fresh/accurate
  TimePoint timestamp{0};

  friend bool operator==(const Attribute&, const Attribute&) = default;
};

/// Everything one keyword's command produced, plus cache metadata.
struct InfoRecord {
  std::string keyword;
  TimePoint generated_at{0};
  Duration ttl{0};
  std::vector<Attribute> attributes;

  /// Append an attribute, namespacing bare names with the keyword.
  void add(std::string name, std::string value, double quality = 100.0);

  const Attribute* find(std::string_view name) const;

  /// Keep only attributes whose name matches at least one glob;
  /// an empty filter list keeps everything.
  InfoRecord filtered(const std::vector<std::string>& globs) const;

  /// Lowest attribute quality in the record (100 if empty).
  double min_quality() const;

  friend bool operator==(const InfoRecord&, const InfoRecord&) = default;
};

}  // namespace ig::format
