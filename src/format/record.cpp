#include "format/record.hpp"

#include "common/strings.hpp"

namespace ig::format {

void InfoRecord::add(std::string name, std::string value, double quality) {
  Attribute attr;
  if (name.find(':') == std::string::npos && !keyword.empty()) {
    attr.name = keyword + ":" + name;
  } else {
    attr.name = std::move(name);
  }
  attr.value = std::move(value);
  attr.quality = quality;
  attr.timestamp = generated_at;
  attributes.push_back(std::move(attr));
}

const Attribute* InfoRecord::find(std::string_view name) const {
  for (const Attribute& attr : attributes) {
    if (attr.name == name) return &attr;
  }
  // Allow lookup by bare name as well.
  if (name.find(':') == std::string_view::npos) {
    std::string qualified = keyword + ":" + std::string(name);
    for (const Attribute& attr : attributes) {
      if (attr.name == qualified) return &attr;
    }
  }
  return nullptr;
}

InfoRecord InfoRecord::filtered(const std::vector<std::string>& globs) const {
  if (globs.empty()) return *this;
  InfoRecord out;
  out.keyword = keyword;
  out.generated_at = generated_at;
  out.ttl = ttl;
  for (const Attribute& attr : attributes) {
    for (const auto& glob : globs) {
      if (strings::glob_match(glob, attr.name)) {
        out.attributes.push_back(attr);
        break;
      }
    }
  }
  return out;
}

double InfoRecord::min_quality() const {
  double q = 100.0;
  for (const Attribute& attr : attributes) q = std::min(q, attr.quality);
  return q;
}

}  // namespace ig::format
