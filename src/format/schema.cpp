#include "format/schema.hpp"

#include "common/strings.hpp"
#include "format/xml.hpp"

namespace ig::format {

const KeywordSchema* ServiceSchema::find(std::string_view keyword) const {
  for (const KeywordSchema& k : keywords) {
    if (k.keyword == keyword) return &k;
  }
  return nullptr;
}

std::string ServiceSchema::to_xml() const {
  std::string out = "<schema service=\"" + xml_escape(service) + "\">\n";
  if (execution) {
    out += "  <execution backend=\"" + xml_escape(execution->backend) +
           "\" jar=\"" + (execution->jar_supported ? "1" : "0") + "\" max_restarts=\"" +
           std::to_string(execution->max_restarts) + "\">\n";
    for (const auto& queue : execution->queues) {
      out += "    <queue name=\"" + xml_escape(queue) + "\"/>\n";
    }
    out += "  </execution>\n";
  }
  for (const KeywordSchema& kw : keywords) {
    out += "  <keyword name=\"" + xml_escape(kw.keyword) + "\" command=\"" +
           xml_escape(kw.command) + "\" ttl=\"" + std::to_string(kw.ttl.count()) + "\">\n";
    for (const AttributeSchema& attr : kw.attributes) {
      out += "    <attribute name=\"" + xml_escape(attr.name) + "\" type=\"" +
             xml_escape(attr.type) + "\"";
      if (!attr.description.empty()) {
        out += " description=\"" + xml_escape(attr.description) + "\"";
      }
      out += "/>\n";
    }
    out += "  </keyword>\n";
  }
  out += "</schema>\n";
  return out;
}

Result<ServiceSchema> ServiceSchema::parse_xml(const std::string& text) {
  auto root = parse_xml_element(text);
  if (!root.ok()) return root.error();
  if (root->name != "schema") {
    return Error(ErrorCode::kParseError, "expected <schema> root, got <" + root->name + ">");
  }
  ServiceSchema schema;
  schema.service = root->attribute_or("service", "");
  if (const XmlElement* execution = root->child("execution"); execution != nullptr) {
    ExecutionSchema exec;
    exec.backend = execution->attribute_or("backend", "");
    exec.jar_supported = execution->attribute_or("jar", "0") == "1";
    if (auto v = strings::parse_int(execution->attribute_or("max_restarts", "0"))) {
      exec.max_restarts = static_cast<int>(*v);
    }
    for (const XmlElement* queue : execution->children_named("queue")) {
      exec.queues.push_back(queue->attribute_or("name", ""));
    }
    schema.execution = std::move(exec);
  }
  for (const XmlElement* kw : root->children_named("keyword")) {
    KeywordSchema keyword;
    keyword.keyword = kw->attribute_or("name", "");
    keyword.command = kw->attribute_or("command", "");
    if (auto t = strings::parse_int(kw->attribute_or("ttl", "0"))) {
      keyword.ttl = Duration(*t);
    }
    for (const XmlElement* attr : kw->children_named("attribute")) {
      AttributeSchema a;
      a.name = attr->attribute_or("name", "");
      a.type = attr->attribute_or("type", "string");
      a.description = attr->attribute_or("description", "");
      keyword.attributes.push_back(std::move(a));
    }
    schema.keywords.push_back(std::move(keyword));
  }
  return schema;
}

}  // namespace ig::format
