#include "format/ldif.hpp"

#include "common/strings.hpp"

namespace ig::format {

namespace {
constexpr std::string_view kB64 =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Append "name: value" (or "name:: base64") folded at `fold` columns.
void emit_line(std::string& out, std::string_view name, std::string_view value,
               std::size_t fold) {
  std::string line(name);
  if (ldif_safe(value)) {
    line += ": ";
    line += value;
  } else {
    line += ":: ";
    line += base64_encode(value);
  }
  if (line.size() <= fold) {
    out += line;
    out += '\n';
    return;
  }
  // Fold: first line `fold` chars, continuations start with one space.
  out.append(line, 0, fold);
  out += '\n';
  std::size_t pos = fold;
  while (pos < line.size()) {
    std::size_t take = std::min(fold - 1, line.size() - pos);
    out += ' ';
    out.append(line, pos, take);
    out += '\n';
    pos += take;
  }
}
}  // namespace

bool ldif_safe(std::string_view value) {
  if (value.empty()) return true;
  unsigned char first = static_cast<unsigned char>(value.front());
  if (first == ' ' || first == ':' || first == '<') return false;
  if (value.back() == ' ') return false;  // trailing space is lost on parse
  for (char c : value) {
    auto u = static_cast<unsigned char>(c);
    if (u == 0 || u == '\r' || u == '\n' || u >= 128) return false;
  }
  return true;
}

std::string base64_encode(std::string_view data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  while (i + 3 <= data.size()) {
    std::uint32_t n = (static_cast<unsigned char>(data[i]) << 16) |
                      (static_cast<unsigned char>(data[i + 1]) << 8) |
                      static_cast<unsigned char>(data[i + 2]);
    out += kB64[(n >> 18) & 63];
    out += kB64[(n >> 12) & 63];
    out += kB64[(n >> 6) & 63];
    out += kB64[n & 63];
    i += 3;
  }
  std::size_t rem = data.size() - i;
  if (rem == 1) {
    std::uint32_t n = static_cast<unsigned char>(data[i]) << 16;
    out += kB64[(n >> 18) & 63];
    out += kB64[(n >> 12) & 63];
    out += "==";
  } else if (rem == 2) {
    std::uint32_t n = (static_cast<unsigned char>(data[i]) << 16) |
                      (static_cast<unsigned char>(data[i + 1]) << 8);
    out += kB64[(n >> 18) & 63];
    out += kB64[(n >> 12) & 63];
    out += kB64[(n >> 6) & 63];
    out += '=';
  }
  return out;
}

Result<std::string> base64_decode(std::string_view text) {
  auto value_of = [](char c) -> int {
    if (c >= 'A' && c <= 'Z') return c - 'A';
    if (c >= 'a' && c <= 'z') return c - 'a' + 26;
    if (c >= '0' && c <= '9') return c - '0' + 52;
    if (c == '+') return 62;
    if (c == '/') return 63;
    return -1;
  };
  std::string out;
  std::uint32_t buffer = 0;
  int bits = 0;
  for (char c : text) {
    if (c == '=') break;
    int v = value_of(c);
    if (v < 0) return Error(ErrorCode::kParseError, "invalid base64 character");
    buffer = (buffer << 6) | static_cast<std::uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out += static_cast<char>((buffer >> bits) & 0xff);
    }
  }
  return out;
}

std::string to_ldif(const InfoRecord& record, const LdifOptions& options) {
  std::string out;
  std::string dn = "kw=" + record.keyword;
  if (!options.host.empty()) dn += ", host=" + options.host;
  if (!options.suffix.empty()) dn += ", " + options.suffix;
  emit_line(out, "dn", dn, options.fold_column);
  emit_line(out, "objectclass", "InfoGramRecord", options.fold_column);
  emit_line(out, "kw", record.keyword, options.fold_column);
  emit_line(out, "generated", std::to_string(record.generated_at.count()),
            options.fold_column);
  emit_line(out, "ttl", std::to_string(record.ttl.count()), options.fold_column);
  for (const Attribute& attr : record.attributes) {
    emit_line(out, attr.name, attr.value, options.fold_column);
    if (options.include_quality) {
      emit_line(out, attr.name + ";quality", strings::format("%.2f", attr.quality),
                options.fold_column);
    }
  }
  return out;
}

std::string to_ldif(const std::vector<InfoRecord>& records, const LdifOptions& options) {
  std::string out;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (i != 0) out += '\n';
    out += to_ldif(records[i], options);
  }
  return out;
}

Result<std::vector<InfoRecord>> parse_ldif(const std::string& text) {
  // Unfold: a line starting with a single space continues the previous one.
  std::vector<std::string> lines;
  for (const auto& raw : strings::split(text, '\n')) {
    if (!raw.empty() && raw.front() == ' ' && !lines.empty()) {
      lines.back() += raw.substr(1);
    } else {
      lines.push_back(raw);
    }
  }

  std::vector<InfoRecord> records;
  InfoRecord current;
  bool in_entry = false;
  auto finish = [&]() {
    if (in_entry) records.push_back(std::move(current));
    current = InfoRecord{};
    in_entry = false;
  };

  for (const auto& line : lines) {
    if (line.empty()) {
      finish();
      continue;
    }
    // Attribute names may themselves contain ':' (namespaced names like
    // "Memory:total"), so the separator is the first ":: " (base64) or
    // ": " (plain), whichever comes first.
    std::size_t b64 = line.find(":: ");
    std::size_t plain = line.find(": ");
    std::string name;
    std::string value;
    if (b64 != std::string::npos && (plain == std::string::npos || b64 < plain)) {
      name = line.substr(0, b64);
      auto decoded = base64_decode(strings::trim(line.substr(b64 + 3)));
      if (!decoded.ok()) return decoded.error();
      value = std::move(decoded.value());
    } else if (plain != std::string::npos) {
      name = line.substr(0, plain);
      value = line.substr(plain + 2);
    } else if (!line.empty() && line.back() == ':') {
      name = line.substr(0, line.size() - 1);  // "attr:" with empty value
    } else {
      return Error(ErrorCode::kParseError, "LDIF line missing separator: " + line);
    }
    if (name == "dn") {
      finish();
      in_entry = true;
    } else if (name == "objectclass") {
      // structural marker, nothing to store
    } else if (name == "kw") {
      current.keyword = value;
    } else if (name == "generated") {
      auto v = strings::parse_int(value);
      if (!v) return Error(ErrorCode::kParseError, "bad generated timestamp: " + value);
      current.generated_at = TimePoint(*v);
    } else if (name == "ttl") {
      auto v = strings::parse_int(value);
      if (!v) return Error(ErrorCode::kParseError, "bad ttl: " + value);
      current.ttl = Duration(*v);
    } else if (strings::ends_with(name, ";quality")) {
      auto q = strings::parse_double(value);
      if (!q) return Error(ErrorCode::kParseError, "bad quality value: " + value);
      std::string attr_name = name.substr(0, name.size() - std::string(";quality").size());
      for (auto it = current.attributes.rbegin(); it != current.attributes.rend(); ++it) {
        if (it->name == attr_name) {
          it->quality = *q;
          break;
        }
      }
    } else {
      Attribute attr;
      attr.name = name;
      attr.value = value;
      attr.timestamp = current.generated_at;
      current.attributes.push_back(std::move(attr));
    }
  }
  finish();
  return records;
}

}  // namespace ig::format
