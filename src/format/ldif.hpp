// LDIF (RFC 2849) rendering of information records — the MDS-compatible
// return format the paper supports alongside XML.
//
// Each record becomes one LDIF entry rooted under the service suffix:
//
//   dn: kw=Memory, host=hot.mcs.anl.gov, o=Grid
//   objectclass: InfoGramRecord
//   kw: Memory
//   ttl: 80000
//   Memory:total: 512MB
//
// Values that are not LDIF-safe (leading space/colon/'<', or any control /
// non-ASCII byte) are base64-encoded with the "::" separator; long lines
// are folded at 76 characters with one-space continuations, per the RFC.
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"
#include "format/record.hpp"

namespace ig::format {

struct LdifOptions {
  std::string suffix = "o=Grid";  ///< DN suffix appended to every entry
  std::string host;               ///< optional host RDN component
  bool include_quality = true;    ///< emit per-attribute quality lines
  std::size_t fold_column = 76;
};

/// Render records as LDIF entries separated by blank lines.
std::string to_ldif(const std::vector<InfoRecord>& records, const LdifOptions& options = {});
std::string to_ldif(const InfoRecord& record, const LdifOptions& options = {});

/// Parse LDIF text produced by to_ldif back into records (unfolding and
/// base64 decoding). Quality metadata lines are re-absorbed when present.
Result<std::vector<InfoRecord>> parse_ldif(const std::string& text);

/// RFC 4648 base64 (exposed for tests).
std::string base64_encode(std::string_view data);
Result<std::string> base64_decode(std::string_view text);

/// True if `value` may appear verbatim after "attr: " per RFC 2849.
bool ldif_safe(std::string_view value);

}  // namespace ig::format
