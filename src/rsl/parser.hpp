// RSL parser, unparser, and variable substitution.
#pragma once

#include <map>
#include <string>

#include "common/error.hpp"
#include "rsl/ast.hpp"

namespace ig::rsl {

/// Parse an RSL specification. Errors carry a position-annotated message.
Result<Node> parse(std::string_view text);

/// Canonical text form; parse(unparse(n)) == n for every valid node.
std::string unparse(const Node& node);
std::string unparse(const Relation& relation);
std::string unparse(const Value& value);

/// Variable bindings for $(VAR) substitution.
using Bindings = std::map<std::string, std::string>;

/// Resolve all variable references. Bindings come from `outer` plus any
/// (rsl_substitution=(VAR value)...) relations in the node itself, inner
/// definitions shadowing outer ones. Fails on undefined variables.
/// rsl_substitution relations are consumed (removed from the result).
Result<Node> substitute(const Node& node, const Bindings& outer = {});

/// Render a value sequence as a single display string: literals joined by
/// spaces, lists parenthesized. Variables render as $(NAME).
std::string to_display_string(const std::vector<Value>& values);

/// Flatten a fully-substituted value sequence into plain strings.
/// Fails if a variable or nested list remains.
Result<std::vector<std::string>> flatten(const std::vector<Value>& values);

}  // namespace ig::rsl
