#include "rsl/parser.hpp"

#include <cctype>

#include "common/strings.hpp"

namespace ig::rsl {

std::string_view to_string(Op op) {
  switch (op) {
    case Op::kEq:
      return "=";
    case Op::kNeq:
      return "!=";
    case Op::kLt:
      return "<";
    case Op::kGt:
      return ">";
    case Op::kLe:
      return "<=";
    case Op::kGe:
      return ">=";
  }
  return "?";
}

const Relation* Node::find(std::string_view attribute) const {
  for (const Relation& r : relations) {
    if (r.attribute == attribute) return &r;
  }
  return nullptr;
}

std::vector<const Relation*> Node::find_all(std::string_view attribute) const {
  std::vector<const Relation*> out;
  for (const Relation& r : relations) {
    if (r.attribute == attribute) out.push_back(&r);
  }
  return out;
}

namespace {

/// Character class helpers for unquoted words. RSL reserves the
/// parentheses, operators, quotes and '$'.
bool is_word_char(char c) {
  return !std::isspace(static_cast<unsigned char>(c)) && c != '(' && c != ')' && c != '"' &&
         c != '$' && c != '=' && c != '<' && c != '>' && c != '!' && c != '&' && c != '|' &&
         c != '+';
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Node> parse_specification() {
    skip_ws();
    auto node = parse_node();
    if (!node.ok()) return node;
    skip_ws();
    if (!at_end()) return fail("trailing input after specification");
    return node;
  }

 private:
  Result<Node> parse_node() {
    skip_ws();
    if (at_end()) return fail("empty specification");
    char c = peek();
    if (c == '&' || c == '|' || c == '+') {
      ++pos_;
      Node node;
      node.kind = c == '&'   ? Node::Kind::kConjunction
                  : c == '|' ? Node::Kind::kDisjunction
                             : Node::Kind::kMulti;
      return parse_paren_items(std::move(node), /*require_one=*/true);
    }
    if (c == '(') {
      // Bare relation sequence: implicit conjunction.
      Node node;
      node.kind = Node::Kind::kConjunction;
      return parse_paren_items(std::move(node), /*require_one=*/true);
    }
    return fail("expected '(', '&', '|' or '+'");
  }

  /// Parses "( item )" repeatedly, attaching relations/children to `node`.
  Result<Node> parse_paren_items(Node node, bool require_one) {
    bool any = false;
    while (true) {
      skip_ws();
      if (at_end() || peek() != '(') break;
      ++pos_;  // '('
      skip_ws();
      if (!at_end() && (peek() == '&' || peek() == '|' || peek() == '+')) {
        auto child = parse_node();
        if (!child.ok()) return child;
        skip_ws();
        if (at_end() || peek() != ')') return fail("expected ')' after nested specification");
        ++pos_;
        node.children.push_back(std::move(child.value()));
      } else {
        auto rel = parse_relation_body();
        if (!rel.ok()) return rel.error();
        node.relations.push_back(std::move(rel.value()));
      }
      any = true;
    }
    if (require_one && !any) return fail("expected at least one '(...)' item");
    return node;
  }

  /// Parses "attr op value*" up to and including the closing ')'.
  Result<Relation> parse_relation_body() {
    skip_ws();
    std::string attr;
    while (!at_end() && is_word_char(peek())) attr += text_[pos_++];
    if (attr.empty()) return Result<Relation>(Error(ErrorCode::kParseError, location("expected attribute name")));
    Relation rel;
    rel.attribute = strings::to_lower(attr);
    skip_ws();
    auto op = parse_op();
    if (!op.ok()) return op.error();
    rel.op = op.value();
    // Value sequence until ')'.
    while (true) {
      skip_ws();
      if (at_end()) return Result<Relation>(Error(ErrorCode::kParseError, location("unterminated relation")));
      if (peek() == ')') {
        ++pos_;
        return rel;
      }
      auto value = parse_value();
      if (!value.ok()) return value.error();
      rel.values.push_back(std::move(value.value()));
    }
  }

  Result<Op> parse_op() {
    if (at_end()) return Result<Op>(Error(ErrorCode::kParseError, location("expected operator")));
    char c = text_[pos_];
    if (c == '=') {
      ++pos_;
      return Op::kEq;
    }
    if (c == '!') {
      ++pos_;
      if (at_end() || text_[pos_] != '=') return Result<Op>(Error(ErrorCode::kParseError, location("expected '=' after '!'")));
      ++pos_;
      return Op::kNeq;
    }
    if (c == '<') {
      ++pos_;
      if (!at_end() && text_[pos_] == '=') {
        ++pos_;
        return Op::kLe;
      }
      return Op::kLt;
    }
    if (c == '>') {
      ++pos_;
      if (!at_end() && text_[pos_] == '=') {
        ++pos_;
        return Op::kGe;
      }
      return Op::kGt;
    }
    return Result<Op>(Error(ErrorCode::kParseError, location("expected operator")));
  }

  /// One value: possibly a concatenation of adjacent fragments.
  Result<Value> parse_value() {
    std::vector<Value> fragments;
    while (!at_end()) {
      char c = peek();
      if (c == '"') {
        auto lit = parse_quoted();
        if (!lit.ok()) return Result<Value>(lit.error());
        fragments.push_back(Value::literal(std::move(lit.value())));
      } else if (c == '$') {
        auto var = parse_variable();
        if (!var.ok()) return var;
        fragments.push_back(std::move(var.value()));
      } else if (c == '(') {
        auto list = parse_list();
        if (!list.ok()) return list;
        fragments.push_back(std::move(list.value()));
      } else if (is_word_char(c)) {
        std::string word;
        while (!at_end() && is_word_char(peek())) word += text_[pos_++];
        fragments.push_back(Value::literal(std::move(word)));
      } else {
        break;  // whitespace, ')' or operator char ends the value
      }
      // Adjacent fragment (no whitespace) continues the concatenation,
      // except that '(' after a fragment would be a *new* list value.
      if (at_end() || std::isspace(static_cast<unsigned char>(peek())) || peek() == ')' ||
          peek() == '(') {
        break;
      }
    }
    if (fragments.empty()) return Result<Value>(Error(ErrorCode::kParseError, location("expected value")));
    if (fragments.size() == 1) return std::move(fragments.front());
    return Value::concat(std::move(fragments));
  }

  /// "..." with "" as the escape for a literal quote (RSL convention).
  Result<std::string> parse_quoted() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (at_end()) return Result<std::string>(Error(ErrorCode::kParseError, location("unterminated quoted string")));
      char c = text_[pos_++];
      if (c == '"') {
        if (!at_end() && peek() == '"') {
          out += '"';
          ++pos_;
          continue;
        }
        return out;
      }
      out += c;
    }
  }

  Result<Value> parse_variable() {
    ++pos_;  // '$'
    if (at_end() || peek() != '(') return Result<Value>(Error(ErrorCode::kParseError, location("expected '(' after '$'")));
    ++pos_;
    skip_ws();
    std::string name;
    while (!at_end() && is_word_char(peek())) name += text_[pos_++];
    skip_ws();
    if (name.empty()) return Result<Value>(Error(ErrorCode::kParseError, location("empty variable name")));
    if (at_end() || peek() != ')') return Result<Value>(Error(ErrorCode::kParseError, location("expected ')' after variable name")));
    ++pos_;
    return Value::variable(std::move(name));
  }

  Result<Value> parse_list() {
    ++pos_;  // '('
    std::vector<Value> items;
    while (true) {
      skip_ws();
      if (at_end()) return Result<Value>(Error(ErrorCode::kParseError, location("unterminated value list")));
      if (peek() == ')') {
        ++pos_;
        return Value::list(std::move(items));
      }
      auto value = parse_value();
      if (!value.ok()) return value;
      items.push_back(std::move(value.value()));
    }
  }

  void skip_ws() {
    while (!at_end() && std::isspace(static_cast<unsigned char>(peek()))) ++pos_;
  }
  bool at_end() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  Error fail(std::string_view what) { return Error(ErrorCode::kParseError, location(what)); }
  std::string location(std::string_view what) const {
    return std::string(what) + " at offset " + std::to_string(pos_);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool needs_quoting(const std::string& s) {
  if (s.empty()) return true;
  for (char c : s) {
    if (!is_word_char(c)) return true;
  }
  return false;
}

void unparse_value(const Value& value, std::string& out) {
  switch (value.kind) {
    case Value::Kind::kLiteral:
      if (needs_quoting(value.text)) {
        out += '"';
        out += strings::replace_all(value.text, "\"", "\"\"");
        out += '"';
      } else {
        out += value.text;
      }
      break;
    case Value::Kind::kVariable:
      out += "$(";
      out += value.text;
      out += ')';
      break;
    case Value::Kind::kList:
      out += '(';
      for (std::size_t i = 0; i < value.items.size(); ++i) {
        if (i != 0) out += ' ';
        unparse_value(value.items[i], out);
      }
      out += ')';
      break;
    case Value::Kind::kConcat:
      for (const Value& item : value.items) unparse_value(item, out);
      break;
  }
}

void unparse_node(const Node& node, std::string& out) {
  switch (node.kind) {
    case Node::Kind::kConjunction:
      out += '&';
      break;
    case Node::Kind::kDisjunction:
      out += '|';
      break;
    case Node::Kind::kMulti:
      out += '+';
      break;
  }
  for (const Relation& rel : node.relations) out += unparse(rel);
  for (const Node& child : node.children) {
    out += '(';
    unparse_node(child, out);
    out += ')';
  }
}

Result<Value> substitute_value(const Value& value, const Bindings& bindings) {
  switch (value.kind) {
    case Value::Kind::kLiteral:
      return value;
    case Value::Kind::kVariable: {
      auto it = bindings.find(value.text);
      if (it == bindings.end()) {
        return Result<Value>(Error(ErrorCode::kParseError, "undefined RSL variable: " + value.text));
      }
      return Value::literal(it->second);
    }
    case Value::Kind::kList:
    case Value::Kind::kConcat: {
      std::vector<Value> items;
      items.reserve(value.items.size());
      for (const Value& item : value.items) {
        auto sub = substitute_value(item, bindings);
        if (!sub.ok()) return sub;
        items.push_back(std::move(sub.value()));
      }
      if (value.kind == Value::Kind::kList) return Value::list(std::move(items));
      // Collapse an all-literal concat into one literal.
      std::string joined;
      for (const Value& item : items) {
        if (item.kind != Value::Kind::kLiteral) return Value::concat(std::move(items));
        joined += item.text;
      }
      return Value::literal(std::move(joined));
    }
  }
  return Result<Value>(Error(ErrorCode::kInternal, "unreachable value kind"));
}

}  // namespace

Result<Node> parse(std::string_view text) { return Parser(text).parse_specification(); }

std::string unparse(const Value& value) {
  std::string out;
  unparse_value(value, out);
  return out;
}

std::string unparse(const Relation& relation) {
  std::string out = "(" + relation.attribute + std::string(to_string(relation.op));
  for (std::size_t i = 0; i < relation.values.size(); ++i) {
    if (i != 0) out += ' ';
    unparse_value(relation.values[i], out);
  }
  out += ')';
  return out;
}

std::string unparse(const Node& node) {
  std::string out;
  unparse_node(node, out);
  return out;
}

Result<Node> substitute(const Node& node, const Bindings& outer) {
  Bindings bindings = outer;
  // Collect (rsl_substitution=(VAR value)...) definitions from this node.
  for (const Relation& rel : node.relations) {
    if (rel.attribute != "rsl_substitution") continue;
    for (const Value& pair : rel.values) {
      if (pair.kind != Value::Kind::kList || pair.items.size() != 2 ||
          pair.items[0].kind != Value::Kind::kLiteral) {
        return Error(ErrorCode::kParseError,
                     "rsl_substitution entries must be (NAME value) pairs");
      }
      auto resolved = substitute_value(pair.items[1], bindings);
      if (!resolved.ok()) return resolved.error();
      if (resolved->kind != Value::Kind::kLiteral) {
        return Error(ErrorCode::kParseError,
                     "rsl_substitution value must resolve to a literal");
      }
      bindings[pair.items[0].text] = resolved->text;
    }
  }
  Node out;
  out.kind = node.kind;
  for (const Relation& rel : node.relations) {
    if (rel.attribute == "rsl_substitution") continue;  // consumed
    Relation resolved;
    resolved.attribute = rel.attribute;
    resolved.op = rel.op;
    for (const Value& v : rel.values) {
      auto sub = substitute_value(v, bindings);
      if (!sub.ok()) return sub.error();
      resolved.values.push_back(std::move(sub.value()));
    }
    out.relations.push_back(std::move(resolved));
  }
  for (const Node& child : node.children) {
    auto sub = substitute(child, bindings);
    if (!sub.ok()) return sub;
    out.children.push_back(std::move(sub.value()));
  }
  return out;
}

std::string to_display_string(const std::vector<Value>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ' ';
    const Value& v = values[i];
    if (v.kind == Value::Kind::kLiteral) {
      out += v.text;
    } else {
      unparse_value(v, out);
    }
  }
  return out;
}

Result<std::vector<std::string>> flatten(const std::vector<Value>& values) {
  std::vector<std::string> out;
  out.reserve(values.size());
  for (const Value& v : values) {
    if (v.kind != Value::Kind::kLiteral) {
      return Error(ErrorCode::kInvalidArgument,
                   "value sequence contains unresolved variable or list: " + unparse(v));
    }
    out.push_back(v.text);
  }
  return out;
}

}  // namespace ig::rsl
