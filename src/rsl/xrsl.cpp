#include "rsl/xrsl.hpp"

#include "common/strings.hpp"
#include "rsl/parser.hpp"

namespace ig::rsl {

std::string_view to_string(ResponseMode mode) {
  switch (mode) {
    case ResponseMode::kCached:
      return "cached";
    case ResponseMode::kImmediate:
      return "immediate";
    case ResponseMode::kLast:
      return "last";
  }
  return "?";
}

std::string_view to_string(OutputFormat format) {
  switch (format) {
    case OutputFormat::kLdif:
      return "ldif";
    case OutputFormat::kXml:
      return "xml";
    case OutputFormat::kDsml:
      return "dsml";
  }
  return "?";
}

std::string_view to_string(TimeoutAction action) {
  switch (action) {
    case TimeoutAction::kCancel:
      return "cancel";
    case TimeoutAction::kException:
      return "exception";
  }
  return "?";
}

namespace {

Result<std::string> single_string(const Relation& rel) {
  auto flat = flatten(rel.values);
  if (!flat.ok()) return flat.error();
  if (flat->size() != 1) {
    return Error(ErrorCode::kInvalidArgument,
                 "(" + rel.attribute + "=...) expects exactly one value");
  }
  return flat->front();
}

Result<std::int64_t> single_int(const Relation& rel) {
  auto s = single_string(rel);
  if (!s.ok()) return s.error();
  auto v = strings::parse_int(*s);
  if (!v) {
    return Error(ErrorCode::kInvalidArgument,
                 "(" + rel.attribute + "=...) expects an integer, got " + *s);
  }
  return *v;
}

}  // namespace

Result<XrslRequest> XrslRequest::from_node(const Node& node) {
  if (node.kind != Node::Kind::kConjunction || !node.children.empty()) {
    return Error(ErrorCode::kInvalidArgument,
                 "xRSL request must be a flat conjunction of relations");
  }
  XrslRequest req;
  JobSpec job;
  bool has_job_attr = false;

  for (const Relation& rel : node.relations) {
    if (rel.op != Op::kEq) {
      return Error(ErrorCode::kInvalidArgument,
                   "xRSL attribute " + rel.attribute + " requires '='");
    }
    const std::string& attr = rel.attribute;
    if (attr == "executable") {
      auto v = single_string(rel);
      if (!v.ok()) return v.error();
      job.executable = *v;
      has_job_attr = true;
    } else if (attr == "arguments") {
      auto flat = flatten(rel.values);
      if (!flat.ok()) return flat.error();
      job.arguments = std::move(flat.value());
      has_job_attr = true;
    } else if (attr == "environment") {
      for (const Value& pair : rel.values) {
        if (pair.kind != Value::Kind::kList || pair.items.size() != 2 ||
            pair.items[0].kind != Value::Kind::kLiteral ||
            pair.items[1].kind != Value::Kind::kLiteral) {
          return Error(ErrorCode::kInvalidArgument,
                       "(environment=...) entries must be (NAME value) pairs");
        }
        job.environment[pair.items[0].text] = pair.items[1].text;
      }
      has_job_attr = true;
    } else if (attr == "directory" || attr == "stdin" || attr == "stdout" ||
               attr == "stderr" || attr == "queue" || attr == "jobtype") {
      auto v = single_string(rel);
      if (!v.ok()) return v.error();
      if (attr == "directory") {
        job.directory = *v;
      } else if (attr == "stdin") {
        job.std_in = *v;
      } else if (attr == "stdout") {
        job.std_out = *v;
      } else if (attr == "stderr") {
        job.std_err = *v;
      } else if (attr == "queue") {
        job.queue = *v;
      } else {
        job.job_type = *v;
      }
      has_job_attr = true;
    } else if (attr == "count") {
      auto v = single_int(rel);
      if (!v.ok()) return v.error();
      if (*v < 1) return Error(ErrorCode::kInvalidArgument, "(count=...) must be >= 1");
      job.count = static_cast<int>(*v);
      has_job_attr = true;
    } else if (attr == "maxtime") {
      auto v = single_int(rel);  // minutes, GRAM convention
      if (!v.ok()) return v.error();
      if (*v < 0) return Error(ErrorCode::kInvalidArgument, "(maxtime=...) must be >= 0");
      job.max_time = seconds(*v * 60);
      has_job_attr = true;
    } else if (attr == "info") {
      auto v = single_string(rel);
      if (!v.ok()) return v.error();
      if (strings::iequals(*v, "schema")) {
        req.wants_schema = true;
      } else {
        req.info_keys.push_back(*v);
      }
    } else if (attr == "response") {
      auto v = single_string(rel);
      if (!v.ok()) return v.error();
      if (strings::iequals(*v, "cached")) {
        req.response = ResponseMode::kCached;
      } else if (strings::iequals(*v, "immediate")) {
        req.response = ResponseMode::kImmediate;
      } else if (strings::iequals(*v, "last")) {
        req.response = ResponseMode::kLast;
      } else {
        return Error(ErrorCode::kInvalidArgument, "unknown response mode: " + *v);
      }
    } else if (attr == "quality") {
      auto v = single_string(rel);
      if (!v.ok()) return v.error();
      auto q = strings::parse_double(*v);
      if (!q || *q < 0.0 || *q > 100.0) {
        return Error(ErrorCode::kInvalidArgument,
                     "(quality=...) must be a percentage in [0,100]");
      }
      req.quality_threshold = *q;
    } else if (attr == "performance") {
      auto v = single_string(rel);
      if (!v.ok()) return v.error();
      req.performance_keys.push_back(*v);
    } else if (attr == "format") {
      auto v = single_string(rel);
      if (!v.ok()) return v.error();
      if (strings::iequals(*v, "ldif")) {
        req.format = OutputFormat::kLdif;
      } else if (strings::iequals(*v, "xml")) {
        req.format = OutputFormat::kXml;
      } else if (strings::iequals(*v, "dsml")) {
        req.format = OutputFormat::kDsml;
      } else {
        return Error(ErrorCode::kInvalidArgument, "unknown format: " + *v);
      }
    } else if (attr == "filter") {
      auto v = single_string(rel);
      if (!v.ok()) return v.error();
      req.filters.push_back(*v);
    } else if (attr == "timeout") {
      auto v = single_int(rel);  // milliseconds, per the paper's example
      if (!v.ok()) return v.error();
      if (*v < 0) return Error(ErrorCode::kInvalidArgument, "(timeout=...) must be >= 0");
      req.timeout = ms(*v);
    } else if (attr == "action") {
      auto v = single_string(rel);
      if (!v.ok()) return v.error();
      if (strings::iequals(*v, "cancel")) {
        req.action = TimeoutAction::kCancel;
      } else if (strings::iequals(*v, "exception")) {
        req.action = TimeoutAction::kException;
      } else {
        return Error(ErrorCode::kInvalidArgument, "unknown timeout action: " + *v);
      }
    } else {
      return Error(ErrorCode::kInvalidArgument, "unknown xRSL attribute: " + attr);
    }
  }

  if (has_job_attr) {
    if (job.executable.empty()) {
      return Error(ErrorCode::kInvalidArgument,
                   "job attributes present but (executable=...) missing");
    }
    req.job = std::move(job);
  }
  if (!req.is_job() && !req.is_info()) {
    return Error(ErrorCode::kInvalidArgument,
                 "request is neither a job submission nor an information query");
  }
  return req;
}

Result<XrslRequest> XrslRequest::parse(std::string_view text, const Bindings& bindings) {
  auto node = rsl::parse(text);
  if (!node.ok()) return node.error();
  auto resolved = substitute(node.value(), bindings);
  if (!resolved.ok()) return resolved.error();
  return from_node(resolved.value());
}

Result<std::vector<XrslRequest>> XrslRequest::parse_all(std::string_view text,
                                                        const Bindings& bindings) {
  auto node = rsl::parse(text);
  if (!node.ok()) return node.error();
  auto resolved = substitute(node.value(), bindings);
  if (!resolved.ok()) return resolved.error();
  std::vector<XrslRequest> out;
  if (resolved->kind == Node::Kind::kMulti) {
    if (!resolved->relations.empty()) {
      return Error(ErrorCode::kInvalidArgument,
                   "multi-request may not contain bare relations");
    }
    if (resolved->children.empty()) {
      return Error(ErrorCode::kInvalidArgument, "empty multi-request");
    }
    out.reserve(resolved->children.size());
    for (const Node& child : resolved->children) {
      auto request = from_node(child);
      if (!request.ok()) return request.error();
      out.push_back(std::move(request.value()));
    }
    return out;
  }
  auto request = from_node(resolved.value());
  if (!request.ok()) return request.error();
  out.push_back(std::move(request.value()));
  return out;
}

std::string XrslRequest::to_rsl() const {
  std::string out = "&";
  auto rel = [&out](const std::string& attr, const std::string& value) {
    Relation r;
    r.attribute = attr;
    r.values.push_back(Value::literal(value));
    out += unparse(r);
  };
  if (job) {
    rel("executable", job->executable);
    if (!job->arguments.empty()) {
      Relation r;
      r.attribute = "arguments";
      for (const auto& a : job->arguments) r.values.push_back(Value::literal(a));
      out += unparse(r);
    }
    if (!job->environment.empty()) {
      Relation r;
      r.attribute = "environment";
      for (const auto& [k, v] : job->environment) {
        r.values.push_back(Value::list({Value::literal(k), Value::literal(v)}));
      }
      out += unparse(r);
    }
    if (!job->directory.empty()) rel("directory", job->directory);
    if (!job->std_in.empty()) rel("stdin", job->std_in);
    if (!job->std_out.empty()) rel("stdout", job->std_out);
    if (!job->std_err.empty()) rel("stderr", job->std_err);
    if (!job->queue.empty()) rel("queue", job->queue);
    if (!job->job_type.empty()) rel("jobtype", job->job_type);
    if (job->count != 1) rel("count", std::to_string(job->count));
    if (job->max_time) {
      rel("maxtime", std::to_string(job->max_time->count() / seconds(60).count()));
    }
  }
  for (const auto& key : info_keys) rel("info", key);
  if (wants_schema) rel("info", "schema");
  if (response != ResponseMode::kCached) rel("response", std::string(to_string(response)));
  if (quality_threshold) rel("quality", strings::format("%.10g", *quality_threshold));
  for (const auto& key : performance_keys) rel("performance", key);
  if (format != OutputFormat::kLdif) rel("format", std::string(to_string(format)));
  for (const auto& f : filters) rel("filter", f);
  if (timeout) rel("timeout", std::to_string(timeout->count() / 1000));
  if (timeout && action != TimeoutAction::kCancel) {
    rel("action", std::string(to_string(action)));
  }
  return out;
}

XrslBuilder& XrslBuilder::executable(std::string path) {
  if (!request_.job) request_.job.emplace();
  request_.job->executable = std::move(path);
  return *this;
}
XrslBuilder& XrslBuilder::argument(std::string arg) {
  if (!request_.job) request_.job.emplace();
  request_.job->arguments.push_back(std::move(arg));
  return *this;
}
XrslBuilder& XrslBuilder::environment(std::string key, std::string value) {
  if (!request_.job) request_.job.emplace();
  request_.job->environment[std::move(key)] = std::move(value);
  return *this;
}
XrslBuilder& XrslBuilder::directory(std::string dir) {
  if (!request_.job) request_.job.emplace();
  request_.job->directory = std::move(dir);
  return *this;
}
XrslBuilder& XrslBuilder::stdout_file(std::string path) {
  if (!request_.job) request_.job.emplace();
  request_.job->std_out = std::move(path);
  return *this;
}
XrslBuilder& XrslBuilder::count(int n) {
  if (!request_.job) request_.job.emplace();
  request_.job->count = n;
  return *this;
}
XrslBuilder& XrslBuilder::queue(std::string name) {
  if (!request_.job) request_.job.emplace();
  request_.job->queue = std::move(name);
  return *this;
}
XrslBuilder& XrslBuilder::job_type(std::string type) {
  if (!request_.job) request_.job.emplace();
  request_.job->job_type = std::move(type);
  return *this;
}
XrslBuilder& XrslBuilder::max_time(Duration d) {
  if (!request_.job) request_.job.emplace();
  request_.job->max_time = d;
  return *this;
}
XrslBuilder& XrslBuilder::info(std::string key) {
  request_.info_keys.push_back(std::move(key));
  return *this;
}
XrslBuilder& XrslBuilder::schema() {
  request_.wants_schema = true;
  return *this;
}
XrslBuilder& XrslBuilder::response(ResponseMode mode) {
  request_.response = mode;
  return *this;
}
XrslBuilder& XrslBuilder::quality(double threshold_percent) {
  request_.quality_threshold = threshold_percent;
  return *this;
}
XrslBuilder& XrslBuilder::performance(std::string key) {
  request_.performance_keys.push_back(std::move(key));
  return *this;
}
XrslBuilder& XrslBuilder::format(OutputFormat fmt) {
  request_.format = fmt;
  return *this;
}
XrslBuilder& XrslBuilder::filter(std::string attribute_glob) {
  request_.filters.push_back(std::move(attribute_glob));
  return *this;
}
XrslBuilder& XrslBuilder::timeout(Duration d, TimeoutAction act) {
  request_.timeout = d;
  request_.action = act;
  return *this;
}

}  // namespace ig::rsl
