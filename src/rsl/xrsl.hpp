// xRSL: the paper's extension of RSL with information-service tags.
//
// InfoGram treats an information query exactly like a job submission; the
// client formulates both in RSL. The paper adds the tags `schema`, `info`,
// `filter`, `response`, `performance`, `quality` and `format`, plus the
// planned `timeout`/`action` extension. This header gives the parsed AST a
// typed face: XrslRequest::from_node() validates the extension attributes
// and the classic GRAM job attributes, producing a request the InfoGram
// service dispatches on.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "rsl/ast.hpp"
#include "rsl/parser.hpp"

namespace ig::rsl {

/// Cache interaction for info queries (paper Sec. 6.6, "Response").
enum class ResponseMode {
  kCached,     ///< return cache if fresh, refresh otherwise (default)
  kImmediate,  ///< force execution regardless of TTL; updates the cache
  kLast,       ///< return whatever is cached, however stale, never refresh
};

/// Return format for information (paper Sec. 6.6, "Format"): LDIF and
/// XML per the paper, plus DSML ("it is straightforward to support other
/// formats such as DSML").
enum class OutputFormat { kLdif, kXml, kDsml };

/// Behaviour when a job exceeds its timeout (paper Sec. 6.6, "Extensions").
enum class TimeoutAction {
  kCancel,     ///< cancel the running command
  kException,  ///< report the timeout but let the command continue
};

std::string_view to_string(ResponseMode mode);
std::string_view to_string(OutputFormat format);
std::string_view to_string(TimeoutAction action);

/// Classic GRAM job attributes.
struct JobSpec {
  std::string executable;
  std::vector<std::string> arguments;
  std::map<std::string, std::string> environment;
  std::string directory;
  std::string std_in;
  std::string std_out;
  std::string std_err;
  std::string queue;
  std::string job_type;  ///< "single" (default), "multiple", "jar"
  int count = 1;
  std::optional<Duration> max_time;

  friend bool operator==(const JobSpec&, const JobSpec&) = default;
};

/// A validated xRSL request: a job submission, an information query, or
/// both at once (the unification the paper is about).
struct XrslRequest {
  std::optional<JobSpec> job;

  /// Keys from (info=...) relations. "all" expands to every configured
  /// keyword; "schema" sets wants_schema instead of appearing here.
  std::vector<std::string> info_keys;
  bool wants_schema = false;

  ResponseMode response = ResponseMode::kCached;
  /// Quality threshold in percent: attributes whose degradation value fell
  /// below this are regenerated before return (paper Sec. 6.6, "Quality").
  std::optional<double> quality_threshold;
  /// Keys whose provider timing statistics to return; "all" allowed.
  std::vector<std::string> performance_keys;
  OutputFormat format = OutputFormat::kLdif;
  /// Attribute glob filters, e.g. "Memory:*"; empty = no filtering.
  std::vector<std::string> filters;
  std::optional<Duration> timeout;
  TimeoutAction action = TimeoutAction::kCancel;

  bool is_job() const { return job.has_value(); }
  bool is_info() const {
    return !info_keys.empty() || wants_schema || !performance_keys.empty();
  }

  /// Validate a fully-substituted conjunction node into a request.
  static Result<XrslRequest> from_node(const Node& node);
  /// parse + substitute + from_node in one step.
  static Result<XrslRequest> parse(std::string_view text, const Bindings& bindings = {});

  /// Like parse(), but accepts RSL multi-requests: "+(&(...))(&(...))"
  /// yields one request per sub-specification (a plain specification
  /// yields a single-element vector). This is GRAM's multi-request
  /// operator applied to the unified service.
  static Result<std::vector<XrslRequest>> parse_all(std::string_view text,
                                                    const Bindings& bindings = {});

  /// Render back to RSL text (round-trips through parse()).
  std::string to_rsl() const;

  friend bool operator==(const XrslRequest&, const XrslRequest&) = default;
};

/// Fluent construction of xRSL requests for client code.
class XrslBuilder {
 public:
  XrslBuilder& executable(std::string path);
  XrslBuilder& argument(std::string arg);
  XrslBuilder& environment(std::string key, std::string value);
  XrslBuilder& directory(std::string dir);
  XrslBuilder& stdout_file(std::string path);
  XrslBuilder& count(int n);
  XrslBuilder& queue(std::string name);
  XrslBuilder& job_type(std::string type);
  XrslBuilder& max_time(Duration d);
  XrslBuilder& info(std::string key);
  XrslBuilder& schema();
  XrslBuilder& response(ResponseMode mode);
  XrslBuilder& quality(double threshold_percent);
  XrslBuilder& performance(std::string key);
  XrslBuilder& format(OutputFormat fmt);
  XrslBuilder& filter(std::string attribute_glob);
  XrslBuilder& timeout(Duration d, TimeoutAction action = TimeoutAction::kCancel);

  const XrslRequest& request() const { return request_; }
  std::string to_rsl() const { return request_.to_rsl(); }

 private:
  XrslRequest request_;
};

}  // namespace ig::rsl
