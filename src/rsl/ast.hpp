// Abstract syntax for the Globus Resource Specification Language (RSL).
//
// RSL is the job-description language of GRAM; the paper extends it into
// xRSL by giving meaning to additional attributes (src/rsl/xrsl.hpp). The
// grammar implemented here follows RSL 1.0:
//
//   specification   := boolean | relation-sequence
//   boolean         := ('&' | '|' | '+') paren-item+
//   paren-item      := '(' specification-or-relation ')'
//   relation        := attribute op value*            (inside parentheses)
//   op              := '=' | '!=' | '<' | '>' | '<=' | '>='
//   value           := word | "quoted ''string''" | '(' value* ')' | $(VAR)
//
// Adjacent value fragments without whitespace concatenate ($(HOME)/bin).
// A bare relation sequence is an implicit conjunction. Attribute names are
// case-insensitive and canonicalized to lower case.
#pragma once

#include <string>
#include <vector>

namespace ig::rsl {

enum class Op { kEq, kNeq, kLt, kGt, kLe, kGe };

std::string_view to_string(Op op);

/// A value in a relation's value sequence.
struct Value {
  enum class Kind {
    kLiteral,   ///< plain text (word or quoted string)
    kVariable,  ///< $(NAME) reference
    kList,      ///< parenthesized value sequence, e.g. (HOME /home/x)
    kConcat,    ///< adjacent fragments, e.g. $(HOME)/bin
  };

  Kind kind = Kind::kLiteral;
  std::string text;          ///< literal text or variable name
  std::vector<Value> items;  ///< list elements or concat fragments

  static Value literal(std::string s) { return {Kind::kLiteral, std::move(s), {}}; }
  static Value variable(std::string name) { return {Kind::kVariable, std::move(name), {}}; }
  static Value list(std::vector<Value> items) { return {Kind::kList, {}, std::move(items)}; }
  static Value concat(std::vector<Value> items) { return {Kind::kConcat, {}, std::move(items)}; }

  friend bool operator==(const Value&, const Value&) = default;
};

/// attribute op value-sequence, e.g. (count=4) or (arguments=a b c).
struct Relation {
  std::string attribute;  ///< lower-cased
  Op op = Op::kEq;
  std::vector<Value> values;

  friend bool operator==(const Relation&, const Relation&) = default;
};

/// A specification node. Conjunction nodes hold relations directly plus any
/// nested boolean children; Multi ('+') nodes hold one child per request.
struct Node {
  enum class Kind { kConjunction, kDisjunction, kMulti };

  Kind kind = Kind::kConjunction;
  std::vector<Relation> relations;
  std::vector<Node> children;

  /// First relation with this (lower-case) attribute in *this* node, or
  /// nullptr. Does not descend into children.
  const Relation* find(std::string_view attribute) const;
  /// All relations with the attribute, in order.
  std::vector<const Relation*> find_all(std::string_view attribute) const;

  friend bool operator==(const Node&, const Node&) = default;
};

}  // namespace ig::rsl
