// Metrics registry — the service-side half of the observability layer.
//
// The paper already makes InfoGram measure itself (the `performance` tag
// catalogues per-provider update-time mean/stddev at runtime); this module
// generalizes that idea into named counters, gauges and fixed-boundary
// histograms covering the whole request path, so the service's own
// throughput and latency behaviour is observable the same way Zhang &
// Schopf's MDS performance studies observe MDS. Snapshots feed the `obs`
// provider family (info=metrics), which renders them as ordinary
// InfoRecords.
//
// All metric types are thread-safe and lock-free on the hot path; the
// registry hands out stable references that remain valid for its lifetime,
// so instrumented components can resolve a metric once and update it
// without further registry lookups.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.hpp"
#include "common/sync.hpp"

namespace ig::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time level (queue depth, active jobs); can move both ways.
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void sub(std::int64_t n = 1) { value_.fetch_sub(n, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-boundary bucket histogram built on RunningStats for the moment
/// statistics (the same Welford accumulator the `performance` tag uses).
/// Boundaries are upper bucket edges; an implicit +inf bucket catches the
/// overflow. Quantiles are estimated by linear interpolation inside the
/// bucket containing the target rank.
class Histogram {
 public:
  /// One sampled observation per bucket linking the aggregate back to a
  /// concrete trace: "which request landed in the slow bucket?".
  struct Exemplar {
    double value = 0.0;
    std::string trace_id;
  };

  /// `boundaries` must be strictly increasing; empty falls back to the
  /// default latency buckets.
  explicit Histogram(std::vector<double> boundaries);

  /// Lock-free and allocation-free: bucket counts are atomics and the
  /// moment statistics accumulate in an AtomicStats — this is what keeps
  /// the zero-lock cache-hit path's latency observation off every mutex.
  void observe(double x);
  /// observe() plus an exemplar: the bucket `x` lands in remembers
  /// (x, trace_id), overwriting the previous sample — "latest wins" keeps
  /// exemplars fresh without any per-bucket history. The exemplar slot is
  /// mutex-guarded; plain observe() stays lock-free.
  void observe(double x, std::string_view exemplar_trace_id);

  /// Upper bucket edges for sub-second .. tens-of-seconds latencies.
  static std::vector<double> latency_seconds_buckets();

  struct Snapshot {
    RunningStats stats;
    std::vector<double> boundaries;      ///< upper edges, one per bucket
    std::vector<std::uint64_t> counts;   ///< boundaries.size() + 1 (+inf)
    std::vector<Exemplar> exemplars;     ///< parallel to counts; empty id = none

    /// Estimated value at quantile q in [0,1]; 0 with no samples.
    double quantile(double q) const;
  };
  Snapshot snapshot() const;

  /// Lock-free, allocation-free quantile over the *live* buckets: the
  /// same interpolation as Snapshot::quantile, but one relaxed pass
  /// with no exemplar mutex and no vector copies. Concurrent observe()
  /// calls may or may not be counted — the same point-in-time tolerance
  /// a snapshot has. This is what lets the tail sampler's amortized
  /// threshold refresh stay on the static fast path (IG_STATIC_FAST_PATH).
  double quantile_now(double q) const;
  /// Lock-free total sample count over the live buckets.
  std::uint64_t count_now() const;

 private:
  std::vector<double> boundaries_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  AtomicStats stats_;
  /// Unranked: leaf lock, nothing else is acquired while it is held.
  mutable Mutex exemplar_mu_{lock_rank::kUnranked, "obs.Histogram.exemplar"};
  std::vector<Exemplar> exemplars_ IG_GUARDED_BY(exemplar_mu_);
};

/// One registry entry flattened for rendering.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };

  std::string name;
  Kind kind = Kind::kCounter;
  std::int64_t value = 0;  ///< counter/gauge value (0 for histograms)
  std::optional<Histogram::Snapshot> histogram;
};

/// Named metrics, get-or-create. References returned by counter()/gauge()/
/// histogram() stay valid as long as the registry lives; a name is bound to
/// its first-registered kind (re-registering under a different kind returns
/// a detached dummy metric rather than aliasing).
///
/// Lookup of an existing metric is lock-free: the name→entry table is an
/// immutable snapshot behind an ig::SnapshotCell, so resolving an
/// already-registered handle (the common case after wiring) takes zero ig
/// locks. Only the create path — a name's first registration — takes the
/// writer mutex and publishes a rebuilt table. The metric objects are
/// shared_ptr-owned and never removed, so references stay stable across
/// republications.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `boundaries` is only consulted when the histogram is first created.
  Histogram& histogram(const std::string& name, std::vector<double> boundaries = {});

  /// All metrics, sorted by name.
  std::vector<MetricSnapshot> snapshot() const;

  std::size_t size() const;

 private:
  struct Entry {
    std::shared_ptr<Counter> counter;
    std::shared_ptr<Gauge> gauge;
    std::shared_ptr<Histogram> histogram;
  };
  using Table = std::map<std::string, Entry, std::less<>>;

  /// Writer serialization for the create path. Ranks above kSnapshotWriter,
  /// so the publish goes through table_.publish() directly (never through
  /// the cell's own update() mutex — see DESIGN.md §13).
  mutable Mutex mu_{lock_rank::kMetrics, "obs.MetricsRegistry"};
  SnapshotCell<Table> table_{"obs.MetricsRegistry.table"};
  /// Fallbacks handed out on kind mismatch so callers never get nullptr.
  Counter mismatch_counter_;
  Gauge mismatch_gauge_;
  std::unique_ptr<Histogram> mismatch_histogram_ IG_GUARDED_BY(mu_);
};

}  // namespace ig::obs
