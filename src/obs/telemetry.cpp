#include "obs/telemetry.hpp"

#include "common/strings.hpp"

namespace ig::obs {

Telemetry::Telemetry(const Clock& clock, std::size_t trace_capacity)
    : clock_(clock), traces_(trace_capacity) {}

TraceContext Telemetry::start_trace(std::string root_name) const {
  return TraceContext(clock_, std::move(root_name));
}

void Telemetry::complete(TraceContext& trace) {
  TraceRecord record = trace.finish();
  std::function<void(const TraceRecord&)> listener;
  {
    std::lock_guard lock(listener_mu_);
    listener = listener_;
  }
  traces_.add(record);
  if (listener) listener(record);
}

void Telemetry::set_trace_listener(std::function<void(const TraceRecord&)> listener) {
  std::lock_guard lock(listener_mu_);
  listener_ = std::move(listener);
}

namespace {

bool matches_prefix(const std::string& name, const std::vector<std::string>& prefixes) {
  if (prefixes.empty()) return true;
  for (const auto& prefix : prefixes) {
    if (strings::starts_with(name, prefix)) return true;
  }
  return false;
}

}  // namespace

format::InfoRecord Telemetry::metrics_record(const std::string& keyword,
                                             const std::vector<std::string>& prefixes) const {
  format::InfoRecord record;
  record.keyword = keyword;
  record.generated_at = clock_.now();
  for (const MetricSnapshot& m : metrics_.snapshot()) {
    if (!matches_prefix(m.name, prefixes)) continue;
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
      case MetricSnapshot::Kind::kGauge:
        record.add(m.name, std::to_string(m.value));
        break;
      case MetricSnapshot::Kind::kHistogram: {
        const Histogram::Snapshot& h = *m.histogram;
        record.add(m.name + ":count", std::to_string(h.stats.count()));
        record.add(m.name + ":mean", strings::format("%.6f", h.stats.mean()));
        record.add(m.name + ":stddev", strings::format("%.6f", h.stats.stddev()));
        record.add(m.name + ":p50", strings::format("%.6f", h.quantile(0.5)));
        record.add(m.name + ":p95", strings::format("%.6f", h.quantile(0.95)));
        record.add(m.name + ":max", strings::format("%.6f", h.stats.max()));
        break;
      }
    }
  }
  return record;
}

format::InfoRecord Telemetry::traces_record(const std::string& keyword) const {
  format::InfoRecord record;
  record.keyword = keyword;
  record.generated_at = clock_.now();
  record.add("count", std::to_string(traces_.size()));
  record.add("completed", std::to_string(traces_.completed()));
  record.add("capacity", std::to_string(traces_.capacity()));
  for (const TraceRecord& trace : traces_.snapshot()) {
    record.add(trace.id + ":root", trace.root);
    record.add(trace.id + ":status", trace.status);
    record.add(trace.id + ":start_us", std::to_string(trace.start.count()));
    record.add(trace.id + ":duration_us", std::to_string(trace.duration.count()));
    record.add(trace.id + ":spans", std::to_string(trace.spans.size()));
    // Child spans (skip the root, already summarized above).
    for (std::size_t i = 1; i < trace.spans.size(); ++i) {
      const SpanRecord& span = trace.spans[i];
      record.add(trace.id + ":span." + std::to_string(i),
                 strings::format("%s status=%s start_us=%lld duration_us=%lld",
                                 span.name.c_str(), span.status.c_str(),
                                 static_cast<long long>(span.start.count()),
                                 static_cast<long long>(span.duration.count())));
    }
  }
  return record;
}

}  // namespace ig::obs
