#include "obs/telemetry.hpp"

#include "common/id.hpp"
#include "common/strings.hpp"

namespace ig::obs {

Telemetry::Telemetry(const Clock& clock, std::size_t trace_capacity)
    : Telemetry(clock, "", trace_capacity) {}

Telemetry::Telemetry(const Clock& clock, std::string node_id, std::size_t trace_capacity)
    : clock_(clock),
      node_id_(std::move(node_id)),
      traces_(trace_capacity),
      slo_(metrics_, clock_),
      unfinished_(&metrics_.gauge(metric::kTraceUnfinished)),
      dropped_(&metrics_.counter(metric::kTraceDropped)) {
  // Ring evictions are trace loss too: surface them on the same counter
  // as abandoned contexts.
  traces_.set_on_evict([this](const TraceRecord&) { dropped_->add(); });
}

void Telemetry::set_trace_sampling(std::uint64_t every_n) {
  sample_every_.store(every_n == 0 ? 1 : every_n, std::memory_order_relaxed);
}

bool Telemetry::should_sample() {
  std::uint64_t every = sample_every_.load(std::memory_order_relaxed);
  std::uint64_t seq = sample_seq_.fetch_add(1, std::memory_order_relaxed);
  return seq % every == 0;
}

TraceContext::Options Telemetry::trace_options() {
  TraceContext::Options options;
  options.node = node_id_;
  unfinished_->add();
  options.on_finish = [this] { unfinished_->sub(); };
  options.on_abandon = [this] {
    unfinished_->sub();
    dropped_->add();
  };
  return options;
}

TraceContext Telemetry::start_trace(std::string root_name) {
  return TraceContext(clock_, std::move(root_name), trace_options());
}

std::unique_ptr<TraceContext> Telemetry::make_trace(std::string root_name) {
  return std::make_unique<TraceContext>(clock_, std::move(root_name), trace_options());
}

std::unique_ptr<TraceContext> Telemetry::make_remote_trace(std::string root_name,
                                                           std::string trace_id,
                                                           std::uint64_t parent_span) {
  TraceContext::Options options = trace_options();
  options.remote_trace_id = std::move(trace_id);
  options.remote_parent_span = parent_span;
  return std::make_unique<TraceContext>(clock_, std::move(root_name), std::move(options));
}

void Telemetry::notify(const TraceRecord& record) {
  if (exporter_ != nullptr) exporter_->export_trace(record);
  std::shared_ptr<const TraceListener> listener;
  {
    MutexLock lock(listener_mu_);
    listener = listener_;
  }
  if (listener != nullptr && *listener) (*listener)(record);
}

void Telemetry::complete(TraceContext& trace) {
  TraceRecord record = trace.finish();
  notify(record);
  traces_.add(std::move(record));
}

TraceRecord Telemetry::complete_and_collect(TraceContext& trace) {
  TraceRecord record = trace.finish();
  notify(record);
  traces_.add(record);
  return record;
}

void Telemetry::set_trace_listener(std::function<void(const TraceRecord&)> listener) {
  MutexLock lock(listener_mu_);
  listener_ = std::make_shared<const TraceListener>(std::move(listener));
}

void Telemetry::set_exporter(std::shared_ptr<JsonlExporter> exporter) {
  exporter_ = std::move(exporter);
}

namespace {

bool matches_prefix(const std::string& name, const std::vector<std::string>& prefixes) {
  if (prefixes.empty()) return true;
  for (const auto& prefix : prefixes) {
    if (strings::starts_with(name, prefix)) return true;
  }
  return false;
}

}  // namespace

format::InfoRecord Telemetry::metrics_record(const std::string& keyword,
                                             const std::vector<std::string>& prefixes) const {
  format::InfoRecord record;
  record.keyword = keyword;
  record.generated_at = clock_.now();
  for (const MetricSnapshot& m : metrics_.snapshot()) {
    if (!matches_prefix(m.name, prefixes)) continue;
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
      case MetricSnapshot::Kind::kGauge:
        record.add(m.name, std::to_string(m.value));
        break;
      case MetricSnapshot::Kind::kHistogram: {
        const Histogram::Snapshot& h = *m.histogram;
        record.add(m.name + ":count", std::to_string(h.stats.count()));
        record.add(m.name + ":mean", strings::format("%.6f", h.stats.mean()));
        record.add(m.name + ":stddev", strings::format("%.6f", h.stats.stddev()));
        record.add(m.name + ":p50", strings::format("%.6f", h.quantile(0.5)));
        record.add(m.name + ":p95", strings::format("%.6f", h.quantile(0.95)));
        record.add(m.name + ":max", strings::format("%.6f", h.stats.max()));
        // Exemplars: the bucket's upper edge keys the attribute, the value
        // links straight back to a trace id (queryable via info=traces).
        for (std::size_t i = 0; i < h.exemplars.size(); ++i) {
          const Histogram::Exemplar& ex = h.exemplars[i];
          if (ex.trace_id.empty()) continue;
          std::string le =
              i < h.boundaries.size() ? strings::format("%g", h.boundaries[i]) : "inf";
          record.add(m.name + ":exemplar:" + le,
                     strings::format("%s@%.6f", ex.trace_id.c_str(), ex.value));
        }
        break;
      }
    }
  }
  return record;
}

format::InfoRecord Telemetry::traces_record(const std::string& keyword) const {
  format::InfoRecord record;
  record.keyword = keyword;
  record.generated_at = clock_.now();
  record.add("count", std::to_string(traces_.size()));
  record.add("completed", std::to_string(traces_.completed()));
  record.add("capacity", std::to_string(traces_.capacity()));
  for (const TraceRecord& trace : traces_.snapshot()) {
    record.add(trace.id + ":root", trace.root);
    record.add(trace.id + ":status", trace.status);
    record.add(trace.id + ":start_us", std::to_string(trace.start.count()));
    record.add(trace.id + ":duration_us", std::to_string(trace.duration.count()));
    record.add(trace.id + ":spans", std::to_string(trace.spans.size()));
    // Child spans (skip the root, already summarized above). id/parent
    // expose the stitched linkage, node the hop each span ran on.
    for (std::size_t i = 1; i < trace.spans.size(); ++i) {
      const SpanRecord& span = trace.spans[i];
      std::string line =
          strings::format("%s status=%s start_us=%lld duration_us=%lld "
                          "id=%s parent=%s node=%s",
                          span.name.c_str(), span.status.c_str(),
                          static_cast<long long>(span.start.count()),
                          static_cast<long long>(span.duration.count()),
                          to_hex(span.id).c_str(), to_hex(span.parent_id).c_str(),
                          span.node.empty() ? "-" : span.node.c_str());
      // Allocation attribution only when the profiler stamped the span —
      // keeps unprofiled output byte-identical to the PR 4 shape.
      if (span.allocs != 0 || span.alloc_bytes != 0) {
        line += strings::format(" allocs=%llu alloc_bytes=%llu",
                                static_cast<unsigned long long>(span.allocs),
                                static_cast<unsigned long long>(span.alloc_bytes));
      }
      record.add(trace.id + ":span." + std::to_string(i), std::move(line));
    }
  }
  return record;
}

format::InfoRecord Telemetry::slo_record(const std::string& keyword) {
  format::InfoRecord record;
  record.keyword = keyword;
  record.generated_at = clock_.now();
  std::vector<SloStatus> statuses = slo_.evaluate();
  record.add("count", std::to_string(statuses.size()));
  for (const SloStatus& s : statuses) {
    const std::string& n = s.objective.name;
    record.add(n + ":layer", s.objective.layer);
    record.add(n + ":kind",
               s.objective.kind == SloObjective::Kind::kLatency ? "latency" : "error_rate");
    record.add(n + ":metric", s.objective.metric);
    if (s.objective.kind == SloObjective::Kind::kLatency) {
      record.add(n + ":threshold_s", strings::format("%g", s.objective.threshold_seconds));
    }
    record.add(n + ":target", strings::format("%g", s.objective.target));
    record.add(n + ":good", std::to_string(s.good));
    record.add(n + ":total", std::to_string(s.total));
    record.add(n + ":compliance", strings::format("%.6f", s.compliance));
    record.add(n + ":budget_remaining", strings::format("%.6f", s.budget_remaining));
    record.add(n + ":alerting", s.alerting ? "true" : "false");
    for (const BurnStatus& b : s.burns) {
      record.add(n + ":burn." + b.rule.severity,
                 strings::format("short=%.3f long=%.3f factor=%.1f alerting=%s",
                                 b.short_burn, b.long_burn, b.rule.factor,
                                 b.alerting ? "true" : "false"));
    }
  }
  return record;
}

format::InfoRecord Telemetry::alerts_record(const std::string& keyword) {
  format::InfoRecord record;
  record.keyword = keyword;
  record.generated_at = clock_.now();
  std::vector<SloStatus> statuses = slo_.evaluate();
  std::string firing;
  std::size_t count = 0;
  for (const SloStatus& s : statuses) {
    if (!s.alerting) continue;
    ++count;
    if (!firing.empty()) firing += ",";
    firing += s.objective.name;
    record.add(s.objective.name + ":severity", s.severity);
    record.add(s.objective.name + ":compliance", strings::format("%.6f", s.compliance));
    record.add(s.objective.name + ":budget_remaining",
               strings::format("%.6f", s.budget_remaining));
  }
  record.add("count", std::to_string(count));
  record.add("firing", firing.empty() ? "none" : firing);
  return record;
}

namespace {

/// "<name>" for named locks, "<unnamed>" for the rest — profile rows need
/// a stable non-empty key.
const char* lock_label(const LockContentionRegistry::Entry& e) {
  return e.name.empty() ? "<unnamed>" : e.name.c_str();
}

}  // namespace

format::InfoRecord Telemetry::profile_record(const std::string& keyword) {
  // Mirror the contended-wait delta into the counter before reporting, so
  // `metrics` and `profile` agree from the same query.
  std::uint64_t delta = profiler_.take_unsynced_lock_waits();
  if (delta != 0) metrics_.counter(metric::kProfileLockWaits).add(delta);

  format::InfoRecord record;
  record.keyword = keyword;
  record.generated_at = clock_.now();
  record.add("enabled", profiler_.enabled() ? "true" : "false");
  record.add("alloc_counting", alloc_internal::counting_enabled() ? "true" : "false");

  std::vector<LockContentionRegistry::Entry> locks = LockContentionRegistry::instance().snapshot();
  std::uint64_t total_wait_ns = 0;
  for (const auto& e : locks) total_wait_ns += e.total_ns;
  record.add("locks:contended", std::to_string(locks.size()));
  record.add("locks:waits", std::to_string(LockContentionRegistry::instance().total_waits()));
  record.add("locks:total_wait_us", std::to_string(total_wait_ns / 1000));
  // snapshot() is sorted hottest-first; the summary keeps the top 3.
  for (std::size_t i = 0; i < locks.size() && i < 3; ++i) {
    const auto& e = locks[i];
    record.add(strings::format("locks:hot.%zu", i + 1),
               strings::format("%s waits=%llu total_us=%llu max_us=%llu", lock_label(e),
                               static_cast<unsigned long long>(e.waits),
                               static_cast<unsigned long long>(e.total_ns / 1000),
                               static_cast<unsigned long long>(e.max_ns / 1000)));
  }

  std::vector<std::pair<std::string, Profiler::KeywordAlloc>> kws = profiler_.keyword_allocs();
  record.add("alloc:keywords", std::to_string(kws.size()));
  for (std::size_t i = 0; i < kws.size() && i < 3; ++i) {
    const auto& [kw, agg] = kws[i];
    record.add(strings::format("alloc:hot.%zu", i + 1),
               strings::format("%s samples=%llu allocs=%llu bytes=%llu max_bytes=%llu",
                               kw.c_str(), static_cast<unsigned long long>(agg.samples),
                               static_cast<unsigned long long>(agg.allocs),
                               static_cast<unsigned long long>(agg.bytes),
                               static_cast<unsigned long long>(agg.max_bytes)));
  }

  // One digest line per attached pool; the summary must not close the
  // high-water window (that is profile.pool's job).
  for (const auto& [name, stats] : profiler_.pool_stats(/*reset_window=*/false)) {
    record.add("pool:" + name,
               strings::format("depth=%zu window_highwater=%zu submitted=%llu "
                               "executed=%llu shed=%llu workers=%zu",
                               stats.depth, stats.window_highwater,
                               static_cast<unsigned long long>(stats.submitted),
                               static_cast<unsigned long long>(stats.executed),
                               static_cast<unsigned long long>(stats.shed),
                               stats.workers.size()));
  }
  return record;
}

format::InfoRecord Telemetry::profile_locks_record(const std::string& keyword) {
  std::uint64_t delta = profiler_.take_unsynced_lock_waits();
  if (delta != 0) metrics_.counter(metric::kProfileLockWaits).add(delta);

  format::InfoRecord record;
  record.keyword = keyword;
  record.generated_at = clock_.now();
  std::vector<LockContentionRegistry::Entry> locks = LockContentionRegistry::instance().snapshot();
  record.add("count", std::to_string(locks.size()));
  for (const auto& e : locks) {
    std::string label = lock_label(e);
    std::uint64_t mean_us = e.waits == 0 ? 0 : e.total_ns / e.waits / 1000;
    record.add(label,
               strings::format("rank=%d waits=%llu total_us=%llu max_us=%llu mean_us=%llu",
                               e.rank, static_cast<unsigned long long>(e.waits),
                               static_cast<unsigned long long>(e.total_ns / 1000),
                               static_cast<unsigned long long>(e.max_ns / 1000),
                               static_cast<unsigned long long>(mean_us)));
    for (std::size_t b = 0; b < e.buckets.size(); ++b) {
      if (e.buckets[b] == 0) continue;
      std::string le = b < LockContentionRegistry::kWaitBucketEdgesUs.size()
                           ? std::to_string(LockContentionRegistry::kWaitBucketEdgesUs[b])
                           : "inf";
      record.add(label + ":bucket." + le, std::to_string(e.buckets[b]));
    }
    if (!e.exemplar_trace.empty()) record.add(label + ":exemplar", e.exemplar_trace);
  }
  return record;
}

format::InfoRecord Telemetry::profile_pool_record(const std::string& keyword) {
  format::InfoRecord record;
  record.keyword = keyword;
  record.generated_at = clock_.now();
  std::vector<std::pair<std::string, ThreadPool::Stats>> pools =
      profiler_.pool_stats(/*reset_window=*/true);
  record.add("count", std::to_string(pools.size()));
  for (const auto& [name, stats] : pools) {
    record.add(name + ":depth", std::to_string(stats.depth));
    record.add(name + ":highwater", std::to_string(stats.highwater));
    record.add(name + ":window_highwater", std::to_string(stats.window_highwater));
    record.add(name + ":submitted", std::to_string(stats.submitted));
    record.add(name + ":executed", std::to_string(stats.executed));
    record.add(name + ":shed", std::to_string(stats.shed));
    for (std::size_t i = 0; i < stats.workers.size(); ++i) {
      record.add(strings::format("%s:worker.%zu", name.c_str(), i),
                 strings::format("tasks=%llu busy_us=%lld",
                                 static_cast<unsigned long long>(stats.workers[i].tasks),
                                 static_cast<long long>(stats.workers[i].busy.count())));
    }
    // The windowed high-water doubles as a gauge so dashboards reading
    // only `metrics` see current queue pressure too.
    metrics_.gauge(metric::kPoolQueueHighwaterWindow)
        .set(static_cast<std::int64_t>(stats.window_highwater));
  }
  return record;
}

bool Telemetry::export_profile_snapshot() {
  if (exporter_ == nullptr) return false;
  exporter_->export_profile(profile_record("profile"), clock_.now());
  return true;
}

ScopedTrace::ScopedTrace(const std::shared_ptr<Telemetry>& telemetry, std::string root_name)
    : telemetry_(telemetry) {
  if (telemetry_ == nullptr) return;
  if (!active_trace().empty()) return;  // join the enclosing trace instead
  if (!telemetry_->should_sample()) {
    suppress_.emplace();
    return;
  }
  ctx_ = telemetry_->make_trace(std::move(root_name));
  scope_.emplace(*ctx_);
}

ScopedTrace::~ScopedTrace() {
  scope_.reset();  // restore the thread-local before completing
  if (ctx_ != nullptr) telemetry_->complete(*ctx_);
}

void ScopedTrace::fail(std::string status) {
  if (ctx_ != nullptr) ctx_->fail(std::move(status));
}

}  // namespace ig::obs
