#include "obs/telemetry.hpp"

#include <cmath>

#include "common/id.hpp"
#include "common/strings.hpp"

namespace ig::obs {

Telemetry::Telemetry(const Clock& clock, std::size_t trace_capacity)
    : Telemetry(clock, "", trace_capacity) {}

Telemetry::Telemetry(const Clock& clock, std::string node_id, std::size_t trace_capacity)
    : clock_(clock),
      node_id_(std::move(node_id)),
      traces_(trace_capacity),
      slo_(metrics_, clock_),
      unfinished_(&metrics_.gauge(metric::kTraceUnfinished)),
      dropped_(&metrics_.counter(metric::kTraceDropped)),
      export_skipped_(&metrics_.counter(metric::kExportSkipped)) {
  // Ring evictions are trace loss too: surface them on the same counter
  // as abandoned contexts.
  traces_.set_on_evict([this](const TraceRecord&) { dropped_->add(); });
}

void Telemetry::set_trace_sampling(std::uint64_t every_n) {
  std::uint64_t every = every_n == 0 ? 1 : every_n;
  sample_every_.store(every, std::memory_order_relaxed);
  base_sample_every_.store(every, std::memory_order_relaxed);
  if (tail_gauge_ != nullptr) tail_gauge_->set(static_cast<std::int64_t>(every));
}

void Telemetry::enable_tail(TailSampler::Options options) {
  if (tail_ != nullptr) return;
  tail_ = std::make_unique<TailSampler>(metrics_, options);
  tail_->set_request_histogram(&metrics_.histogram(metric::kRequestSeconds));
  tail_gauge_ = &metrics_.gauge(metric::kTailSampleEvery);
  tail_gauge_->set(static_cast<std::int64_t>(sample_every_.load(std::memory_order_relaxed)));
}

void Telemetry::set_flight_recorder(std::shared_ptr<FlightRecorder> recorder) {
  flight_ = std::move(recorder);
  if (flight_ != nullptr) {
    flight_->set_counters(&metrics_.counter(metric::kFrEvents),
                          &metrics_.counter(metric::kFrDumps));
    flight_->set_metrics(&metrics_);
  }
}

std::string Telemetry::export_flight_record(const std::string& reason, bool force) {
  if (flight_ == nullptr) return "";
  return flight_->dump(reason, traces_.snapshot(), force);
}

bool Telemetry::should_sample() {
  std::uint64_t every = sample_every_.load(std::memory_order_relaxed);
  std::uint64_t seq = sample_seq_.fetch_add(1, std::memory_order_relaxed);
  return seq % every == 0;
}

TraceContext::Options Telemetry::trace_options() {
  TraceContext::Options options;
  options.node = node_id_;
  unfinished_->add();
  options.on_finish = [this] { unfinished_->sub(); };
  options.on_abandon = [this] {
    unfinished_->sub();
    dropped_->add();
  };
  return options;
}

TraceContext Telemetry::start_trace(std::string root_name) {
  return TraceContext(clock_, std::move(root_name), trace_options());
}

std::unique_ptr<TraceContext> Telemetry::make_trace(std::string root_name) {
  return std::make_unique<TraceContext>(clock_, std::move(root_name), trace_options());
}

std::unique_ptr<TraceContext> Telemetry::make_remote_trace(std::string root_name,
                                                           std::string trace_id,
                                                           std::uint64_t parent_span) {
  TraceContext::Options options = trace_options();
  options.remote_trace_id = std::move(trace_id);
  options.remote_parent_span = parent_span;
  return std::make_unique<TraceContext>(clock_, std::move(root_name), std::move(options));
}

std::unique_ptr<TraceContext> Telemetry::make_provisional_trace(std::string root_name) {
  TraceContext::Options options = trace_options();
  options.provisional = true;
  auto ctx = std::make_unique<TraceContext>(clock_, std::move(root_name), std::move(options));
  if (tail_ != nullptr) tail_->open(ctx->id());
  return ctx;
}

std::unique_ptr<TraceContext> Telemetry::make_remote_provisional(std::string root_name,
                                                                 std::string trace_id,
                                                                 std::uint64_t parent_span) {
  TraceContext::Options options = trace_options();
  options.provisional = true;
  options.remote_trace_id = std::move(trace_id);
  options.remote_parent_span = parent_span;
  auto ctx = std::make_unique<TraceContext>(clock_, std::move(root_name), std::move(options));
  if (tail_ != nullptr) tail_->open(ctx->id());
  return ctx;
}

void Telemetry::notify(const TraceRecord& record) {
  if (exporter_ != nullptr && !exporter_->export_trace(record)) export_skipped_->add();
  std::shared_ptr<const TraceListener> listener;
  {
    MutexLock lock(listener_mu_);
    listener = listener_;
  }
  if (listener != nullptr && *listener) (*listener)(record);
}

bool Telemetry::finish_record(TraceRecord& record) {
  if (tail_ == nullptr) return true;
  if (!tail_->classify(record)) return false;
  // A verdict on a *kept* record — provisional or head-sampled — is an
  // anomaly worth a flight-ring entry.
  if (!record.verdict.empty() && flight_ != nullptr) flight_->note_trace(record);
  return true;
}

void Telemetry::complete(TraceContext& trace) {
  TraceRecord record = trace.finish();
  if (!finish_record(record)) return;  // tail discarded a clean provisional
  notify(record);
  traces_.add(std::move(record));
}

TraceRecord Telemetry::complete_and_collect(TraceContext& trace) {
  TraceRecord record = trace.finish();
  if (finish_record(record)) {
    notify(record);
    traces_.add(record);
  }
  return record;
}

TraceRecord Telemetry::collect_provisional(TraceContext& trace) {
  // Identical to complete_and_collect — the provisional flag on the
  // record routes it through the tail gate, which retains locally only
  // when this hop itself saw a verdict. Kept as a named entry point so
  // serving layers state their intent.
  return complete_and_collect(trace);
}

void Telemetry::finish_provisional(PendingTrace& pending, const std::string& root_name,
                                   Duration latency, const std::string& status) {
  if (pending.ctx != nullptr) {
    // An outbound hop materialized the context: fold the accumulated
    // bits in and run the normal classify-at-complete path.
    if (pending.signals != 0) pending.ctx->add_signal(pending.signals);
    if (status != "ok") pending.ctx->fail(status);
    complete(*pending.ctx);
    return;
  }
  if (tail_ == nullptr) return;
  bool error = status != "ok";
  double latency_s = static_cast<double>(latency.count()) / 1e6;
  if (!tail_->quick_keep(pending.signals, error, latency_s)) {
    // The clean fast path: nothing anomalous, no context was ever built —
    // one counter bump and the request leaves no trace at all.
    tail_->count_quick_discard();
    return;
  }
  // Retention without a context: synthesize the single-span record a
  // materialized provisional would have produced, backdated by the
  // request's measured latency.
  TimePoint now = clock_.now();
  std::uint64_t seq = IdGenerator::next();
  TraceRecord record;
  record.id = to_hex(fnv1a(root_name, 0x9e3779b97f4a7c15ULL ^
                                          static_cast<std::uint64_t>(now.count()) ^
                                          (seq * 0x100000001b3ULL)));
  record.root = root_name;
  record.start = now - latency;
  record.duration = latency;
  record.status = status;
  record.provisional = true;
  record.signals = pending.signals;
  SpanRecord span;
  span.id = seq;
  span.parent_id = 0;
  span.name = root_name;
  span.node = node_id_;
  span.start = record.start;
  span.duration = latency;
  span.status = status;
  record.spans.push_back(std::move(span));
  if (!finish_record(record)) return;  // defensive: quick_keep said keep
  notify(record);
  traces_.add(std::move(record));
}

void Telemetry::set_trace_listener(std::function<void(const TraceRecord&)> listener) {
  MutexLock lock(listener_mu_);
  listener_ = std::make_shared<const TraceListener>(std::move(listener));
}

void Telemetry::set_exporter(std::shared_ptr<JsonlExporter> exporter) {
  exporter_ = std::move(exporter);
}

namespace {

bool matches_prefix(const std::string& name, const std::vector<std::string>& prefixes) {
  if (prefixes.empty()) return true;
  for (const auto& prefix : prefixes) {
    if (strings::starts_with(name, prefix)) return true;
  }
  return false;
}

}  // namespace

format::InfoRecord Telemetry::metrics_record(const std::string& keyword,
                                             const std::vector<std::string>& prefixes) const {
  format::InfoRecord record;
  record.keyword = keyword;
  record.generated_at = clock_.now();
  for (const MetricSnapshot& m : metrics_.snapshot()) {
    if (!matches_prefix(m.name, prefixes)) continue;
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
      case MetricSnapshot::Kind::kGauge:
        record.add(m.name, std::to_string(m.value));
        break;
      case MetricSnapshot::Kind::kHistogram: {
        const Histogram::Snapshot& h = *m.histogram;
        record.add(m.name + ":count", std::to_string(h.stats.count()));
        record.add(m.name + ":mean", strings::format("%.6f", h.stats.mean()));
        record.add(m.name + ":stddev", strings::format("%.6f", h.stats.stddev()));
        record.add(m.name + ":p50", strings::format("%.6f", h.quantile(0.5)));
        record.add(m.name + ":p95", strings::format("%.6f", h.quantile(0.95)));
        record.add(m.name + ":max", strings::format("%.6f", h.stats.max()));
        // Exemplars: the bucket's upper edge keys the attribute, the value
        // links straight back to a trace id (queryable via info=traces).
        for (std::size_t i = 0; i < h.exemplars.size(); ++i) {
          const Histogram::Exemplar& ex = h.exemplars[i];
          if (ex.trace_id.empty()) continue;
          std::string le =
              i < h.boundaries.size() ? strings::format("%g", h.boundaries[i]) : "inf";
          record.add(m.name + ":exemplar:" + le,
                     strings::format("%s@%.6f", ex.trace_id.c_str(), ex.value));
        }
        break;
      }
    }
  }
  return record;
}

format::InfoRecord Telemetry::traces_record(const std::string& keyword) const {
  format::InfoRecord record;
  record.keyword = keyword;
  record.generated_at = clock_.now();
  record.add("count", std::to_string(traces_.size()));
  record.add("completed", std::to_string(traces_.completed()));
  record.add("capacity", std::to_string(traces_.capacity()));
  for (const TraceRecord& trace : traces_.snapshot()) {
    record.add(trace.id + ":root", trace.root);
    record.add(trace.id + ":status", trace.status);
    record.add(trace.id + ":start_us", std::to_string(trace.start.count()));
    record.add(trace.id + ":duration_us", std::to_string(trace.duration.count()));
    record.add(trace.id + ":spans", std::to_string(trace.spans.size()));
    // Child spans (skip the root, already summarized above). id/parent
    // expose the stitched linkage, node the hop each span ran on.
    for (std::size_t i = 1; i < trace.spans.size(); ++i) {
      const SpanRecord& span = trace.spans[i];
      std::string line =
          strings::format("%s status=%s start_us=%lld duration_us=%lld "
                          "id=%s parent=%s node=%s",
                          span.name.c_str(), span.status.c_str(),
                          static_cast<long long>(span.start.count()),
                          static_cast<long long>(span.duration.count()),
                          to_hex(span.id).c_str(), to_hex(span.parent_id).c_str(),
                          span.node.empty() ? "-" : span.node.c_str());
      // Allocation attribution only when the profiler stamped the span —
      // keeps unprofiled output byte-identical to the PR 4 shape.
      if (span.allocs != 0 || span.alloc_bytes != 0) {
        line += strings::format(" allocs=%llu alloc_bytes=%llu",
                                static_cast<unsigned long long>(span.allocs),
                                static_cast<unsigned long long>(span.alloc_bytes));
      }
      record.add(trace.id + ":span." + std::to_string(i), std::move(line));
    }
  }
  return record;
}

format::InfoRecord Telemetry::slo_record(const std::string& keyword) {
  format::InfoRecord record;
  record.keyword = keyword;
  record.generated_at = clock_.now();
  std::vector<SloStatus> statuses = slo_.evaluate();
  apply_burn_feedback(statuses);
  record.add("count", std::to_string(statuses.size()));
  for (const SloStatus& s : statuses) {
    const std::string& n = s.objective.name;
    record.add(n + ":layer", s.objective.layer);
    record.add(n + ":kind",
               s.objective.kind == SloObjective::Kind::kLatency ? "latency" : "error_rate");
    record.add(n + ":metric", s.objective.metric);
    if (s.objective.kind == SloObjective::Kind::kLatency) {
      record.add(n + ":threshold_s", strings::format("%g", s.objective.threshold_seconds));
    }
    record.add(n + ":target", strings::format("%g", s.objective.target));
    record.add(n + ":good", std::to_string(s.good));
    record.add(n + ":total", std::to_string(s.total));
    record.add(n + ":compliance", strings::format("%.6f", s.compliance));
    record.add(n + ":budget_remaining", strings::format("%.6f", s.budget_remaining));
    record.add(n + ":alerting", s.alerting ? "true" : "false");
    for (const BurnStatus& b : s.burns) {
      record.add(n + ":burn." + b.rule.severity,
                 strings::format("short=%.3f long=%.3f factor=%.1f alerting=%s",
                                 b.short_burn, b.long_burn, b.rule.factor,
                                 b.alerting ? "true" : "false"));
    }
  }
  return record;
}

format::InfoRecord Telemetry::alerts_record(const std::string& keyword) {
  format::InfoRecord record;
  record.keyword = keyword;
  record.generated_at = clock_.now();
  std::vector<SloStatus> statuses = slo_.evaluate();
  apply_burn_feedback(statuses);
  std::string firing;
  std::size_t count = 0;
  for (const SloStatus& s : statuses) {
    if (!s.alerting) continue;
    ++count;
    if (!firing.empty()) firing += ",";
    firing += s.objective.name;
    record.add(s.objective.name + ":severity", s.severity);
    record.add(s.objective.name + ":compliance", strings::format("%.6f", s.compliance));
    record.add(s.objective.name + ":budget_remaining",
               strings::format("%.6f", s.budget_remaining));
  }
  record.add("count", std::to_string(count));
  record.add("firing", firing.empty() ? "none" : firing);
  return record;
}

void Telemetry::apply_burn_feedback(const std::vector<SloStatus>& statuses) {
  if (tail_ == nullptr) return;
  bool burning = false;
  bool paging = false;
  for (const SloStatus& s : statuses) {
    if (!s.alerting) continue;
    burning = true;
    if (s.severity == "page") paging = true;
  }
  std::uint64_t base = base_sample_every_.load(std::memory_order_relaxed);
  std::uint64_t cur = sample_every_.load(std::memory_order_relaxed);
  std::uint64_t next = cur;
  if (burning) {
    // Widen hard while the budget burns: 8× more head-sampled traces
    // (floor 1 = trace everything) so the incident's lead-up is dense.
    next = std::max<std::uint64_t>(1, base / 8);
  } else if (cur < base) {
    // Healthy again: halve the extra fidelity per evaluation until back
    // at the configured base — no cliff when the alert clears.
    next = std::min<std::uint64_t>(base, cur * 2);
  }
  if (next != cur) sample_every_.store(next, std::memory_order_relaxed);
  if (tail_gauge_ != nullptr) tail_gauge_->set(static_cast<std::int64_t>(next));
  // A page is the black-box moment: dump the flight ring (rate-limited
  // inside the recorder, so repeated evaluations don't spam files).
  if (paging && flight_ != nullptr) export_flight_record("slo-page");
}

format::InfoRecord Telemetry::flight_record(const std::string& keyword) {
  format::InfoRecord record;
  record.keyword = keyword;
  record.generated_at = clock_.now();
  record.add("enabled", flight_ != nullptr ? "true" : "false");
  record.add("tail", tail_ != nullptr ? "true" : "false");
  if (tail_ != nullptr) {
    record.add("tail:retained", std::to_string(tail_->retained()));
    record.add("tail:discarded", std::to_string(tail_->discarded()));
    record.add("tail:evicted", std::to_string(tail_->evicted()));
    record.add("tail:sample_every",
               std::to_string(sample_every_.load(std::memory_order_relaxed)));
    record.add("tail:base_sample_every",
               std::to_string(base_sample_every_.load(std::memory_order_relaxed)));
    double threshold = tail_->slow_threshold_seconds();
    record.add("tail:slow_threshold_s",
               std::isinf(threshold) ? "inf" : strings::format("%.6f", threshold));
  }
  if (flight_ != nullptr) {
    std::vector<FlightRecorder::Event> events = flight_->events();
    record.add("events", std::to_string(events.size()));
    record.add("dumps", std::to_string(flight_->dumps()));
    std::string last = flight_->last_path();
    record.add("last_dump", last.empty() ? "none" : last);
    for (std::size_t i = 0; i < events.size(); ++i) {
      const FlightRecorder::Event& e = events[i];
      record.add("event." + std::to_string(i),
                 strings::format("%s at_us=%lld %s", e.kind.c_str(),
                                 static_cast<long long>(e.at.count()), e.detail.c_str()));
    }
  }
  return record;
}

namespace {

/// "<name>" for named locks, "<unnamed>" for the rest — profile rows need
/// a stable non-empty key.
const char* lock_label(const LockContentionRegistry::Entry& e) {
  return e.name.empty() ? "<unnamed>" : e.name.c_str();
}

}  // namespace

format::InfoRecord Telemetry::profile_record(const std::string& keyword) {
  // Mirror the contended-wait delta into the counter before reporting, so
  // `metrics` and `profile` agree from the same query.
  std::uint64_t delta = profiler_.take_unsynced_lock_waits();
  if (delta != 0) metrics_.counter(metric::kProfileLockWaits).add(delta);

  format::InfoRecord record;
  record.keyword = keyword;
  record.generated_at = clock_.now();
  record.add("enabled", profiler_.enabled() ? "true" : "false");
  record.add("alloc_counting", alloc_internal::counting_enabled() ? "true" : "false");

  std::vector<LockContentionRegistry::Entry> locks = LockContentionRegistry::instance().snapshot();
  std::uint64_t total_wait_ns = 0;
  for (const auto& e : locks) total_wait_ns += e.total_ns;
  record.add("locks:contended", std::to_string(locks.size()));
  record.add("locks:waits", std::to_string(LockContentionRegistry::instance().total_waits()));
  record.add("locks:total_wait_us", std::to_string(total_wait_ns / 1000));
  // snapshot() is sorted hottest-first; the summary keeps the top 3.
  for (std::size_t i = 0; i < locks.size() && i < 3; ++i) {
    const auto& e = locks[i];
    record.add(strings::format("locks:hot.%zu", i + 1),
               strings::format("%s waits=%llu total_us=%llu max_us=%llu", lock_label(e),
                               static_cast<unsigned long long>(e.waits),
                               static_cast<unsigned long long>(e.total_ns / 1000),
                               static_cast<unsigned long long>(e.max_ns / 1000)));
  }

  std::vector<std::pair<std::string, Profiler::KeywordAlloc>> kws = profiler_.keyword_allocs();
  record.add("alloc:keywords", std::to_string(kws.size()));
  for (std::size_t i = 0; i < kws.size() && i < 3; ++i) {
    const auto& [kw, agg] = kws[i];
    record.add(strings::format("alloc:hot.%zu", i + 1),
               strings::format("%s samples=%llu allocs=%llu bytes=%llu max_bytes=%llu",
                               kw.c_str(), static_cast<unsigned long long>(agg.samples),
                               static_cast<unsigned long long>(agg.allocs),
                               static_cast<unsigned long long>(agg.bytes),
                               static_cast<unsigned long long>(agg.max_bytes)));
  }

  // One digest line per attached pool; the summary must not close the
  // high-water window (that is profile.pool's job).
  for (const auto& [name, stats] : profiler_.pool_stats(/*reset_window=*/false)) {
    record.add("pool:" + name,
               strings::format("depth=%zu window_highwater=%zu submitted=%llu "
                               "executed=%llu shed=%llu workers=%zu",
                               stats.depth, stats.window_highwater,
                               static_cast<unsigned long long>(stats.submitted),
                               static_cast<unsigned long long>(stats.executed),
                               static_cast<unsigned long long>(stats.shed),
                               stats.workers.size()));
  }
  return record;
}

format::InfoRecord Telemetry::profile_locks_record(const std::string& keyword) {
  std::uint64_t delta = profiler_.take_unsynced_lock_waits();
  if (delta != 0) metrics_.counter(metric::kProfileLockWaits).add(delta);

  format::InfoRecord record;
  record.keyword = keyword;
  record.generated_at = clock_.now();
  std::vector<LockContentionRegistry::Entry> locks = LockContentionRegistry::instance().snapshot();
  record.add("count", std::to_string(locks.size()));
  for (const auto& e : locks) {
    std::string label = lock_label(e);
    std::uint64_t mean_us = e.waits == 0 ? 0 : e.total_ns / e.waits / 1000;
    record.add(label,
               strings::format("rank=%d waits=%llu total_us=%llu max_us=%llu mean_us=%llu",
                               e.rank, static_cast<unsigned long long>(e.waits),
                               static_cast<unsigned long long>(e.total_ns / 1000),
                               static_cast<unsigned long long>(e.max_ns / 1000),
                               static_cast<unsigned long long>(mean_us)));
    for (std::size_t b = 0; b < e.buckets.size(); ++b) {
      if (e.buckets[b] == 0) continue;
      std::string le = b < LockContentionRegistry::kWaitBucketEdgesUs.size()
                           ? std::to_string(LockContentionRegistry::kWaitBucketEdgesUs[b])
                           : "inf";
      record.add(label + ":bucket." + le, std::to_string(e.buckets[b]));
    }
    if (!e.exemplar_trace.empty()) record.add(label + ":exemplar", e.exemplar_trace);
  }
  return record;
}

format::InfoRecord Telemetry::profile_pool_record(const std::string& keyword) {
  format::InfoRecord record;
  record.keyword = keyword;
  record.generated_at = clock_.now();
  std::vector<std::pair<std::string, ThreadPool::Stats>> pools =
      profiler_.pool_stats(/*reset_window=*/true);
  record.add("count", std::to_string(pools.size()));
  for (const auto& [name, stats] : pools) {
    record.add(name + ":depth", std::to_string(stats.depth));
    record.add(name + ":highwater", std::to_string(stats.highwater));
    record.add(name + ":window_highwater", std::to_string(stats.window_highwater));
    record.add(name + ":submitted", std::to_string(stats.submitted));
    record.add(name + ":executed", std::to_string(stats.executed));
    record.add(name + ":shed", std::to_string(stats.shed));
    for (std::size_t i = 0; i < stats.workers.size(); ++i) {
      record.add(strings::format("%s:worker.%zu", name.c_str(), i),
                 strings::format("tasks=%llu busy_us=%lld",
                                 static_cast<unsigned long long>(stats.workers[i].tasks),
                                 static_cast<long long>(stats.workers[i].busy.count())));
    }
    // The windowed high-water doubles as a gauge so dashboards reading
    // only `metrics` see current queue pressure too.
    metrics_.gauge(metric::kPoolQueueHighwaterWindow)
        .set(static_cast<std::int64_t>(stats.window_highwater));
  }
  return record;
}

bool Telemetry::export_profile_snapshot() {
  if (exporter_ == nullptr) return false;
  // Flatten here: the exporter takes name/value pairs, not an
  // InfoRecord — obs must not depend on the format layer.
  const format::InfoRecord record = profile_record("profile");
  std::vector<std::pair<std::string, std::string>> attrs;
  attrs.reserve(record.attributes.size());
  for (const format::Attribute& attr : record.attributes) {
    attrs.emplace_back(attr.name, attr.value);
  }
  exporter_->export_profile(attrs, clock_.now());
  return true;
}

ScopedTrace::ScopedTrace(const std::shared_ptr<Telemetry>& telemetry, std::string root_name)
    : telemetry_(telemetry) {
  if (telemetry_ == nullptr) return;
  if (!active_trace().empty()) return;  // join the enclosing trace instead
  if (!telemetry_->should_sample()) {
    suppress_.emplace();
    return;
  }
  ctx_ = telemetry_->make_trace(std::move(root_name));
  scope_.emplace(*ctx_);
}

ScopedTrace::~ScopedTrace() {
  scope_.reset();  // restore the thread-local before completing
  if (ctx_ != nullptr) telemetry_->complete(*ctx_);
}

void ScopedTrace::fail(std::string status) {
  if (ctx_ != nullptr) ctx_->fail(std::move(status));
}

}  // namespace ig::obs
