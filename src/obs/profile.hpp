// Continuous in-process profiler — the "where does time and memory go"
// layer the MDS2 performance studies say an information service dies
// without. Three always-cheap attribution planes, all queryable through
// InfoGram itself (the `profile` keyword family):
//
//  1. Lock contention. LockContentionRegistry is the process-global
//     consumer of the sync_internal contention listener: every contended
//     ig::Mutex / ig::SharedMutex acquisition records its wait against
//     the lock's PR-5 report name and rank — wait-time histogram, max,
//     and a trace-id exemplar captured from the thread's active trace
//     when a new slowest wait lands. Uncontended acquisitions cost one
//     extra try_lock and never reach this code.
//
//  2. Scheduler. ThreadPool now timestamps enqueue→dequeue (queue wait)
//     and dequeue→done (run time); the Profiler holds per-pool snapshot
//     callbacks so `profile.pool` reports windowed queue pressure and
//     worker utilization without src/common ever depending on src/obs.
//
//  3. Allocation. AllocScope reads the thread-local counters maintained
//     by the global operator new/delete replacement (alloc_hooks.cpp,
//     gated on IG_PROFILE_ALLOC): open a scope, do work, read the delta.
//     InfoGramService opens one per *sampled* request (spans carry
//     allocs/bytes), SystemMonitor one per keyword resolution on the
//     same sampled requests — attribution rides the trace-sampling
//     decision so unsampled traffic pays the tracing baseline and
//     nothing more (the overhead budget of continuous profiling).
//
// Everything here is designed for the hot path to stay flat: counters
// are thread-local or lock-free; the registry's own mutex is unranked
// (its handler runs under arbitrary ranked locks) and re-entry-guarded
// (the registry mutex can itself be contended).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/sync.hpp"
#include "common/thread_pool.hpp"

namespace ig::obs {

/// Well-known profiler metric names; same lint contract as the constants
/// in telemetry.hpp (instrumentation site + DESIGN.md table row).
namespace metric {
/// Counter mirroring LockContentionRegistry's total contended waits
/// (synced by delta whenever a profile record is built).
inline constexpr const char* kProfileLockWaits = "obs.profile.lock.waits";
/// Queue-wait histogram for the request pool (enqueue→dequeue seconds).
inline constexpr const char* kProfilePoolWaitSeconds = "obs.profile.pool.wait.seconds";
/// Per-request allocation profile (operator-new calls / bytes per
/// request), observed by InfoGramService's per-request AllocScope.
inline constexpr const char* kProfileRequestAllocs = "obs.profile.request.allocs";
inline constexpr const char* kProfileRequestAllocBytes = "obs.profile.request.alloc.bytes";
}  // namespace metric

namespace alloc_internal {

/// Thread-local allocation counters bumped by the operator new/delete
/// replacement in alloc_hooks.cpp. Constant-initialized POD: safe to
/// touch from the very first allocation, before any dynamic TLS init.
struct ThreadAllocCounters {
  std::uint64_t allocs = 0;  ///< operator-new calls on this thread
  std::uint64_t bytes = 0;   ///< bytes requested (not capacity) on this thread
  std::uint64_t frees = 0;   ///< operator-delete calls on this thread
};

extern thread_local constinit ThreadAllocCounters t_counters;

/// True when the build replaces global operator new/delete
/// (IG_PROFILE_ALLOC, default ON); false means AllocScope deltas always
/// read zero. Defined in alloc_hooks.cpp either way.
bool counting_enabled();

}  // namespace alloc_internal

/// Delta reader over the thread's allocation counters: construct, do
/// work, read allocs()/bytes(). Costs two thread-local loads to open and
/// two subtractions to read; nests freely (each scope sees its own
/// deltas, inner work counts in both). Thread-local by nature — work a
/// fan_out ships to other workers is invisible to the submitting
/// thread's scope, which is why SystemMonitor opens a per-keyword scope
/// on the resolving thread instead of relying on the request scope.
class AllocScope {
 public:
  AllocScope()
      : start_allocs_(alloc_internal::t_counters.allocs),
        start_bytes_(alloc_internal::t_counters.bytes) {}

  std::uint64_t allocs() const { return alloc_internal::t_counters.allocs - start_allocs_; }
  std::uint64_t bytes() const { return alloc_internal::t_counters.bytes - start_bytes_; }

 private:
  std::uint64_t start_allocs_;
  std::uint64_t start_bytes_;
};

/// Process-global lock-contention aggregate, keyed by the lock's report
/// name (locks are process-global resources — one registry, not one per
/// Telemetry). Hot path: one unordered_map upsert under an unranked
/// mutex, only ever paid by acquisitions that already blocked.
class LockContentionRegistry {
 public:
  /// Wait-time histogram bucket upper edges, microseconds (+inf last).
  static constexpr std::array<std::uint64_t, 6> kWaitBucketEdgesUs = {1,    10,    100,
                                                                      1000, 10000, 100000};

  struct Entry {
    std::string name;  ///< the lock's PR-5 report name ("" = unnamed)
    int rank = 0;
    std::uint64_t waits = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
    /// Counts per kWaitBucketEdgesUs bucket, +inf overflow last.
    std::array<std::uint64_t, kWaitBucketEdgesUs.size() + 1> buckets{};
    /// Trace id active when the slowest wait so far was recorded ("" =
    /// no trace was active at any maximum).
    std::string exemplar_trace;
  };

  static LockContentionRegistry& instance();

  /// Install this registry as the process contention listener.
  /// Idempotent; call at service wiring time (InfoGramService does, when
  /// profiling is enabled).
  static void install();
  /// Remove the listener (tests that want a quiet process).
  static void uninstall();

  /// Listener entry: aggregate one contended wait. Re-entry-safe.
  void record(int rank, const char* name, std::uint64_t wait_ns);

  /// Entries merged by (name, rank) — the same report name appears once
  /// even when many lock instances (or many TUs' string literals) share
  /// it — sorted by total wait, hottest first.
  std::vector<Entry> snapshot() const;

  /// Total contended waits ever recorded (lock-free read).
  std::uint64_t total_waits() const { return total_waits_.load(std::memory_order_relaxed); }

  /// Drop all aggregates (tests/benches isolating a workload).
  void reset();

 private:
  LockContentionRegistry() = default;

  /// Keyed by name *pointer* on the hot path (a string compare per
  /// contended wait would double the cost); snapshot() merges by content.
  mutable Mutex mu_{lock_rank::kUnranked, "obs.LockContentionRegistry"};
  std::unordered_map<const void*, Entry> entries_ IG_GUARDED_BY(mu_);
  std::atomic<std::uint64_t> total_waits_{0};
};

/// Per-Telemetry profiler state: the per-keyword allocation profile and
/// the attached pools' snapshot callbacks. Owned by Telemetry; enabled
/// explicitly by service wiring (InfoGramConfig::profiling) so a
/// telemetry-carrying stack can still run with the profiler dark — the
/// bench_profile_overhead baseline.
class Profiler {
 public:
  struct KeywordAlloc {
    std::uint64_t samples = 0;
    std::uint64_t allocs = 0;
    std::uint64_t bytes = 0;
    std::uint64_t max_bytes = 0;  ///< worst single resolution
  };

  /// Pool snapshot callback; `reset_window` true closes the windowed
  /// highwater (ThreadPool::snapshot_and_reset_window).
  using PoolStatsFn = std::function<ThreadPool::Stats(bool reset_window)>;

  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Aggregate one keyword resolution's allocation delta. No-op while
  /// disabled.
  void record_alloc(const std::string& keyword, std::uint64_t allocs, std::uint64_t bytes);

  /// Attach/detach a pool under a report name. The owner of the pool
  /// must detach before destroying it (InfoGramService detaches in its
  /// destructor — the Telemetry, and thus this Profiler, can outlive the
  /// service).
  void attach_pool(const std::string& name, PoolStatsFn fn);
  void detach_pool(const std::string& name);

  /// Keyword → aggregate, sorted by bytes, hottest first.
  std::vector<std::pair<std::string, KeywordAlloc>> keyword_allocs() const;

  /// Every attached pool's stats, by report name.
  std::vector<std::pair<std::string, ThreadPool::Stats>> pool_stats(bool reset_window) const;

  /// Contended-wait count not yet mirrored to the kProfileLockWaits
  /// counter; advances the sync mark (telemetry.cpp's record builders).
  std::uint64_t take_unsynced_lock_waits();

  void reset();

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> synced_lock_waits_{0};
  mutable Mutex mu_{lock_rank::kProfiler, "obs.Profiler"};
  std::unordered_map<std::string, KeywordAlloc> keyword_allocs_ IG_GUARDED_BY(mu_);
  std::unordered_map<std::string, PoolStatsFn> pools_ IG_GUARDED_BY(mu_);
};

}  // namespace ig::obs
