#include "obs/trace.hpp"

#include <algorithm>
#include <limits>
#include <unordered_set>
#include <utility>

#include "common/id.hpp"

namespace ig::obs {

TraceContext::TraceContext(const Clock& clock, std::string root_name)
    : TraceContext(clock, std::move(root_name), Options{}) {}

TraceContext::TraceContext(const Clock& clock, std::string root_name, Options options)
    : clock_(clock),
      node_(std::move(options.node)),
      provisional_(options.provisional),
      on_finish_(std::move(options.on_finish)),
      on_abandon_(std::move(options.on_abandon)) {
  TimePoint now = clock_.now();
  // Deterministic under a VirtualClock: the id mixes the monotonic process
  // counter with the injected clock's time, never the wall clock.
  std::uint64_t seq = IdGenerator::next();
  if (options.remote_trace_id.empty()) {
    id_ = to_hex(fnv1a(root_name, 0x9e3779b97f4a7c15ULL ^
                                      static_cast<std::uint64_t>(now.count()) ^
                                      (seq * 0x100000001b3ULL)));
  } else {
    // Joining a propagated trace: keep the originator's id so every hop's
    // spans stitch into one record, and parent our root span under the
    // caller's hop span.
    id_ = std::move(options.remote_trace_id);
    remote_ = true;
  }
  record_.id = id_;
  record_.root = root_name;
  record_.start = now;
  record_.provisional = provisional_;

  SpanRecord root;
  root.id = seq;
  root.parent_id = remote_ ? options.remote_parent_span : 0;
  root.name = std::move(root_name);
  root.node = node_;
  root.start = now;
  record_.spans.push_back(std::move(root));
}

TraceContext::~TraceContext() {
  bool abandoned = false;
  {
    MutexLock lock(mu_);
    abandoned = !finished_;
  }
  if (abandoned && on_abandon_) on_abandon_();
}

std::uint64_t TraceContext::root_span_id() const {
  MutexLock lock(mu_);
  // Spent contexts (finish() moved the spans out) have no root to offer.
  return record_.spans.empty() ? 0 : record_.spans.front().id;
}

TraceContext::Span::Span(Span&& other) noexcept
    : ctx_(other.ctx_), index_(other.index_), id_(other.id_) {
  other.ctx_ = nullptr;
}

TraceContext::Span::~Span() {
  if (ctx_ != nullptr) ctx_->end_span(index_, "ok");
}

void TraceContext::Span::end(std::string status) {
  if (ctx_ == nullptr) return;
  ctx_->end_span(index_, std::move(status));
  ctx_ = nullptr;
}

TraceContext::Span TraceContext::span(std::string name, std::uint64_t parent_id) {
  SpanRecord span;
  span.id = IdGenerator::next();
  span.name = std::move(name);
  span.node = node_;
  span.start = clock_.now();
  MutexLock lock(mu_);
  if (finished_) {
    // Spent context: hand back a detached handle (end() is a no-op).
    return Span(nullptr, 0, span.id);
  }
  span.parent_id = parent_id != 0 ? parent_id : record_.spans.front().id;
  record_.spans.push_back(std::move(span));
  return Span(this, record_.spans.size() - 1, record_.spans.back().id);
}

void TraceContext::adopt(std::vector<SpanRecord> spans) {
  MutexLock lock(mu_);
  if (finished_) return;
  std::unordered_set<std::uint64_t> have;
  have.reserve(record_.spans.size() + spans.size());
  for (const SpanRecord& s : record_.spans) have.insert(s.id);
  for (SpanRecord& s : spans) {
    if (!have.insert(s.id).second) continue;
    record_.spans.push_back(std::move(s));
  }
}

void TraceContext::end_span(std::size_t index, std::string status) {
  TimePoint now = clock_.now();
  MutexLock lock(mu_);
  if (index >= record_.spans.size()) return;
  SpanRecord& span = record_.spans[index];
  span.duration = now - span.start;
  span.status = std::move(status);
}

void TraceContext::fail(std::string status) {
  MutexLock lock(mu_);
  record_.status = std::move(status);
}

void TraceContext::add_signal(std::uint32_t bits) {
  if (bits == 0) return;
  MutexLock lock(mu_);
  record_.signals |= bits;
}

std::uint32_t TraceContext::signals() const {
  MutexLock lock(mu_);
  return record_.signals;
}

void TraceContext::set_span_alloc(std::uint64_t span_id, std::uint64_t allocs,
                                  std::uint64_t bytes) {
  MutexLock lock(mu_);
  if (finished_ || record_.spans.empty()) return;
  if (span_id == 0) span_id = record_.spans.front().id;
  for (SpanRecord& span : record_.spans) {
    if (span.id == span_id) {
      span.allocs = allocs;
      span.alloc_bytes = bytes;
      return;
    }
  }
}

TraceRecord TraceContext::finish() {
  TimePoint now = clock_.now();
  bool first = false;
  TraceRecord out;
  {
    MutexLock lock(mu_);
    if (!finished_) {
      finished_.store(true, std::memory_order_release);
      first = true;
      record_.duration = now - record_.start;
      SpanRecord& root = record_.spans.front();
      root.duration = record_.duration;
      root.status = record_.status;
      // The context is spent: hand the record over instead of copying it
      // (completion is per-request hot path). A second finish() returns
      // an empty record.
      out = std::move(record_);
    }
  }
  if (first && on_finish_) on_finish_();
  return out;
}

TraceStore::TraceStore(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

namespace {

/// Merge `incoming` into the retained `base` segment for the same trace
/// id: dedupe spans by id, let the segment whose root span has parent 0
/// own the trace-level fields, widen the duration to cover both, and keep
/// the first non-"ok" status.
void merge_segments(TraceRecord& base, TraceRecord&& incoming) {
  std::unordered_set<std::uint64_t> have;
  have.reserve(base.spans.size() + incoming.spans.size());
  for (const SpanRecord& s : base.spans) have.insert(s.id);
  for (SpanRecord& s : incoming.spans) {
    if (!have.insert(s.id).second) continue;
    base.spans.push_back(std::move(s));
  }
  // The origin segment (root span with no remote parent) names the trace.
  bool incoming_is_origin =
      !incoming.spans.empty() && incoming.spans.front().parent_id == 0;
  bool base_is_origin = !base.spans.empty() && base.spans.front().parent_id == 0;
  if (incoming_is_origin && !base_is_origin) {
    base.root = incoming.root;
    // Keep the origin's root span at the front (traces_record treats
    // spans[0] as the summary line).
    auto it = std::find_if(base.spans.begin(), base.spans.end(),
                           [&](const SpanRecord& s) { return s.id == incoming.spans.front().id; });
    if (it != base.spans.end()) std::rotate(base.spans.begin(), it, it + 1);
  }
  TimePoint start = std::min(base.start, incoming.start);
  TimePoint end = std::max(base.start + base.duration, incoming.start + incoming.duration);
  base.start = start;
  base.duration = end - start;
  if (base.status == "ok" && incoming.status != "ok") base.status = incoming.status;
  // Tail verdict plumbing: signals accumulate across segments, the first
  // verdict sticks, and a trace stays provisional only while every
  // segment is.
  base.signals |= incoming.signals;
  if (base.verdict.empty()) base.verdict = std::move(incoming.verdict);
  base.provisional = base.provisional && incoming.provisional;
}

}  // namespace

void TraceStore::add(TraceRecord record) {
  std::vector<TraceRecord> evicted;
  {
    MutexLock lock(mu_);
    auto it = index_.find(record.id);
    if (it != index_.end()) {
      // Another hop of a trace we already hold: stitch, don't re-count.
      merge_segments(*it->second, std::move(record));
    } else {
      ++completed_;
      traces_.push_back(std::move(record));
      index_.emplace(traces_.back().id, &traces_.back());
      while (traces_.size() > capacity_) {
        index_.erase(traces_.front().id);
        evicted.push_back(std::move(traces_.front()));
        traces_.pop_front();
      }
    }
  }
  if (on_evict_) {
    for (const TraceRecord& gone : evicted) on_evict_(gone);
  }
}

std::vector<TraceRecord> TraceStore::snapshot() const {
  MutexLock lock(mu_);
  return {traces_.begin(), traces_.end()};
}

std::vector<TraceRecord> TraceStore::find(const std::string& id) const {
  MutexLock lock(mu_);
  std::vector<TraceRecord> out;
  for (const TraceRecord& t : traces_) {
    if (t.id == id) out.push_back(t);
  }
  return out;
}

std::size_t TraceStore::size() const {
  MutexLock lock(mu_);
  return traces_.size();
}

std::uint64_t TraceStore::completed() const {
  MutexLock lock(mu_);
  return completed_;
}

void TraceStore::set_on_evict(std::function<void(const TraceRecord&)> on_evict) {
  // Wiring-time only (before traffic), like set_trace_listener.
  on_evict_ = std::move(on_evict);
}

const char* verdict_name(std::uint32_t signals) {
  // Precedence: the hard failure outranks the mechanism that contained
  // it (an error that also tripped the breaker is an "error" trace).
  if (signals & kSignalError) return "error";
  if (signals & kSignalDeadline) return "deadline";
  if (signals & kSignalBreaker) return "breaker";
  if (signals & kSignalFailover) return "failover";
  if (signals & kSignalDegraded) return "degraded";
  if (signals & kSignalRetry) return "retry";
  if (signals & kSignalSlow) return "slow";
  return "";
}

TailSampler::TailSampler(MetricsRegistry& metrics) : TailSampler(metrics, Options{}) {}

TailSampler::TailSampler(MetricsRegistry& metrics, Options options)
    : options_(options),
      retained_(&metrics.counter(metric::kTailRetained)),
      discarded_(&metrics.counter(metric::kTailDiscarded)),
      evicted_(&metrics.counter(metric::kTailEvicted)),
      slow_threshold_s_(std::numeric_limits<double>::infinity()) {
  if (options_.holding_capacity == 0) options_.holding_capacity = 1;
  if (options_.refresh_every == 0) options_.refresh_every = 1;
}

void TailSampler::set_request_histogram(const Histogram* histogram) {
  // Wiring-time only (before traffic), like set_on_evict.
  request_histogram_ = histogram;
}

void TailSampler::open(const std::string& id) {
  std::uint64_t evictions = 0;
  {
    MutexLock lock(mu_);
    auto [it, inserted] = ring_.emplace(id, RingState::kPending);
    (void)it;
    if (!inserted) return;  // re-opened id keeps its existing state
    order_.push_back(id);
    while (order_.size() > options_.holding_capacity) {
      ring_.erase(order_.front());
      order_.pop_front();
      ++evictions;
    }
  }
  if (evictions != 0) evicted_->add(evictions);
}

TailSampler::RingState TailSampler::state(const std::string& id) const {
  MutexLock lock(mu_);
  auto it = ring_.find(id);
  return it == ring_.end() ? RingState::kUnknown : it->second;
}

void TailSampler::mark(const std::string& id, RingState state) {
  MutexLock lock(mu_);
  auto it = ring_.find(id);
  if (it != ring_.end()) it->second = state;
}

double TailSampler::threshold_from(const Histogram::Snapshot& snapshot) const {
  if (snapshot.stats.count() < options_.min_samples) {
    return std::numeric_limits<double>::infinity();
  }
  return std::max(snapshot.quantile(0.99) * options_.slow_factor, options_.min_slow_seconds);
}

IG_STATIC_FAST_PATH
void TailSampler::maybe_refresh_threshold() {
  if (request_histogram_ == nullptr) return;
  std::uint64_t n = checks_.fetch_add(1, std::memory_order_relaxed);
  if (n % options_.refresh_every != 0) return;
  // quantile_now/count_now read the live atomic buckets — no
  // Histogram::snapshot(), whose exemplar mutex and vector copies
  // would put a lock and allocations on the quick_keep fast path.
  double threshold = std::numeric_limits<double>::infinity();
  if (request_histogram_->count_now() >= options_.min_samples) {
    threshold = std::max(request_histogram_->quantile_now(0.99) * options_.slow_factor,
                         options_.min_slow_seconds);
  }
  slow_threshold_s_.store(threshold, std::memory_order_relaxed);
}

double TailSampler::slow_threshold_seconds() {
  maybe_refresh_threshold();
  return slow_threshold_s_.load(std::memory_order_relaxed);
}

IG_STATIC_FAST_PATH
bool TailSampler::quick_keep(std::uint32_t signals, bool error, double latency_seconds) {
  maybe_refresh_threshold();
  if (signals != 0 || error) return true;
  return latency_seconds > slow_threshold_s_.load(std::memory_order_relaxed);
}

bool TailSampler::classify(TraceRecord& record) {
  maybe_refresh_threshold();
  std::uint32_t signals = record.signals;
  if (record.status != "ok") signals |= kSignalError;
  double latency_s = static_cast<double>(record.duration.count()) / 1e6;
  if (latency_s > slow_threshold_s_.load(std::memory_order_relaxed)) {
    signals |= kSignalSlow;
  }
  record.signals = signals;
  const char* verdict = verdict_name(signals);
  if (*verdict != '\0') {
    record.verdict = verdict;
    if (record.provisional) {
      mark(record.id, RingState::kRetained);
      retained_->add();
    }
    return true;
  }
  if (!record.provisional) return true;  // head-sampled: annotation only
  // No verdict of its own: the origin segment discards; a late segment
  // stitches only when the ring shows its origin retained — a discarded
  // (or long-gone) trace id must not be resurrected by remote spans.
  RingState prior = state(record.id);
  if (prior == RingState::kRetained) return true;
  if (prior == RingState::kPending) mark(record.id, RingState::kDiscarded);
  discarded_->add();
  return false;
}

}  // namespace ig::obs
