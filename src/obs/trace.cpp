#include "obs/trace.hpp"

#include "common/id.hpp"

namespace ig::obs {

TraceContext::TraceContext(const Clock& clock, std::string root_name) : clock_(clock) {
  TimePoint now = clock_.now();
  // Deterministic under a VirtualClock: the id mixes the monotonic process
  // counter with the injected clock's time, never the wall clock.
  std::uint64_t seq = IdGenerator::next();
  id_ = to_hex(fnv1a(root_name + ":" + std::to_string(seq),
                     0x9e3779b97f4a7c15ULL ^ static_cast<std::uint64_t>(now.count())));
  record_.id = id_;
  record_.root = root_name;
  record_.start = now;

  SpanRecord root;
  root.id = seq;
  root.parent_id = 0;
  root.name = std::move(root_name);
  root.start = now;
  record_.spans.push_back(std::move(root));
}

TraceContext::Span::Span(Span&& other) noexcept
    : ctx_(other.ctx_), index_(other.index_), id_(other.id_) {
  other.ctx_ = nullptr;
}

TraceContext::Span::~Span() {
  if (ctx_ != nullptr) ctx_->end_span(index_, "ok");
}

void TraceContext::Span::end(std::string status) {
  if (ctx_ == nullptr) return;
  ctx_->end_span(index_, std::move(status));
  ctx_ = nullptr;
}

TraceContext::Span TraceContext::span(std::string name, std::uint64_t parent_id) {
  SpanRecord span;
  span.id = IdGenerator::next();
  span.name = std::move(name);
  span.start = clock_.now();
  std::lock_guard lock(mu_);
  span.parent_id = parent_id != 0 ? parent_id : record_.spans.front().id;
  if (finished_) {
    // Spent context: hand back a detached handle (end() is a no-op).
    return Span(nullptr, 0, span.id);
  }
  record_.spans.push_back(std::move(span));
  return Span(this, record_.spans.size() - 1, record_.spans.back().id);
}

void TraceContext::end_span(std::size_t index, std::string status) {
  TimePoint now = clock_.now();
  std::lock_guard lock(mu_);
  if (index >= record_.spans.size()) return;
  SpanRecord& span = record_.spans[index];
  span.duration = now - span.start;
  span.status = std::move(status);
}

void TraceContext::fail(std::string status) {
  std::lock_guard lock(mu_);
  record_.status = std::move(status);
}

TraceRecord TraceContext::finish() {
  TimePoint now = clock_.now();
  std::lock_guard lock(mu_);
  if (!finished_) {
    finished_ = true;
    record_.duration = now - record_.start;
    SpanRecord& root = record_.spans.front();
    root.duration = record_.duration;
    root.status = record_.status;
  }
  return record_;
}

bool TraceContext::finished() const {
  std::lock_guard lock(mu_);
  return finished_;
}

TraceStore::TraceStore(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

void TraceStore::add(TraceRecord record) {
  std::lock_guard lock(mu_);
  ++completed_;
  traces_.push_back(std::move(record));
  while (traces_.size() > capacity_) traces_.pop_front();
}

std::vector<TraceRecord> TraceStore::snapshot() const {
  std::lock_guard lock(mu_);
  return {traces_.begin(), traces_.end()};
}

std::size_t TraceStore::size() const {
  std::lock_guard lock(mu_);
  return traces_.size();
}

std::uint64_t TraceStore::completed() const {
  std::lock_guard lock(mu_);
  return completed_;
}

}  // namespace ig::obs
