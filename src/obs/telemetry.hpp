// Telemetry — the bundle every instrumented layer shares.
//
// One Telemetry instance per service deployment carries the metrics
// registry, the trace ring buffer, the SLO engine and the clock.
// Components receive it as a nullable shared_ptr and no-op without it, so
// observability is strictly opt-in and costs nothing when absent.
//
// The InfoRecord builders here are what make the telemetry *self-
// describing* in the paper's sense: the `obs` provider family
// (src/info/obs_provider.hpp) exposes them as ordinary keywords, so
// `info=metrics` / `info=traces` / `info=slo` / `info=alerts` queries
// flow through the exact xRSL + SystemMonitor + LDIF/XML path every
// other keyword uses, and show up in `info=schema` reflection like any
// provider.
//
// Distributed additions (see src/obs/propagation.hpp): each Telemetry
// carries a node id that tags every span it records, a deterministic
// counter-based sampler deciding which root traces are recorded (the
// decision propagates — an unsampled trace is unsampled on every hop),
// and self-accounting: the `obs.trace.unfinished` gauge tracks open
// contexts and `obs.trace.dropped` counts abandoned contexts plus ring
// evictions, so the observability layer reports its own blind spots.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/sync.hpp"
// analyze-allow(layering): the *_record builders are Telemetry's query
// interface — they read registry/trace/profiler internals no other layer
// may see, and InfoRecord is the one shape info= queries return. Moving
// them up a layer would mean exporting those internals instead.
#include "format/record.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/propagation.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"

namespace ig::obs {

/// Production default for root-trace sampling, applied by service wiring
/// (InfoGramConfig::trace_sample_every): record 1 in 64 root traces.
/// Metrics and SLOs keep full fidelity regardless — sampling only decides
/// which requests additionally retain a span tree. A full trace cycle
/// costs on the order of a microsecond; on InfoGram's µs-scale in-process
/// pipeline, tracing every request would dominate the request itself,
/// so the default amortizes it below the noise floor while exemplars and
/// multi-hop stitching still surface steadily. A bare Telemetry still
/// records everything (sample_every = 1) — least surprise for library
/// use and tests.
inline constexpr std::uint64_t kDefaultTraceSampling = 64;

/// Well-known metric names, so instrumentation sites and tests agree.
/// tools/check.sh lints this namespace: every constant must be used by an
/// instrumentation site and documented in DESIGN.md's metric table.
namespace metric {
// src/net
inline constexpr const char* kNetConnects = "net.connects";
inline constexpr const char* kNetRequests = "net.requests";
inline constexpr const char* kNetBytesSent = "net.bytes.sent";
inline constexpr const char* kNetBytesReceived = "net.bytes.received";
// src/security
inline constexpr const char* kAuthHandshakes = "auth.handshakes";
inline constexpr const char* kAuthFailures = "auth.failures";
inline constexpr const char* kAuthRejected = "auth.rejected";
// src/info
inline constexpr const char* kInfoCacheHits = "info.cache.hits";
inline constexpr const char* kInfoCacheMisses = "info.cache.misses";
/// Hits served by the zero-lock snapshot fast path (subset of cache.hits).
inline constexpr const char* kInfoCacheFastHits = "info.cache.fast_hits";
inline constexpr const char* kInfoRefreshSeconds = "info.refresh.seconds";
// Per-keyword refresh latency alongside the global histogram, so SLO
// objectives can target one keyword's providers.
inline constexpr const char* kInfoRefreshSecondsPrefix = "info.refresh.seconds.";  // + keyword
inline constexpr const char* kInfoQuerySeconds = "info.query.seconds";
// src/info background TTL prefetch: a hit refreshed an expiring entry
// before it lapsed (the cache stayed warm), a miss found the entry
// already expired when the scan reached it.
inline constexpr const char* kPrefetchHits = "info.prefetch.hits";
inline constexpr const char* kPrefetchMisses = "info.prefetch.misses";
inline constexpr const char* kPrefetchCycles = "info.prefetch.cycles";
// Refresh failures seen by the prefetch scan; each puts the keyword into
// exponential backoff instead of retrying every cycle.
inline constexpr const char* kPrefetchFailures = "info.prefetch.failures";
// src/info resilience: retry attempts beyond the first try, refreshes
// that succeeded after retrying, refreshes that failed every attempt,
// stale records served by the degradation shield, and the per-keyword
// breaker state gauge (0 closed / 1 half-open / 2 open) plus transition
// counters.
inline constexpr const char* kInfoRetryAttempts = "info.retry.attempts";
inline constexpr const char* kInfoRetryRecovered = "info.retry.recovered";
inline constexpr const char* kInfoRetryExhausted = "info.retry.exhausted";
inline constexpr const char* kInfoDegradedServed = "info.degraded.served";
inline constexpr const char* kInfoBreakerStatePrefix = "info.breaker.state.";  // + keyword
inline constexpr const char* kInfoBreakerOpened = "info.breaker.opened";
inline constexpr const char* kInfoBreakerHalfOpen = "info.breaker.half_open";
inline constexpr const char* kInfoBreakerClosed = "info.breaker.closed";
// Fired decisions of the seeded FaultInjector (wired via its fire hook).
inline constexpr const char* kFaultInjected = "fault.injected";
// src/obs self-accounting: traces lost to ring eviction or abandoned
// contexts, and contexts currently open.
inline constexpr const char* kTraceDropped = "obs.trace.dropped";
inline constexpr const char* kTraceUnfinished = "obs.trace.unfinished";
// src/exec
inline constexpr const char* kExecQueueDepth = "exec.queue.depth";
inline constexpr const char* kExecJobsQueued = "exec.jobs.queued";
// src/gram
inline constexpr const char* kJobsSubmitted = "gram.jobs.submitted";
inline constexpr const char* kJobsRestarted = "gram.jobs.restarted";
inline constexpr const char* kJobsActive = "gram.jobs.active";
inline constexpr const char* kJobSeconds = "gram.job.seconds";
inline constexpr const char* kJobTransitionPrefix = "gram.transitions.";  // + state name
// src/mds
inline constexpr const char* kMdsGrisSearches = "mds.gris.searches";
inline constexpr const char* kMdsGiisSearches = "mds.giis.searches";
inline constexpr const char* kMdsGiisCacheHits = "mds.giis.cache.hits";
inline constexpr const char* kMdsGiisCacheMisses = "mds.giis.cache.misses";
// src/core request pipeline (ThreadPool behind submit_async / the wire
// handler): queue depth + high-water as gauges, shed admissions, executed
// tasks, task latency, and per-worker counters
// pool.worker.<i>.tasks / pool.worker.<i>.busy_us for utilization.
inline constexpr const char* kPoolQueueDepth = "pool.queue.depth";
inline constexpr const char* kPoolQueueHighwater = "pool.queue.highwater";
// Windowed high-water: deepest backlog since the last profile snapshot
// closed the window (ThreadPool::snapshot_and_reset_window), so a burst
// an hour ago stops shadowing the current steady state.
inline constexpr const char* kPoolQueueHighwaterWindow = "pool.queue.highwater.window";
inline constexpr const char* kPoolShed = "pool.shed";
inline constexpr const char* kPoolTasks = "pool.tasks";
inline constexpr const char* kPoolTaskSeconds = "pool.task.seconds";
inline constexpr const char* kPoolWorkerPrefix = "pool.worker.";
// src/core
inline constexpr const char* kRequestsTotal = "requests.total";
inline constexpr const char* kRequestsXrsl = "requests.xrsl";
inline constexpr const char* kRequestsGram = "requests.gram";
inline constexpr const char* kRequestsErrors = "requests.errors";
inline constexpr const char* kRequestSeconds = "request.seconds";
inline constexpr const char* kFormatRenders = "format.renders";
}  // namespace metric

class Telemetry {
 public:
  explicit Telemetry(const Clock& clock, std::size_t trace_capacity = 64);
  Telemetry(const Clock& clock, std::string node_id, std::size_t trace_capacity = 64);

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  TraceStore& traces() { return traces_; }
  const TraceStore& traces() const { return traces_; }
  const Clock& clock() const { return clock_; }
  SloEngine& slo() { return slo_; }
  Profiler& profiler() { return profiler_; }
  const Profiler& profiler() const { return profiler_; }

  /// Node id stamped on every span this telemetry records ("" = untagged).
  void set_node_id(std::string node_id) { node_id_ = std::move(node_id); }
  const std::string& node_id() const { return node_id_; }

  /// Record every Nth root trace (1 = all, the constructor default;
  /// 0 treated as 1; service wiring applies kDefaultTraceSampling).
  /// Deterministic and counter-based so tests stay reproducible. Remote
  /// hops never consult the sampler — the originator's decision rides the
  /// wire header. Sampling never touches metrics or SLO fidelity. This
  /// also (re)sets the *base* rate SLO-burn feedback decays back to.
  void set_trace_sampling(std::uint64_t every_n);
  /// Advance the sampling counter and return this root's decision.
  bool should_sample();

  /// Enable tail-based retention (DESIGN.md §15): requests the head
  /// sampler declines become *provisional* traces, classified at finish —
  /// anomalies retained 100%, clean traffic discarded. Slow verdicts
  /// derive from the request.seconds histogram. Idempotent.
  void enable_tail(TailSampler::Options options = {});
  /// The tail layer, null unless enable_tail() ran.
  TailSampler* tail() { return tail_.get(); }
  const TailSampler* tail() const { return tail_.get(); }

  /// Anomaly flight recorder: verdict-retained traces append to its ring
  /// (with metric deltas), and a paging SLO burn triggers a JSONL dump.
  void set_flight_recorder(std::shared_ptr<FlightRecorder> recorder);
  const std::shared_ptr<FlightRecorder>& flight_recorder() const { return flight_; }

  /// Dump the flight ring plus the store's retained traces to a fresh
  /// FLIGHT_*.jsonl; "" when no recorder is attached or rate-limited.
  std::string export_flight_record(const std::string& reason, bool force = false);

  /// Flight-recorder + tail-retention state (keyword `flightrecorder`):
  /// counters, effective sampling rate, slow threshold, ring events.
  format::InfoRecord flight_record(const std::string& keyword);

  /// Open a trace rooted at `root_name` on this telemetry's clock.
  TraceContext start_trace(std::string root_name);

  /// Heap-allocated variant for callers that need to keep the context in
  /// a member/optional (TraceContext itself is pinned by design).
  std::unique_ptr<TraceContext> make_trace(std::string root_name);

  /// Join a propagated trace as a remote child: same trace id, root span
  /// parented under the caller's hop span `parent_span`.
  std::unique_ptr<TraceContext> make_remote_trace(std::string root_name,
                                                  std::string trace_id,
                                                  std::uint64_t parent_span);

  /// Provisional variants: same contexts flagged provisional and opened
  /// in the tail sampler's holding ring, so a late verdict can stitch or
  /// drop their segments (make_provisional_trace is what a PendingTrace's
  /// materialize hook calls when an outbound hop first needs a wire id).
  std::unique_ptr<TraceContext> make_provisional_trace(std::string root_name);
  std::unique_ptr<TraceContext> make_remote_provisional(std::string root_name,
                                                        std::string trace_id,
                                                        std::uint64_t parent_span);

  /// Verdict for a finished provisional *root* that may never have
  /// materialized a context: with a context, signals fold in and the
  /// normal complete() path classifies; without one, quick_keep() decides
  /// and a kept request synthesizes the single-span record a context
  /// would have produced (backdated by `latency`). The no-context discard
  /// is the clean fast path — one atomic bump, no allocation.
  void finish_provisional(PendingTrace& pending, const std::string& root_name,
                          Duration latency, const std::string& status);

  /// Finish a provisional wire join on a serving hop: the record is
  /// always returned for the span/signal backhaul, but it is only
  /// retained locally when this hop's own classify() keeps it (a verdict
  /// seen here, e.g. an error at the leaf — the origin's verdict governs
  /// everything else).
  TraceRecord collect_provisional(TraceContext& trace);

  /// Finish `trace`, retain it in the store (stitching with any other
  /// hops already retained), export it when an exporter is attached, and
  /// invoke the trace listener (the Logger bridge, when one is wired).
  /// The record moves straight into the store — this is the hot path.
  void complete(TraceContext& trace);

  /// complete() that also returns the finished record (one extra copy),
  /// for serving layers that backhaul spans to the calling hop.
  TraceRecord complete_and_collect(TraceContext& trace);

  /// Called with every completed trace; set once at service wiring time.
  void set_trace_listener(std::function<void(const TraceRecord&)> listener);

  /// Durable JSONL sink for completed traces; set at wiring time.
  void set_exporter(std::shared_ptr<JsonlExporter> exporter);
  const std::shared_ptr<JsonlExporter>& exporter() const { return exporter_; }

  /// All metrics as one InfoRecord (keyword `metrics`). Counters/gauges
  /// become one attribute each; histograms expand to count/mean/stddev/
  /// p50/p95/max plus `:exemplar:<le>` attributes (`<trace-id>@<value>`)
  /// for buckets holding an exemplar. `prefixes` non-empty keeps only
  /// matching names (keyword `metrics.jobs` uses {"gram.", "exec."}).
  format::InfoRecord metrics_record(const std::string& keyword,
                                    const std::vector<std::string>& prefixes = {}) const;

  /// The retained traces as one InfoRecord (keyword `traces`): per trace
  /// `<id>:root/status/duration_us/spans`, plus one attribute per span
  /// carrying its id, parent id and node tag.
  format::InfoRecord traces_record(const std::string& keyword) const;

  /// Every objective's current evaluation (keyword `slo`).
  format::InfoRecord slo_record(const std::string& keyword);

  /// Only the firing objectives (keyword `alerts`) — empty record attrs
  /// beyond `count`/`firing` mean all targets are met.
  format::InfoRecord alerts_record(const std::string& keyword);

  /// Profiler summary (keyword `profile`): lock-contention totals with
  /// the top-3 hottest locks, hottest keywords by allocated bytes, and a
  /// one-line digest per attached pool. Building it also mirrors the
  /// contended-wait delta into the kProfileLockWaits counter.
  format::InfoRecord profile_record(const std::string& keyword);

  /// Full lock-contention table (keyword `profile.locks`): per merged
  /// lock name `<name>:rank/waits/total_us/max_us/mean_us`, nonzero
  /// wait-histogram buckets as `<name>:bucket.<le_us>`, and the trace-id
  /// exemplar of the slowest wait as `<name>:exemplar`.
  format::InfoRecord profile_locks_record(const std::string& keyword);

  /// Per-pool scheduler profile (keyword `profile.pool`): queue depth,
  /// monotone + windowed high-water, submitted/executed/shed, per-worker
  /// tasks and busy time. Closes each pool's high-water window and
  /// mirrors it to the kPoolQueueHighwaterWindow gauge.
  format::InfoRecord profile_pool_record(const std::string& keyword);

  /// Build the `profile` record and write it through the attached JSONL
  /// exporter as a `{"type":"profile",...}` line. False when no exporter
  /// is attached.
  bool export_profile_snapshot();

 private:
  using TraceListener = std::function<void(const TraceRecord&)>;

  TraceContext::Options trace_options();
  void notify(const TraceRecord& record);
  /// Tail gate for every finished record: classify (stamping the
  /// verdict), note anomalies on the flight ring, return keep. Always
  /// true without a tail sampler.
  bool finish_record(TraceRecord& record);
  /// SLO-burn-adaptive sampling: while an objective burns, widen the head
  /// sampler (sample_every = base/8, floor 1); once healthy, decay back
  /// (×2 per evaluation) toward the base rate. A paging burn also dumps
  /// the flight record. Runs on every slo/alerts evaluation.
  void apply_burn_feedback(const std::vector<SloStatus>& statuses);

  const Clock& clock_;
  std::string node_id_;
  MetricsRegistry metrics_;
  TraceStore traces_;
  SloEngine slo_;
  Profiler profiler_;
  /// Self-accounting metrics resolved once — trace start/finish must not
  /// pay a registry lookup per trace.
  Gauge* unfinished_ = nullptr;
  Counter* dropped_ = nullptr;
  Counter* export_skipped_ = nullptr;
  Gauge* tail_gauge_ = nullptr;  ///< resolved by enable_tail()
  std::atomic<std::uint64_t> sample_every_{1};
  /// The configured rate burn feedback decays back to.
  std::atomic<std::uint64_t> base_sample_every_{1};
  std::atomic<std::uint64_t> sample_seq_{0};
  std::unique_ptr<TailSampler> tail_;
  std::shared_ptr<FlightRecorder> flight_;
  std::shared_ptr<JsonlExporter> exporter_;
  mutable Mutex listener_mu_{lock_rank::kTraceListener, "obs.Telemetry.listener"};
  /// Snapshotted per complete(); shared_ptr so the copy is a refcount
  /// bump, not a std::function clone.
  std::shared_ptr<const TraceListener> listener_ IG_GUARDED_BY(listener_mu_);
};

/// RAII root trace for fire-and-forget instrumentation sites (broker
/// lookups, gossip rounds): opens a sampled trace, makes it the thread's
/// active trace so outbound hops propagate it, and completes it on scope
/// exit. Collapses to (almost) nothing when `telemetry` is null, an
/// enclosing trace is already active (the site becomes spans of that
/// trace instead), or the sampler declines (the scope suppresses, so the
/// decision propagates).
class ScopedTrace {
 public:
  ScopedTrace(const std::shared_ptr<Telemetry>& telemetry, std::string root_name);
  ~ScopedTrace();
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

  /// The owned context; null when this scope did not open a trace.
  TraceContext* context() { return ctx_.get(); }
  /// Mark the root as failed (no-op without an owned context).
  void fail(std::string status);

 private:
  std::shared_ptr<Telemetry> telemetry_;
  std::unique_ptr<TraceContext> ctx_;
  std::optional<TraceScope> scope_;
  std::optional<SuppressScope> suppress_;
};

}  // namespace ig::obs
