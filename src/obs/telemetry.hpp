// Telemetry — the bundle every instrumented layer shares.
//
// One Telemetry instance per service deployment carries the metrics
// registry, the trace ring buffer and the clock. Components receive it as
// a nullable shared_ptr and no-op without it, so observability is strictly
// opt-in and costs nothing when absent.
//
// The InfoRecord builders here are what make the telemetry *self-
// describing* in the paper's sense: the `obs` provider family
// (src/info/obs_provider.hpp) exposes them as ordinary keywords, so
// `info=metrics` / `info=traces` queries flow through the exact xRSL +
// SystemMonitor + LDIF/XML path every other keyword uses, and show up in
// `info=schema` reflection like any provider.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "format/record.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ig::obs {

/// Well-known metric names, so instrumentation sites and tests agree.
namespace metric {
// src/net
inline constexpr const char* kNetConnects = "net.connects";
inline constexpr const char* kNetRequests = "net.requests";
inline constexpr const char* kNetBytesSent = "net.bytes.sent";
inline constexpr const char* kNetBytesReceived = "net.bytes.received";
// src/security
inline constexpr const char* kAuthHandshakes = "auth.handshakes";
inline constexpr const char* kAuthFailures = "auth.failures";
inline constexpr const char* kAuthRejected = "auth.rejected";
// src/info
inline constexpr const char* kInfoCacheHits = "info.cache.hits";
inline constexpr const char* kInfoCacheMisses = "info.cache.misses";
inline constexpr const char* kInfoRefreshSeconds = "info.refresh.seconds";
inline constexpr const char* kInfoQuerySeconds = "info.query.seconds";
// src/info background TTL prefetch: a hit refreshed an expiring entry
// before it lapsed (the cache stayed warm), a miss found the entry
// already expired when the scan reached it.
inline constexpr const char* kPrefetchHits = "info.prefetch.hits";
inline constexpr const char* kPrefetchMisses = "info.prefetch.misses";
inline constexpr const char* kPrefetchCycles = "info.prefetch.cycles";
// Refresh failures seen by the prefetch scan; each puts the keyword into
// exponential backoff instead of retrying every cycle.
inline constexpr const char* kPrefetchFailures = "info.prefetch.failures";
// src/info resilience: retry attempts beyond the first try, refreshes
// that succeeded after retrying, refreshes that failed every attempt,
// stale records served by the degradation shield, and the per-keyword
// breaker state gauge (0 closed / 1 half-open / 2 open) plus transition
// counters.
inline constexpr const char* kInfoRetryAttempts = "info.retry.attempts";
inline constexpr const char* kInfoRetryRecovered = "info.retry.recovered";
inline constexpr const char* kInfoRetryExhausted = "info.retry.exhausted";
inline constexpr const char* kInfoDegradedServed = "info.degraded.served";
inline constexpr const char* kInfoBreakerStatePrefix = "info.breaker.state.";  // + keyword
inline constexpr const char* kInfoBreakerOpened = "info.breaker.opened";
inline constexpr const char* kInfoBreakerHalfOpen = "info.breaker.half_open";
inline constexpr const char* kInfoBreakerClosed = "info.breaker.closed";
// Fired decisions of the seeded FaultInjector (wired via its fire hook).
inline constexpr const char* kFaultInjected = "fault.injected";
// src/exec
inline constexpr const char* kExecQueueDepth = "exec.queue.depth";
inline constexpr const char* kExecJobsQueued = "exec.jobs.queued";
// src/gram
inline constexpr const char* kJobsSubmitted = "gram.jobs.submitted";
inline constexpr const char* kJobsRestarted = "gram.jobs.restarted";
inline constexpr const char* kJobsActive = "gram.jobs.active";
inline constexpr const char* kJobSeconds = "gram.job.seconds";
inline constexpr const char* kJobTransitionPrefix = "gram.transitions.";  // + state name
// src/mds
inline constexpr const char* kMdsGrisSearches = "mds.gris.searches";
inline constexpr const char* kMdsGiisSearches = "mds.giis.searches";
inline constexpr const char* kMdsGiisCacheHits = "mds.giis.cache.hits";
inline constexpr const char* kMdsGiisCacheMisses = "mds.giis.cache.misses";
// src/core request pipeline (ThreadPool behind submit_async / the wire
// handler): queue depth + high-water as gauges, shed admissions, executed
// tasks, task latency, and per-worker counters
// pool.worker.<i>.tasks / pool.worker.<i>.busy_us for utilization.
inline constexpr const char* kPoolQueueDepth = "pool.queue.depth";
inline constexpr const char* kPoolQueueHighwater = "pool.queue.highwater";
inline constexpr const char* kPoolShed = "pool.shed";
inline constexpr const char* kPoolTasks = "pool.tasks";
inline constexpr const char* kPoolTaskSeconds = "pool.task.seconds";
inline constexpr const char* kPoolWorkerPrefix = "pool.worker.";
// src/core
inline constexpr const char* kRequestsTotal = "requests.total";
inline constexpr const char* kRequestsXrsl = "requests.xrsl";
inline constexpr const char* kRequestsGram = "requests.gram";
inline constexpr const char* kRequestsErrors = "requests.errors";
inline constexpr const char* kRequestSeconds = "request.seconds";
inline constexpr const char* kFormatRenders = "format.renders";
}  // namespace metric

class Telemetry {
 public:
  explicit Telemetry(const Clock& clock, std::size_t trace_capacity = 64);

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  TraceStore& traces() { return traces_; }
  const TraceStore& traces() const { return traces_; }
  const Clock& clock() const { return clock_; }

  /// Open a trace rooted at `root_name` on this telemetry's clock.
  TraceContext start_trace(std::string root_name) const;

  /// Finish `trace`, retain it in the store and invoke the trace listener
  /// (the Logger bridge, when one is wired).
  void complete(TraceContext& trace);

  /// Called with every completed trace; set once at service wiring time.
  void set_trace_listener(std::function<void(const TraceRecord&)> listener);

  /// All metrics as one InfoRecord (keyword `metrics`). Counters/gauges
  /// become one attribute each; histograms expand to count/mean/stddev/
  /// p50/p95/max. `prefixes` non-empty keeps only matching names
  /// (keyword `metrics.jobs` uses {"gram.", "exec."}).
  format::InfoRecord metrics_record(const std::string& keyword,
                                    const std::vector<std::string>& prefixes = {}) const;

  /// The retained traces as one InfoRecord (keyword `traces`): per trace
  /// `<id>:root/status/duration_us/spans`, plus one attribute per span.
  format::InfoRecord traces_record(const std::string& keyword) const;

 private:
  const Clock& clock_;
  MetricsRegistry metrics_;
  TraceStore traces_;
  mutable std::mutex listener_mu_;
  std::function<void(const TraceRecord&)> listener_;
};

}  // namespace ig::obs
