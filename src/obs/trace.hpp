// Request tracing — now distributed across grid hops.
//
// Every request entering the unified endpoint gets a TraceContext: a
// trace id plus a root span, carried by pointer down the dispatch path
// (core -> SystemMonitor/provider resolution -> GRAM submit -> formatter).
// Each layer opens a child span recording name, start, duration and
// status. Completed traces land in a fixed-capacity ring buffer
// (TraceStore) so the last N requests can be inspected through the
// service itself (info=traces) — the dogfooding analogue of the paper's
// `performance` tag.
//
// Cross-hop stitching: a serving node that extracts a propagated wire
// context (src/obs/propagation.hpp) opens a *remote child* context —
// same trace id, root span parented under the caller's hop span — and
// returns its finished spans to the caller, which adopts them. Spans are
// tagged with the node id they ran on, so one TraceRecord describes a
// query that fanned through the MDS hierarchy, discovery gossip or
// co-allocation, hop by hop. The TraceStore additionally merges segments
// that arrive separately under one trace id (nodes sharing a store).
//
// Ids come from the process-wide IdGenerator and the *injected* Clock, so
// a VirtualClock keeps every recorded timestamp deterministic in tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.hpp"
#include "common/sync.hpp"
#include "obs/metrics.hpp"

namespace ig::obs {

/// Tail-retention metrics (owned by this header; see DESIGN.md §15).
namespace metric {
/// Provisional traces the verdict classifier kept / threw away.
inline constexpr const char* kTailRetained = "obs.tail.retained";
inline constexpr const char* kTailDiscarded = "obs.tail.discarded";
/// Holding-ring entries evicted before their late segments could arrive.
inline constexpr const char* kTailEvicted = "obs.tail.evicted";
/// Effective head-sampling rate (gauge) — widened by SLO-burn feedback.
inline constexpr const char* kTailSampleEvery = "obs.tail.sample_every";
}  // namespace metric

/// Signal bits a layer raises on the in-flight request (via
/// obs::signal_tail) while it runs; at finish the TailSampler folds them
/// — plus the response status and the latency threshold — into a
/// retention verdict. One bit per anomaly class the obs stack can
/// already detect.
enum TailSignal : std::uint32_t {
  kSignalError = 1u << 0,     ///< error status on the root (set by classify)
  kSignalDeadline = 1u << 1,  ///< deadline exceeded (cancel or late record)
  kSignalBreaker = 1u << 2,   ///< circuit-breaker open/half-open fast fail
  kSignalDegraded = 1u << 3,  ///< stale-serve shield answered
  kSignalFailover = 1u << 4,  ///< mid-query replica failover
  kSignalRetry = 1u << 5,     ///< refresh recovered only after retrying
  kSignalSlow = 1u << 6,      ///< latency over the p99-derived threshold
};

/// One completed (or still-open) span inside a trace.
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = root span of the whole trace
  std::string name;
  std::string node;  ///< node id the span ran on ("" = untagged)
  TimePoint start{0};
  Duration duration{0};
  std::string status = "ok";
  /// Allocation attribution (obs::AllocScope deltas measured on the
  /// resolving thread); 0/0 = unprofiled.
  std::uint64_t allocs = 0;
  std::uint64_t alloc_bytes = 0;

  friend bool operator==(const SpanRecord&, const SpanRecord&) = default;
};

/// A finished trace: the root request plus its spans, oldest first.
struct TraceRecord {
  std::string id;  ///< 16-char hex trace id, shared by every hop
  std::string root;
  TimePoint start{0};
  Duration duration{0};
  std::string status = "ok";
  std::vector<SpanRecord> spans;  ///< spans[0] is this segment's root span
  /// TailSignal bits raised while the request was in flight (ORed across
  /// hops via the signals backhaul header).
  std::uint32_t signals = 0;
  /// Non-empty = the tail classifier retained this trace; names the
  /// highest-precedence trigger ("error" > "deadline" > "breaker" >
  /// "failover" > "degraded" > "retry" > "slow").
  std::string verdict;
  /// Opened by the tail layer for a head-unsampled request — retained
  /// only when a verdict fires; never counts as a head-sampled trace.
  bool provisional = false;

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

/// The in-flight side of a trace. Thread-safe: concurrent layers may open
/// spans against the same context. Neither copyable nor movable (spans
/// hold a back-pointer).
class TraceContext {
 public:
  /// Extra wiring for distributed traces; all fields optional.
  struct Options {
    std::string node;             ///< tag every span with this node id
    std::string remote_trace_id;  ///< non-empty: join this propagated trace
    std::uint64_t remote_parent_span = 0;  ///< caller's hop span id
    std::function<void()> on_finish;       ///< first successful finish()
    std::function<void()> on_abandon;      ///< destroyed without finish()
    bool provisional = false;              ///< tail-layer trace (late verdict)
  };

  TraceContext(const Clock& clock, std::string root_name);
  TraceContext(const Clock& clock, std::string root_name, Options options);
  ~TraceContext();

  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  const std::string& id() const { return id_; }
  /// Id of this segment's root span (what remote children parent under).
  std::uint64_t root_span_id() const;
  /// True when this context joined a propagated trace rather than
  /// starting one (its root span has a remote parent).
  bool remote() const { return remote_; }
  /// True when the tail layer opened this context for a head-unsampled
  /// request (Options::provisional); retention is decided at finish.
  bool provisional() const { return provisional_; }

  /// OR TailSignal bits into the record (obs::signal_tail routes here
  /// when a real context is active).
  void add_signal(std::uint32_t bits);
  std::uint32_t signals() const;

  /// RAII child-span handle: ends (status "ok") on destruction unless
  /// end() was called explicitly.
  class Span {
   public:
    Span(Span&& other) noexcept;
    Span& operator=(Span&&) = delete;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span();

    void end(std::string status = "ok");
    std::uint64_t id() const { return id_; }

   private:
    friend class TraceContext;
    Span(TraceContext* ctx, std::size_t index, std::uint64_t id)
        : ctx_(ctx), index_(index), id_(id) {}

    TraceContext* ctx_;
    std::size_t index_;
    std::uint64_t id_;
  };

  /// Open a child span. `parent_id` 0 parents it under the root span.
  Span span(std::string name, std::uint64_t parent_id = 0);

  /// Merge spans returned by a remote hop (already linked to one of our
  /// span ids via their parent_id). Duplicate span ids are dropped, so
  /// adopting the same backhaul twice is harmless. No-op once finished.
  void adopt(std::vector<SpanRecord> spans);

  /// Mark the whole trace as failed (root status).
  void fail(std::string status);

  /// Attach an allocation profile to a span (`span_id` 0 = this
  /// segment's root span). No-op once finished or for unknown ids.
  void set_span_alloc(std::uint64_t span_id, std::uint64_t allocs, std::uint64_t bytes);

  /// Close the root span and hand over the finished record (moved out,
  /// not copied). The context is spent afterwards; further spans are
  /// dropped and a repeated finish() returns an empty record.
  TraceRecord finish();

  /// Lock-free on purpose: the profiler's lock-contention listener reads
  /// this while the caller may hold arbitrarily high-ranked locks, so an
  /// mu_ (rank kTraceContext) acquisition here would invert the order.
  bool finished() const { return finished_.load(std::memory_order_acquire); }

 private:
  void end_span(std::size_t index, std::string status);

  const Clock& clock_;
  std::string id_;
  std::string node_;
  bool remote_ = false;
  bool provisional_ = false;  ///< set at construction only
  std::function<void()> on_finish_;   ///< set at construction only
  std::function<void()> on_abandon_;  ///< set at construction only
  mutable Mutex mu_{lock_rank::kTraceContext, "obs.TraceContext"};
  TraceRecord record_ IG_GUARDED_BY(mu_);
  /// Writes happen under mu_ (finish() decides first-ness there); atomic
  /// so the unlocked finished() accessor stays rank-safe.
  std::atomic<bool> finished_{false};
};

/// Ring buffer of the last N completed traces. add() *stitches*: a record
/// whose trace id is already retained merges into the existing entry
/// (spans deduplicated by id, the segment whose root span has parent 0
/// providing the trace-level fields) instead of occupying a new slot —
/// multiple nodes sharing one store yield one record per distributed
/// trace.
class TraceStore {
 public:
  explicit TraceStore(std::size_t capacity = 64);

  void add(TraceRecord record);

  /// Oldest-first copy of the retained traces.
  std::vector<TraceRecord> snapshot() const;

  /// Retained trace by id, if still in the ring.
  std::vector<TraceRecord> find(const std::string& id) const;

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  /// Total traces ever completed (including evicted ones); merged
  /// segments count toward the trace they joined, not separately.
  std::uint64_t completed() const;

  /// Called (outside the store lock) for every record the ring evicts —
  /// the observability layer's own blind-spot counter hangs off this.
  void set_on_evict(std::function<void(const TraceRecord&)> on_evict);

 private:
  std::size_t capacity_;
  mutable Mutex mu_{lock_rank::kTraceStore, "obs.TraceStore"};
  std::deque<TraceRecord> traces_ IG_GUARDED_BY(mu_);
  /// id -> retained record, so add() stitches without scanning the ring.
  /// Deque pointers are stable under push_back/pop_front; entries are
  /// erased before their record leaves the ring.
  std::unordered_map<std::string, TraceRecord*> index_ IG_GUARDED_BY(mu_);
  std::uint64_t completed_ IG_GUARDED_BY(mu_) = 0;
  std::function<void(const TraceRecord&)> on_evict_ IG_GUARDED_BY(mu_);
};

/// Tail-based retention (DESIGN.md §15). Head-unsampled requests open
/// *provisional* traces; at finish the verdict classifier decides keep
/// (anomalies, at 100%) vs. discard (clean traffic, which stays at the
/// head-sampling rate for baseline coverage). Materialized provisional
/// ids live in a bounded holding ring so remote segments arriving after
/// the verdict stitch into retained traces but cannot resurrect
/// discarded ones.
class TailSampler {
 public:
  struct Options {
    /// Recently-seen provisional trace ids (sticky verdict state for late
    /// segments). Sized like the TraceStore ring: a few hundred entries
    /// of id + enum cover every in-flight request plus a grace window.
    std::size_t holding_capacity = 256;
    /// Slow verdict: latency > p99(request histogram) * slow_factor.
    double slow_factor = 4.0;
    /// Floor under sparse histograms so microsecond noise never pages.
    double min_slow_seconds = 0.001;
    /// Histogram samples required before slow verdicts fire at all.
    std::uint64_t min_samples = 64;
    /// Classifications between p99 refreshes (the threshold is cached in
    /// an atomic so the clean path never snapshots the histogram).
    std::uint64_t refresh_every = 256;
  };

  explicit TailSampler(MetricsRegistry& metrics);
  TailSampler(MetricsRegistry& metrics, Options options);

  /// Latency histogram the slow threshold derives from (request.seconds
  /// in service wiring); null disables slow verdicts.
  void set_request_histogram(const Histogram* histogram);

  /// Verdict state of a provisional id in the holding ring.
  enum class RingState { kUnknown, kPending, kRetained, kDiscarded };

  /// Register a materialized provisional trace id as in flight (evicting
  /// the oldest entry when full — counted on obs.tail.evicted).
  void open(const std::string& id);
  RingState state(const std::string& id) const;

  /// Classify a finished record: fold record.signals with the error
  /// status and the latency threshold, stamp record.verdict, mark the
  /// ring entry, bump the retained/discarded counters. Returns keep.
  /// Head-sampled (non-provisional) records always keep — the verdict is
  /// annotation only. A provisional record with no verdict of its own is
  /// a late segment: it keeps only when the ring shows its origin
  /// retained (the no-resurrection rule).
  bool classify(TraceRecord& record);

  /// The cheap pre-check for never-materialized provisionals: true when
  /// signals/error/latency would produce a verdict. No lock, no ring.
  bool quick_keep(std::uint32_t signals, bool error, double latency_seconds);
  /// Count a discarded provisional that skipped classify() (the clean
  /// fast path — one atomic, nothing else).
  IG_STATIC_FAST_PATH
  void count_quick_discard() { discarded_->add(); }

  /// Current slow-latency threshold in seconds (infinity until the
  /// histogram has min_samples), refreshed every refresh_every checks.
  double slow_threshold_seconds();
  /// The same p99*factor (with min_samples/min_slow floor) derivation for
  /// an arbitrary histogram — per-keyword thresholds reuse the policy.
  double threshold_from(const Histogram::Snapshot& snapshot) const;

  std::uint64_t retained() const { return retained_->value(); }
  std::uint64_t discarded() const { return discarded_->value(); }
  std::uint64_t evicted() const { return evicted_->value(); }
  const Options& options() const { return options_; }

 private:
  void maybe_refresh_threshold();
  void mark(const std::string& id, RingState state);

  Options options_;
  Counter* retained_;
  Counter* discarded_;
  Counter* evicted_;
  const Histogram* request_histogram_ = nullptr;  ///< wiring-time only
  /// Cached p99*factor in seconds; +inf until min_samples accumulate.
  std::atomic<double> slow_threshold_s_;
  std::atomic<std::uint64_t> checks_{0};
  mutable Mutex mu_{lock_rank::kTailSampler, "obs.TailSampler"};
  std::deque<std::string> order_ IG_GUARDED_BY(mu_);
  std::unordered_map<std::string, RingState> ring_ IG_GUARDED_BY(mu_);
};

/// Human-readable verdict for a signal mask, highest precedence first;
/// "" when no signal bit implies retention.
const char* verdict_name(std::uint32_t signals);

}  // namespace ig::obs
