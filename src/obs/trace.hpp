// Request tracing — now distributed across grid hops.
//
// Every request entering the unified endpoint gets a TraceContext: a
// trace id plus a root span, carried by pointer down the dispatch path
// (core -> SystemMonitor/provider resolution -> GRAM submit -> formatter).
// Each layer opens a child span recording name, start, duration and
// status. Completed traces land in a fixed-capacity ring buffer
// (TraceStore) so the last N requests can be inspected through the
// service itself (info=traces) — the dogfooding analogue of the paper's
// `performance` tag.
//
// Cross-hop stitching: a serving node that extracts a propagated wire
// context (src/obs/propagation.hpp) opens a *remote child* context —
// same trace id, root span parented under the caller's hop span — and
// returns its finished spans to the caller, which adopts them. Spans are
// tagged with the node id they ran on, so one TraceRecord describes a
// query that fanned through the MDS hierarchy, discovery gossip or
// co-allocation, hop by hop. The TraceStore additionally merges segments
// that arrive separately under one trace id (nodes sharing a store).
//
// Ids come from the process-wide IdGenerator and the *injected* Clock, so
// a VirtualClock keeps every recorded timestamp deterministic in tests.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.hpp"
#include "common/sync.hpp"

namespace ig::obs {

/// One completed (or still-open) span inside a trace.
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = root span of the whole trace
  std::string name;
  std::string node;  ///< node id the span ran on ("" = untagged)
  TimePoint start{0};
  Duration duration{0};
  std::string status = "ok";
  /// Allocation attribution (obs::AllocScope deltas measured on the
  /// resolving thread); 0/0 = unprofiled.
  std::uint64_t allocs = 0;
  std::uint64_t alloc_bytes = 0;

  friend bool operator==(const SpanRecord&, const SpanRecord&) = default;
};

/// A finished trace: the root request plus its spans, oldest first.
struct TraceRecord {
  std::string id;  ///< 16-char hex trace id, shared by every hop
  std::string root;
  TimePoint start{0};
  Duration duration{0};
  std::string status = "ok";
  std::vector<SpanRecord> spans;  ///< spans[0] is this segment's root span

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

/// The in-flight side of a trace. Thread-safe: concurrent layers may open
/// spans against the same context. Neither copyable nor movable (spans
/// hold a back-pointer).
class TraceContext {
 public:
  /// Extra wiring for distributed traces; all fields optional.
  struct Options {
    std::string node;             ///< tag every span with this node id
    std::string remote_trace_id;  ///< non-empty: join this propagated trace
    std::uint64_t remote_parent_span = 0;  ///< caller's hop span id
    std::function<void()> on_finish;       ///< first successful finish()
    std::function<void()> on_abandon;      ///< destroyed without finish()
  };

  TraceContext(const Clock& clock, std::string root_name);
  TraceContext(const Clock& clock, std::string root_name, Options options);
  ~TraceContext();

  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  const std::string& id() const { return id_; }
  /// Id of this segment's root span (what remote children parent under).
  std::uint64_t root_span_id() const;
  /// True when this context joined a propagated trace rather than
  /// starting one (its root span has a remote parent).
  bool remote() const { return remote_; }

  /// RAII child-span handle: ends (status "ok") on destruction unless
  /// end() was called explicitly.
  class Span {
   public:
    Span(Span&& other) noexcept;
    Span& operator=(Span&&) = delete;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span();

    void end(std::string status = "ok");
    std::uint64_t id() const { return id_; }

   private:
    friend class TraceContext;
    Span(TraceContext* ctx, std::size_t index, std::uint64_t id)
        : ctx_(ctx), index_(index), id_(id) {}

    TraceContext* ctx_;
    std::size_t index_;
    std::uint64_t id_;
  };

  /// Open a child span. `parent_id` 0 parents it under the root span.
  Span span(std::string name, std::uint64_t parent_id = 0);

  /// Merge spans returned by a remote hop (already linked to one of our
  /// span ids via their parent_id). Duplicate span ids are dropped, so
  /// adopting the same backhaul twice is harmless. No-op once finished.
  void adopt(std::vector<SpanRecord> spans);

  /// Mark the whole trace as failed (root status).
  void fail(std::string status);

  /// Attach an allocation profile to a span (`span_id` 0 = this
  /// segment's root span). No-op once finished or for unknown ids.
  void set_span_alloc(std::uint64_t span_id, std::uint64_t allocs, std::uint64_t bytes);

  /// Close the root span and hand over the finished record (moved out,
  /// not copied). The context is spent afterwards; further spans are
  /// dropped and a repeated finish() returns an empty record.
  TraceRecord finish();

  bool finished() const;

 private:
  void end_span(std::size_t index, std::string status);

  const Clock& clock_;
  std::string id_;
  std::string node_;
  bool remote_ = false;
  std::function<void()> on_finish_;   ///< set at construction only
  std::function<void()> on_abandon_;  ///< set at construction only
  mutable Mutex mu_{lock_rank::kTraceContext, "obs.TraceContext"};
  TraceRecord record_ IG_GUARDED_BY(mu_);
  bool finished_ IG_GUARDED_BY(mu_) = false;
};

/// Ring buffer of the last N completed traces. add() *stitches*: a record
/// whose trace id is already retained merges into the existing entry
/// (spans deduplicated by id, the segment whose root span has parent 0
/// providing the trace-level fields) instead of occupying a new slot —
/// multiple nodes sharing one store yield one record per distributed
/// trace.
class TraceStore {
 public:
  explicit TraceStore(std::size_t capacity = 64);

  void add(TraceRecord record);

  /// Oldest-first copy of the retained traces.
  std::vector<TraceRecord> snapshot() const;

  /// Retained trace by id, if still in the ring.
  std::vector<TraceRecord> find(const std::string& id) const;

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  /// Total traces ever completed (including evicted ones); merged
  /// segments count toward the trace they joined, not separately.
  std::uint64_t completed() const;

  /// Called (outside the store lock) for every record the ring evicts —
  /// the observability layer's own blind-spot counter hangs off this.
  void set_on_evict(std::function<void(const TraceRecord&)> on_evict);

 private:
  std::size_t capacity_;
  mutable Mutex mu_{lock_rank::kTraceStore, "obs.TraceStore"};
  std::deque<TraceRecord> traces_ IG_GUARDED_BY(mu_);
  /// id -> retained record, so add() stitches without scanning the ring.
  /// Deque pointers are stable under push_back/pop_front; entries are
  /// erased before their record leaves the ring.
  std::unordered_map<std::string, TraceRecord*> index_ IG_GUARDED_BY(mu_);
  std::uint64_t completed_ IG_GUARDED_BY(mu_) = 0;
  std::function<void(const TraceRecord&)> on_evict_ IG_GUARDED_BY(mu_);
};

}  // namespace ig::obs
