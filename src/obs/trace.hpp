// Request tracing.
//
// Every request entering the unified endpoint gets a TraceContext: a
// trace id plus a root span, carried by pointer down the dispatch path
// (core -> SystemMonitor/provider resolution -> GRAM submit -> formatter).
// Each layer opens a child span recording name, start, duration and
// status. Completed traces land in a fixed-capacity ring buffer
// (TraceStore) so the last N requests can be inspected through the
// service itself (info=traces) — the dogfooding analogue of the paper's
// `performance` tag.
//
// Ids come from the process-wide IdGenerator and the *injected* Clock, so
// a VirtualClock keeps every recorded timestamp deterministic in tests.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.hpp"

namespace ig::obs {

/// One completed (or still-open) span inside a trace.
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = root span
  std::string name;
  TimePoint start{0};
  Duration duration{0};
  std::string status = "ok";

  friend bool operator==(const SpanRecord&, const SpanRecord&) = default;
};

/// A finished trace: the root request plus its spans, oldest first.
struct TraceRecord {
  std::string id;  ///< 16-char hex trace id
  std::string root;
  TimePoint start{0};
  Duration duration{0};
  std::string status = "ok";
  std::vector<SpanRecord> spans;  ///< spans[0] is the root span

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

/// The in-flight side of a trace. Thread-safe: concurrent layers may open
/// spans against the same context. Move-only.
class TraceContext {
 public:
  TraceContext(const Clock& clock, std::string root_name);

  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  const std::string& id() const { return id_; }

  /// RAII child-span handle: ends (status "ok") on destruction unless
  /// end() was called explicitly.
  class Span {
   public:
    Span(Span&& other) noexcept;
    Span& operator=(Span&&) = delete;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span();

    void end(std::string status = "ok");
    std::uint64_t id() const { return id_; }

   private:
    friend class TraceContext;
    Span(TraceContext* ctx, std::size_t index, std::uint64_t id)
        : ctx_(ctx), index_(index), id_(id) {}

    TraceContext* ctx_;
    std::size_t index_;
    std::uint64_t id_;
  };

  /// Open a child span. `parent_id` 0 parents it under the root span.
  Span span(std::string name, std::uint64_t parent_id = 0);

  /// Mark the whole trace as failed (root status).
  void fail(std::string status);

  /// Close the root span and return the finished record. The context is
  /// spent afterwards; further spans are dropped.
  TraceRecord finish();

  bool finished() const;

 private:
  void end_span(std::size_t index, std::string status);

  const Clock& clock_;
  std::string id_;
  mutable std::mutex mu_;
  TraceRecord record_;
  bool finished_ = false;
};

/// Ring buffer of the last N completed traces.
class TraceStore {
 public:
  explicit TraceStore(std::size_t capacity = 64);

  void add(TraceRecord record);

  /// Oldest-first copy of the retained traces.
  std::vector<TraceRecord> snapshot() const;

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  /// Total traces ever completed (including evicted ones).
  std::uint64_t completed() const;

 private:
  std::size_t capacity_;
  mutable std::mutex mu_;
  std::deque<TraceRecord> traces_;
  std::uint64_t completed_ = 0;
};

}  // namespace ig::obs
