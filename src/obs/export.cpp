#include "obs/export.hpp"

#include <cstdio>

namespace ig::obs {

namespace {

std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 2);
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string span_json(const SpanRecord& span) {
  std::string out = "{";
  out += "\"id\":\"" + std::to_string(span.id) + "\"";
  out += ",\"parent\":\"" + std::to_string(span.parent_id) + "\"";
  out += ",\"name\":\"" + json_escape(span.name) + "\"";
  out += ",\"node\":\"" + json_escape(span.node) + "\"";
  out += ",\"start_us\":" + std::to_string(span.start.count());
  out += ",\"duration_us\":" + std::to_string(span.duration.count());
  out += ",\"status\":\"" + json_escape(span.status) + "\"";
  if (span.allocs != 0 || span.alloc_bytes != 0) {
    out += ",\"allocs\":" + std::to_string(span.allocs);
    out += ",\"alloc_bytes\":" + std::to_string(span.alloc_bytes);
  }
  out += "}";
  return out;
}

}  // namespace

std::string trace_json(const TraceRecord& record) {
  std::string out = "{\"type\":\"trace\",\"id\":\"" + json_escape(record.id) + "\"";
  out += ",\"root\":\"" + json_escape(record.root) + "\"";
  out += ",\"status\":\"" + json_escape(record.status) + "\"";
  out += ",\"start_us\":" + std::to_string(record.start.count());
  out += ",\"duration_us\":" + std::to_string(record.duration.count());
  if (record.signals != 0) out += ",\"signals\":" + std::to_string(record.signals);
  if (!record.verdict.empty()) out += ",\"verdict\":\"" + json_escape(record.verdict) + "\"";
  if (record.provisional) out += ",\"provisional\":true";
  out += ",\"spans\":[";
  for (std::size_t i = 0; i < record.spans.size(); ++i) {
    if (i != 0) out.push_back(',');
    out += span_json(record.spans[i]);
  }
  out += "]}";
  return out;
}

JsonlExporter::JsonlExporter(std::string path) : JsonlExporter(std::move(path), Options{}) {}

JsonlExporter::JsonlExporter(std::string path, Options options)
    : path_(std::move(path)), options_(options), out_(path_, std::ios::app) {
  if (options_.sample_every == 0) options_.sample_every = 1;
}

bool JsonlExporter::export_trace(const TraceRecord& record) {
  {
    MutexLock lock(mu_);
    ++seen_;
    // Deterministic 1-in-N: the first trace is always exported, so even a
    // single-request test run leaves a durable line to assert on.
    if ((seen_ - 1) % options_.sample_every != 0) {
      ++skipped_;
      return false;
    }
  }
  write_line(trace_json(record));
  return true;
}

void JsonlExporter::export_metrics(const MetricsRegistry& metrics, TimePoint now) {
  std::string line = "{\"type\":\"metrics\",\"at_us\":" + std::to_string(now.count());
  line += ",\"metrics\":{";
  bool first = true;
  for (const MetricSnapshot& m : metrics.snapshot()) {
    if (!first) line.push_back(',');
    first = false;
    line += "\"" + json_escape(m.name) + "\":";
    if (m.histogram.has_value()) {
      const Histogram::Snapshot& h = *m.histogram;
      line += "{\"count\":" + std::to_string(h.stats.count());
      line += ",\"mean\":" + json_double(h.stats.mean());
      line += ",\"p95\":" + json_double(h.quantile(0.95));
      line += ",\"max\":" + json_double(h.stats.max());
      line += "}";
    } else {
      line += std::to_string(m.value);
    }
  }
  line += "}}";
  write_line(line);
}

void JsonlExporter::export_profile(
    const std::vector<std::pair<std::string, std::string>>& attrs,
    TimePoint now) {
  std::string line = "{\"type\":\"profile\",\"at_us\":" + std::to_string(now.count());
  line += ",\"attrs\":{";
  bool first = true;
  for (const auto& [name, value] : attrs) {
    if (!first) line.push_back(',');
    first = false;
    line += "\"" + json_escape(name) + "\":\"" + json_escape(value) + "\"";
  }
  line += "}}";
  write_line(line);
}

void JsonlExporter::write_line(const std::string& line) {
  MutexLock lock(mu_);
  if (!out_.is_open()) {
    out_.clear();
    out_.open(path_, std::ios::app);
  }
  // Flush per line, FileSink-style: a crash loses at most this line, and
  // the partial write it can leave is exactly what read_lines tolerates.
  out_ << line << '\n';
  out_.flush();
  ++exported_;
}

std::uint64_t JsonlExporter::exported() const {
  MutexLock lock(mu_);
  return exported_;
}

std::uint64_t JsonlExporter::skipped() const {
  MutexLock lock(mu_);
  return skipped_;
}

FlightRecorder::FlightRecorder(const Clock& clock, std::string node)
    : FlightRecorder(clock, std::move(node), Options{}) {}

FlightRecorder::FlightRecorder(const Clock& clock, std::string node, Options options)
    : clock_(clock), node_(std::move(node)), options_(options) {
  if (options_.capacity == 0) options_.capacity = 1;
  // Node names carry host:port separators that make poor filenames.
  for (char& c : node_) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
              c == '-' || c == '.';
    if (!ok) c = '_';
  }
}

void FlightRecorder::set_counters(Counter* events, Counter* dumps) {
  events_counter_ = events;
  dumps_counter_ = dumps;
}

void FlightRecorder::set_metrics(const MetricsRegistry* metrics) { metrics_ = metrics; }

void FlightRecorder::append(std::string kind, std::string detail) {
  ring_.push_back(Event{clock_.now(), std::move(kind), std::move(detail)});
  while (ring_.size() > options_.capacity) ring_.pop_front();
  if (events_counter_ != nullptr) events_counter_->add();
}

void FlightRecorder::note(const std::string& kind, const std::string& text) {
  std::string detail = "\"" + json_escape(text) + "\"";
  MutexLock lock(mu_);
  append(kind, std::move(detail));
}

void FlightRecorder::note_trace(const TraceRecord& record) {
  std::string detail = trace_json(record);
  {
    MutexLock lock(mu_);
    append("trace", std::move(detail));
  }
  capture_metric_deltas();
}

void FlightRecorder::capture_metric_deltas() {
  if (metrics_ == nullptr) return;
  // Snapshot before taking mu_: the registry holds its own (kMetrics)
  // lock during snapshot() and mu_ must stay a leaf.
  std::vector<MetricSnapshot> snap = metrics_->snapshot();
  MutexLock lock(mu_);
  std::string detail = "{";
  bool first = true;
  for (const MetricSnapshot& m : snap) {
    if (m.histogram.has_value()) continue;  // deltas are for counters/gauges
    std::int64_t& last = last_values_[m.name];
    std::int64_t delta = m.value - last;
    last = m.value;
    if (delta == 0) continue;
    if (!first) detail.push_back(',');
    first = false;
    detail += "\"" + json_escape(m.name) + "\":" + std::to_string(delta);
  }
  detail += "}";
  if (first) return;  // nothing moved since the previous capture
  append("metric", std::move(detail));
}

std::string FlightRecorder::dump(const std::string& reason,
                                 const std::vector<TraceRecord>& traces, bool force) {
  TimePoint now = clock_.now();
  std::vector<Event> events;
  std::string path;
  {
    MutexLock lock(mu_);
    if (!force && last_dump_at_.count() >= 0) {
      double since_s = static_cast<double>((now - last_dump_at_).count()) / 1e6;
      if (since_s < options_.min_dump_interval_s) return "";
    }
    last_dump_at_ = now;
    path = options_.dump_dir + "/FLIGHT_" + node_ + "_" + std::to_string(seq_++) + ".jsonl";
    events.assign(ring_.begin(), ring_.end());
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) return "";
  out << "{\"type\":\"flight\",\"reason\":\"" << json_escape(reason) << "\",\"node\":\""
      << json_escape(node_) << "\",\"at_us\":" << now.count()
      << ",\"events\":" << events.size() << ",\"traces\":" << traces.size() << "}\n";
  for (const Event& e : events) {
    out << "{\"type\":\"event\",\"kind\":\"" << json_escape(e.kind)
        << "\",\"at_us\":" << e.at.count() << ",\"detail\":" << e.detail << "}\n";
  }
  for (const TraceRecord& t : traces) out << trace_json(t) << "\n";
  out.flush();
  {
    MutexLock lock(mu_);
    ++dumps_;
    last_path_ = path;
  }
  if (dumps_counter_ != nullptr) dumps_counter_->add();
  return path;
}

std::vector<FlightRecorder::Event> FlightRecorder::events() const {
  MutexLock lock(mu_);
  return std::vector<Event>(ring_.begin(), ring_.end());
}

std::uint64_t FlightRecorder::dumps() const {
  MutexLock lock(mu_);
  return dumps_;
}

std::string FlightRecorder::last_path() const {
  MutexLock lock(mu_);
  return last_path_;
}

std::vector<std::string> JsonlExporter::read_lines(const std::string& path) {
  std::vector<std::string> out;
  std::ifstream in(path);
  if (!in.is_open()) return out;
  std::string line;
  while (std::getline(in, line)) {
    if (in.eof() && !line.empty()) {
      // No trailing newline: the torn tail of an interrupted write.
      // Drop it — every retained line is known-complete.
      break;
    }
    if (!line.empty()) out.push_back(line);
  }
  return out;
}

}  // namespace ig::obs
