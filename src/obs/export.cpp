#include "obs/export.hpp"

#include <cstdio>

namespace ig::obs {

namespace {

std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 2);
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string span_json(const SpanRecord& span) {
  std::string out = "{";
  out += "\"id\":\"" + std::to_string(span.id) + "\"";
  out += ",\"parent\":\"" + std::to_string(span.parent_id) + "\"";
  out += ",\"name\":\"" + json_escape(span.name) + "\"";
  out += ",\"node\":\"" + json_escape(span.node) + "\"";
  out += ",\"start_us\":" + std::to_string(span.start.count());
  out += ",\"duration_us\":" + std::to_string(span.duration.count());
  out += ",\"status\":\"" + json_escape(span.status) + "\"";
  if (span.allocs != 0 || span.alloc_bytes != 0) {
    out += ",\"allocs\":" + std::to_string(span.allocs);
    out += ",\"alloc_bytes\":" + std::to_string(span.alloc_bytes);
  }
  out += "}";
  return out;
}

}  // namespace

JsonlExporter::JsonlExporter(std::string path) : JsonlExporter(std::move(path), Options{}) {}

JsonlExporter::JsonlExporter(std::string path, Options options)
    : path_(std::move(path)), options_(options), out_(path_, std::ios::app) {
  if (options_.sample_every == 0) options_.sample_every = 1;
}

bool JsonlExporter::export_trace(const TraceRecord& record) {
  std::string line;
  {
    MutexLock lock(mu_);
    ++seen_;
    // Deterministic 1-in-N: the first trace is always exported, so even a
    // single-request test run leaves a durable line to assert on.
    if ((seen_ - 1) % options_.sample_every != 0) {
      ++skipped_;
      return false;
    }
  }
  line = "{\"type\":\"trace\",\"id\":\"" + json_escape(record.id) + "\"";
  line += ",\"root\":\"" + json_escape(record.root) + "\"";
  line += ",\"status\":\"" + json_escape(record.status) + "\"";
  line += ",\"start_us\":" + std::to_string(record.start.count());
  line += ",\"duration_us\":" + std::to_string(record.duration.count());
  line += ",\"spans\":[";
  for (std::size_t i = 0; i < record.spans.size(); ++i) {
    if (i != 0) line.push_back(',');
    line += span_json(record.spans[i]);
  }
  line += "]}";
  write_line(line);
  return true;
}

void JsonlExporter::export_metrics(const MetricsRegistry& metrics, TimePoint now) {
  std::string line = "{\"type\":\"metrics\",\"at_us\":" + std::to_string(now.count());
  line += ",\"metrics\":{";
  bool first = true;
  for (const MetricSnapshot& m : metrics.snapshot()) {
    if (!first) line.push_back(',');
    first = false;
    line += "\"" + json_escape(m.name) + "\":";
    if (m.histogram.has_value()) {
      const Histogram::Snapshot& h = *m.histogram;
      line += "{\"count\":" + std::to_string(h.stats.count());
      line += ",\"mean\":" + json_double(h.stats.mean());
      line += ",\"p95\":" + json_double(h.quantile(0.95));
      line += ",\"max\":" + json_double(h.stats.max());
      line += "}";
    } else {
      line += std::to_string(m.value);
    }
  }
  line += "}}";
  write_line(line);
}

void JsonlExporter::export_profile(const format::InfoRecord& record, TimePoint now) {
  std::string line = "{\"type\":\"profile\",\"at_us\":" + std::to_string(now.count());
  line += ",\"attrs\":{";
  bool first = true;
  for (const format::Attribute& attr : record.attributes) {
    if (!first) line.push_back(',');
    first = false;
    line += "\"" + json_escape(attr.name) + "\":\"" + json_escape(attr.value) + "\"";
  }
  line += "}}";
  write_line(line);
}

void JsonlExporter::write_line(const std::string& line) {
  MutexLock lock(mu_);
  if (!out_.is_open()) {
    out_.clear();
    out_.open(path_, std::ios::app);
  }
  // Flush per line, FileSink-style: a crash loses at most this line, and
  // the partial write it can leave is exactly what read_lines tolerates.
  out_ << line << '\n';
  out_.flush();
  ++exported_;
}

std::uint64_t JsonlExporter::exported() const {
  MutexLock lock(mu_);
  return exported_;
}

std::uint64_t JsonlExporter::skipped() const {
  MutexLock lock(mu_);
  return skipped_;
}

std::vector<std::string> JsonlExporter::read_lines(const std::string& path) {
  std::vector<std::string> out;
  std::ifstream in(path);
  if (!in.is_open()) return out;
  std::string line;
  while (std::getline(in, line)) {
    if (in.eof() && !line.empty()) {
      // No trailing newline: the torn tail of an interrupted write.
      // Drop it — every retained line is known-complete.
      break;
    }
    if (!line.empty()) out.push_back(line);
  }
  return out;
}

}  // namespace ig::obs
