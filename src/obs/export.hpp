// Durable trace/metric export: sampled JSON lines on the FileSink model.
//
// The TraceStore ring is in-memory by design — it answers "what just
// happened" through info=traces but forgets on restart and under churn.
// The exporter is the durable complement: completed traces (1-in-N
// sampled) and on-demand metric snapshots append to a JSONL file, one
// self-contained object per line, flushed per line exactly like
// logging::FileSink — a crash loses at most the line being written, and
// read_lines() tolerates the torn tail a crash can leave. JSONL diffs
// line-by-line, which is what lets CI compare trace shapes across runs.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/sync.hpp"
#include "format/record.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ig::obs {

class JsonlExporter {
 public:
  struct Options {
    /// Export every Nth completed trace (1 = all, 0 treated as 1).
    /// Counter-based and deterministic, matching the tracer's sampler.
    std::uint64_t sample_every = 1;
  };

  explicit JsonlExporter(std::string path);
  JsonlExporter(std::string path, Options options);

  /// Append `record` as one JSON line if the sampler selects it.
  /// Returns true when the record was written.
  bool export_trace(const TraceRecord& record);

  /// Append a full metrics snapshot as one JSON line (never sampled —
  /// callers decide the cadence).
  void export_metrics(const MetricsRegistry& metrics, TimePoint now);

  /// Append a profile snapshot (the `profile` keyword's InfoRecord) as
  /// one `{"type":"profile",...}` line (never sampled, like metrics).
  void export_profile(const format::InfoRecord& record, TimePoint now);

  std::uint64_t exported() const;
  std::uint64_t skipped() const;  ///< traces the sampler passed over
  const std::string& path() const { return path_; }

  /// All complete lines of a JSONL file, oldest first. A torn final line
  /// (no trailing newline — the crash case) is dropped, not an error;
  /// a missing file reads as empty.
  static std::vector<std::string> read_lines(const std::string& path);

 private:
  void write_line(const std::string& line);

  std::string path_;
  Options options_;
  /// Unranked: leaf lock, nothing else is acquired while it is held.
  mutable Mutex mu_{lock_rank::kUnranked, "obs.JsonlExporter"};
  std::ofstream out_ IG_GUARDED_BY(mu_);
  std::uint64_t seen_ IG_GUARDED_BY(mu_) = 0;
  std::uint64_t exported_ IG_GUARDED_BY(mu_) = 0;
  std::uint64_t skipped_ IG_GUARDED_BY(mu_) = 0;
};

}  // namespace ig::obs
