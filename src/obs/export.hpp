// Durable trace/metric export: sampled JSON lines on the FileSink model.
//
// The TraceStore ring is in-memory by design — it answers "what just
// happened" through info=traces but forgets on restart and under churn.
// The exporter is the durable complement: completed traces (1-in-N
// sampled) and on-demand metric snapshots append to a JSONL file, one
// self-contained object per line, flushed per line exactly like
// logging::FileSink — a crash loses at most the line being written, and
// read_lines() tolerates the torn tail a crash can leave. JSONL diffs
// line-by-line, which is what lets CI compare trace shapes across runs.
#pragma once

#include <cstdint>
#include <deque>
#include <fstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/clock.hpp"
#include "common/sync.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ig::obs {

namespace metric {
/// Completed traces the exporter's 1-in-N sampler passed over.
inline constexpr const char* kExportSkipped = "obs.export.skipped";
/// Events appended to the anomaly flight recorder's ring.
inline constexpr const char* kFrEvents = "obs.fr.events";
/// Flight-record JSONL dumps written (verdicts and SLO pages).
inline constexpr const char* kFrDumps = "obs.fr.dumps";
}  // namespace metric

/// One completed trace as a self-contained `{"type":"trace",...}` JSON
/// object (no trailing newline). Shared by the exporter's per-line format
/// and the flight recorder's dumps so the two stay diffable against each
/// other. Tail fields (signals/verdict/provisional) appear only when set.
std::string trace_json(const TraceRecord& record);

class JsonlExporter {
 public:
  struct Options {
    /// Export every Nth completed trace (1 = all, 0 treated as 1).
    /// Counter-based and deterministic, matching the tracer's sampler.
    std::uint64_t sample_every = 1;
  };

  explicit JsonlExporter(std::string path);
  JsonlExporter(std::string path, Options options);

  /// Append `record` as one JSON line if the sampler selects it.
  /// Returns true when the record was written.
  bool export_trace(const TraceRecord& record);

  /// Append a full metrics snapshot as one JSON line (never sampled —
  /// callers decide the cadence).
  void export_metrics(const MetricsRegistry& metrics, TimePoint now);

  /// Append a profile snapshot as one `{"type":"profile",...}` line
  /// (never sampled, like metrics). Attributes arrive pre-flattened as
  /// name/value pairs: the profile keyword's record shape belongs to
  /// the format layer, and obs sits below it (DESIGN.md §16).
  void export_profile(
      const std::vector<std::pair<std::string, std::string>>& attrs,
      TimePoint now);

  std::uint64_t exported() const;
  std::uint64_t skipped() const;  ///< traces the sampler passed over
  const std::string& path() const { return path_; }

  /// All complete lines of a JSONL file, oldest first. A torn final line
  /// (no trailing newline — the crash case) is dropped, not an error;
  /// a missing file reads as empty.
  static std::vector<std::string> read_lines(const std::string& path);

 private:
  void write_line(const std::string& line);

  std::string path_;
  Options options_;
  /// Unranked: leaf lock, nothing else is acquired while it is held.
  mutable Mutex mu_{lock_rank::kUnranked, "obs.JsonlExporter"};
  std::ofstream out_ IG_GUARDED_BY(mu_);
  std::uint64_t seen_ IG_GUARDED_BY(mu_) = 0;
  std::uint64_t exported_ IG_GUARDED_BY(mu_) = 0;
  std::uint64_t skipped_ IG_GUARDED_BY(mu_) = 0;
};

/// Anomaly flight recorder: a bounded in-memory ring of recent
/// trace/log/metric-delta events that dumps itself to a JSONL file when
/// something goes wrong — a tail verdict retains an anomalous trace, or
/// an SLO objective pages. The ring is always recording (events are a
/// string append, no I/O), so by the time the anomaly is *detected* the
/// lead-up is already captured; the dump is the black box investigators
/// read after the fact. Dump files are `FLIGHT_<node>_<seq>.jsonl` in
/// `dump_dir`, rate-limited so a page storm cannot fill the disk.
class FlightRecorder {
 public:
  struct Options {
    std::size_t capacity = 256;        ///< max events held in the ring
    std::string dump_dir = ".";        ///< where FLIGHT_*.jsonl files land
    double min_dump_interval_s = 1.0;  ///< dump rate limit (force bypasses)
  };

  struct Event {
    TimePoint at;
    std::string kind;    ///< "trace" | "log" | "metric"
    std::string detail;  ///< rendered JSON fragment (object or string)
  };

  FlightRecorder(const Clock& clock, std::string node);
  FlightRecorder(const Clock& clock, std::string node, Options options);

  /// Optional wiring into a MetricsRegistry: `events`/`dumps` counters
  /// bump per append/dump, and `metrics` enables metric-delta events
  /// (counter movement since the previous anomaly) alongside each trace.
  void set_counters(Counter* events, Counter* dumps);
  void set_metrics(const MetricsRegistry* metrics);

  /// Append a free-text event (e.g. a log line worth keeping).
  void note(const std::string& kind, const std::string& text);

  /// Append a verdict-carrying retained trace, plus a metric-delta event
  /// when a registry is wired and counters moved since the last capture.
  void note_trace(const TraceRecord& record);

  /// Write the ring plus `traces` (the store's recent retained traces) to
  /// a fresh FLIGHT_<node>_<seq>.jsonl. Returns the path, or "" when
  /// rate-limited (`force` bypasses the limit) or the file can't open.
  std::string dump(const std::string& reason, const std::vector<TraceRecord>& traces,
                   bool force = false);

  std::vector<Event> events() const;
  std::uint64_t dumps() const;
  std::string last_path() const;
  const Options& options() const { return options_; }

 private:
  void append(std::string kind, std::string detail) IG_REQUIRES(mu_);
  void capture_metric_deltas();

  const Clock& clock_;
  std::string node_;  ///< sanitized into the dump filename
  Options options_;
  Counter* events_counter_ = nullptr;
  Counter* dumps_counter_ = nullptr;
  const MetricsRegistry* metrics_ = nullptr;
  /// Unranked leaf: the metrics snapshot for delta events is taken
  /// *before* this lock so we never hold it across the registry's lock.
  mutable Mutex mu_{lock_rank::kUnranked, "obs.FlightRecorder"};
  std::deque<Event> ring_ IG_GUARDED_BY(mu_);
  std::unordered_map<std::string, std::int64_t> last_values_ IG_GUARDED_BY(mu_);
  std::uint64_t seq_ IG_GUARDED_BY(mu_) = 0;
  std::uint64_t dumps_ IG_GUARDED_BY(mu_) = 0;
  std::string last_path_ IG_GUARDED_BY(mu_);
  TimePoint last_dump_at_ IG_GUARDED_BY(mu_) = TimePoint(-1);
};

}  // namespace ig::obs
