// Trace-context propagation across simulated grid hops.
//
// The wire format is a single compact header on the IGP/1.0 message —
// `ig-trace: <trace-id>;<parent-span-hex>;<sampled>` — injected by the
// client side of net::Connection and extracted by every serving layer
// (core, mds, soap, p2p gossip). A second header on the *response*,
// `ig-trace-spans`, backhauls the hop's finished spans so the caller can
// adopt them into its own context: the in-process network has no
// out-of-band collector, so traces travel home the same way results do.
//
// Because the simulated network dispatches the server handler
// synchronously in the caller's thread, "which trace is active" is a
// thread-local, and crossing the simulated process boundary means
// *detaching* it: Connection::request wraps dispatch in a DetachScope so
// the serving side sees exactly what a remote process would — the wire
// header, nothing else. The scope types here are the only way the
// thread-local is mutated, and each restores the previous state, so
// nested hops (client -> hierarchy -> leaf) unwind correctly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace ig::obs {

/// Request header carrying the trace context; absent = untraced caller.
inline constexpr const char* kTraceHeader = "ig-trace";
/// Response header carrying the serving hop's finished spans.
inline constexpr const char* kTraceSpansHeader = "ig-trace-spans";

/// The propagated triple: who the trace is, which caller span to parent
/// under, and whether the originator sampled it.
struct WireContext {
  std::string trace_id;
  std::uint64_t parent_span = 0;
  bool sampled = true;

  /// `<trace-id>;<parent-span-hex>;<1|0>`
  std::string encode() const;
  /// nullopt on any malformed input (wrong field count, bad hex).
  static std::optional<WireContext> decode(const std::string& header);
};

/// Serialize finished spans for the response backhaul header. Records are
/// '|'-separated; fields (id, parent, name, node, start_us, duration_us,
/// status) are ','-separated with %-escaping for the delimiters. At most
/// `max_spans` spans are kept (oldest first) so one chatty hop cannot
/// bloat every response on the path.
std::string encode_spans(const std::vector<SpanRecord>& spans, std::size_t max_spans = 64);
/// Tolerant inverse: malformed records are skipped, never fatal.
std::vector<SpanRecord> decode_spans(const std::string& header);

/// The thread's current trace state. Exactly one of three shapes:
///  - ctx != nullptr: a local TraceContext is active; outbound requests
///    open hop spans on it and inject its id.
///  - !foreign_trace_id.empty(): pass-through — this node has no local
///    telemetry but received a wire context; outbound requests forward it
///    unchanged so the trace survives an uninstrumented middle hop.
///  - suppressed: the originator decided not to sample; outbound requests
///    inject sampled=0 and no spans are recorded anywhere on the path.
struct ActiveTrace {
  TraceContext* ctx = nullptr;
  std::uint64_t span_id = 0;  ///< span new work should parent under
  bool suppressed = false;
  std::string foreign_trace_id;
  std::uint64_t foreign_parent = 0;

  bool empty() const {
    return ctx == nullptr && !suppressed && foreign_trace_id.empty();
  }
};

/// This thread's active trace state (mutate only via the scopes below).
ActiveTrace& active_trace();

/// Makes `ctx` the thread's active trace for the scope's lifetime;
/// `span_id` (0 = ctx's root span) becomes the parent for nested work.
class TraceScope {
 public:
  TraceScope(TraceContext& ctx, std::uint64_t span_id = 0);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  ActiveTrace saved_;
};

/// Marks the scope as deliberately unsampled (propagates sampled=0).
class SuppressScope {
 public:
  SuppressScope();
  ~SuppressScope();
  SuppressScope(const SuppressScope&) = delete;
  SuppressScope& operator=(const SuppressScope&) = delete;

 private:
  ActiveTrace saved_;
};

/// Forwards a foreign wire context through a node with no telemetry.
class PassThroughScope {
 public:
  PassThroughScope(std::string trace_id, std::uint64_t parent_span);
  ~PassThroughScope();
  PassThroughScope(const PassThroughScope&) = delete;
  PassThroughScope& operator=(const PassThroughScope&) = delete;

 private:
  ActiveTrace saved_;
};

/// Clears the active trace: the simulated process boundary. The serving
/// handler dispatched inside this scope sees no caller thread-locals,
/// only what the wire header says — exactly like a real remote process.
class DetachScope {
 public:
  DetachScope();
  ~DetachScope();
  DetachScope(const DetachScope&) = delete;
  DetachScope& operator=(const DetachScope&) = delete;

 private:
  ActiveTrace saved_;
};

}  // namespace ig::obs
