// Trace-context propagation across simulated grid hops.
//
// The wire format is a single compact header on the IGP/1.0 message —
// `ig-trace: <trace-id>;<parent-span-hex>;<sampled>` — injected by the
// client side of net::Connection and extracted by every serving layer
// (core, mds, soap, p2p gossip). A second header on the *response*,
// `ig-trace-spans`, backhauls the hop's finished spans so the caller can
// adopt them into its own context: the in-process network has no
// out-of-band collector, so traces travel home the same way results do.
//
// Sampling contract (tail-retention aware, DESIGN.md §15): the third
// `ig-trace` field is `1` (head-sampled: every hop records and retains),
// `0` (suppressed: no hop records anything), or `2` (*provisional*: the
// origin's head sampler declined but the tail layer is watching — every
// hop records spans and backhauls them, but nothing is retained unless
// the origin's finish-time verdict keeps the trace). A `2` decoder older
// than this contract rejects the header, degrading to an untraced hop —
// safe, never wrong. Provisional hops additionally backhaul their
// anomaly-signal bits on the response header `ig-trace-signals` so the
// origin's late verdict sees faults that downstream shields absorbed.
//
// Because the simulated network dispatches the server handler
// synchronously in the caller's thread, "which trace is active" is a
// thread-local, and crossing the simulated process boundary means
// *detaching* it: Connection::request wraps dispatch in a DetachScope so
// the serving side sees exactly what a remote process would — the wire
// header, nothing else. The scope types here are the only way the
// thread-local is mutated, and each restores the previous state, so
// nested hops (client -> hierarchy -> leaf) unwind correctly.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace ig::obs {

/// Request header carrying the trace context; absent = untraced caller.
inline constexpr const char* kTraceHeader = "ig-trace";
/// Response header carrying the serving hop's finished spans.
inline constexpr const char* kTraceSpansHeader = "ig-trace-spans";
/// Response header carrying the serving hop's TailSignal bits (decimal
/// mask) so the origin's late verdict sees remotely-absorbed faults.
inline constexpr const char* kTraceSignalsHeader = "ig-trace-signals";

/// The propagated triple: who the trace is, which caller span to parent
/// under, and whether the originator sampled it (provisionally or not).
struct WireContext {
  std::string trace_id;
  std::uint64_t parent_span = 0;
  bool sampled = true;
  /// Head sampler declined, tail layer watching: record + backhaul, but
  /// retention waits for the origin's verdict (wire value `2`).
  bool provisional = false;

  /// `<trace-id>;<parent-span-hex>;<1|0|2>` (2 = sampled + provisional)
  std::string encode() const;
  /// nullopt on any malformed input (wrong field count, bad hex).
  static std::optional<WireContext> decode(const std::string& header);
};

/// Serialize finished spans for the response backhaul header. Records are
/// '|'-separated; fields (id, parent, name, node, start_us, duration_us,
/// status) are ','-separated with %-escaping for the delimiters. At most
/// `max_spans` spans are kept (oldest first) so one chatty hop cannot
/// bloat every response on the path.
std::string encode_spans(const std::vector<SpanRecord>& spans, std::size_t max_spans = 64);
/// Tolerant inverse: malformed records are skipped, never fatal.
std::vector<SpanRecord> decode_spans(const std::string& header);

/// A head-unsampled request the tail layer is watching: a stack struct
/// costing a few stores on the clean path. Signal bits accumulate here;
/// a real TraceContext is materialized lazily — only when an outbound
/// hop needs a trace id on the wire — via the owner-installed
/// `materialize` hook (invoked at most once, on the owning thread). The
/// owner classifies at finish (Telemetry::finish_provisional).
struct PendingTrace {
  std::uint32_t signals = 0;             ///< TailSignal bits raised so far
  TraceContext* ctx = nullptr;           ///< non-null once materialized
  std::function<TraceContext*()> materialize;

  /// The materialized context, creating it on first need (null when no
  /// materializer was installed).
  TraceContext* acquire() {
    if (ctx == nullptr && materialize) ctx = materialize();
    return ctx;
  }
};

/// The thread's current trace state. Exactly one of four shapes:
///  - ctx != nullptr: a local TraceContext is active; outbound requests
///    open hop spans on it and inject its id.
///  - pending != nullptr: a provisional (tail-watched) request; signals
///    accumulate on it and outbound requests materialize a real context
///    on demand, injecting sampled=2.
///  - !foreign_trace_id.empty(): pass-through — this node has no local
///    telemetry but received a wire context; outbound requests forward it
///    unchanged so the trace survives an uninstrumented middle hop.
///  - suppressed: the originator decided not to sample; outbound requests
///    inject sampled=0 and no spans are recorded anywhere on the path.
struct ActiveTrace {
  TraceContext* ctx = nullptr;
  std::uint64_t span_id = 0;  ///< span new work should parent under
  bool suppressed = false;
  PendingTrace* pending = nullptr;
  std::string foreign_trace_id;
  std::uint64_t foreign_parent = 0;
  bool foreign_provisional = false;  ///< forwarded wire flag was `2`

  bool empty() const {
    return ctx == nullptr && pending == nullptr && !suppressed &&
           foreign_trace_id.empty();
  }
};

/// This thread's active trace state (mutate only via the scopes below).
ActiveTrace& active_trace();

/// Raise TailSignal bits on whatever request is in flight on this
/// thread: ORed into the pending provisional, or annotated onto the
/// active context (head-sampled traces carry the verdict as annotation).
/// No-op when suppressed, foreign, or untraced — call sites need no
/// telemetry plumbing of their own.
void signal_tail(TailSignal signal);

/// Makes `ctx` the thread's active trace for the scope's lifetime;
/// `span_id` (0 = ctx's root span) becomes the parent for nested work.
class TraceScope {
 public:
  TraceScope(TraceContext& ctx, std::uint64_t span_id = 0);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  ActiveTrace saved_;
};

/// Marks the scope as deliberately unsampled (propagates sampled=0).
class SuppressScope {
 public:
  SuppressScope();
  ~SuppressScope();
  SuppressScope(const SuppressScope&) = delete;
  SuppressScope& operator=(const SuppressScope&) = delete;

 private:
  ActiveTrace saved_;
};

/// Forwards a foreign wire context through a node with no telemetry
/// (`provisional` keeps the tail-layer wire flag intact end to end).
class PassThroughScope {
 public:
  PassThroughScope(std::string trace_id, std::uint64_t parent_span,
                   bool provisional = false);
  ~PassThroughScope();
  PassThroughScope(const PassThroughScope&) = delete;
  PassThroughScope& operator=(const PassThroughScope&) = delete;

 private:
  ActiveTrace saved_;
};

/// Makes `pending` the thread's provisional trace for the scope's
/// lifetime: signal_tail() accumulates on it and outbound hops
/// materialize it on demand.
class ProvisionalScope {
 public:
  explicit ProvisionalScope(PendingTrace& pending);
  ~ProvisionalScope();
  ProvisionalScope(const ProvisionalScope&) = delete;
  ProvisionalScope& operator=(const ProvisionalScope&) = delete;

 private:
  ActiveTrace saved_;
};

/// Clears the active trace: the simulated process boundary. The serving
/// handler dispatched inside this scope sees no caller thread-locals,
/// only what the wire header says — exactly like a real remote process.
class DetachScope {
 public:
  DetachScope();
  ~DetachScope();
  DetachScope(const DetachScope&) = delete;
  DetachScope& operator=(const DetachScope&) = delete;

 private:
  ActiveTrace saved_;
};

}  // namespace ig::obs
