#include "obs/profile.hpp"

#include <algorithm>
#include <map>

#include "obs/propagation.hpp"

namespace ig::obs {

namespace {

/// Re-entry guard: record() acquires the registry mutex, and that mutex
/// can itself be contended — without the guard the listener would
/// recurse into itself. Set BEFORE the acquisition.
thread_local bool t_in_record = false;

}  // namespace

LockContentionRegistry& LockContentionRegistry::instance() {
  // Leaked singleton: lock waits can be recorded during static
  // destruction (other globals' destructors take locks), so the registry
  // must never die.
  static LockContentionRegistry* registry = new LockContentionRegistry();
  return *registry;
}

void LockContentionRegistry::install() {
  sync_internal::set_contention_listener([](int rank, const char* name, std::uint64_t wait_ns) {
    LockContentionRegistry::instance().record(rank, name, wait_ns);
  });
}

void LockContentionRegistry::uninstall() { sync_internal::set_contention_listener(nullptr); }

void LockContentionRegistry::record(int rank, const char* name, std::uint64_t wait_ns) {
  if (t_in_record) return;
  t_in_record = true;
  total_waits_.fetch_add(1, std::memory_order_relaxed);
  // The exemplar read happens before taking mu_ — active_trace() is a
  // plain thread-local, safe anywhere.
  const ActiveTrace& active = active_trace();
  {
    MutexLock lock(mu_);
    Entry& e = entries_[static_cast<const void*>(name)];
    if (e.waits == 0) {
      e.name = (name != nullptr) ? name : "";
      e.rank = rank;
    }
    ++e.waits;
    e.total_ns += wait_ns;
    std::size_t bucket = 0;
    std::uint64_t wait_us = wait_ns / 1000;
    while (bucket < kWaitBucketEdgesUs.size() && wait_us > kWaitBucketEdgesUs[bucket]) {
      ++bucket;
    }
    ++e.buckets[bucket];
    if (wait_ns >= e.max_ns) {
      e.max_ns = wait_ns;
      if (active.ctx != nullptr && !active.ctx->finished()) {
        e.exemplar_trace = active.ctx->id();
      }
    }
  }
  t_in_record = false;
}

std::vector<LockContentionRegistry::Entry> LockContentionRegistry::snapshot() const {
  std::vector<Entry> raw;
  {
    // Snapshot readers must not recurse into record() either (mu_ may be
    // contended by concurrent recorders).
    t_in_record = true;
    MutexLock lock(mu_);
    raw.reserve(entries_.size());
    for (const auto& [ptr, entry] : entries_) raw.push_back(entry);
    t_in_record = false;
  }
  // Merge by (name, rank): the same report name may live at several
  // literal addresses (one per TU) or on several lock instances.
  std::map<std::pair<std::string, int>, Entry> merged;
  for (Entry& e : raw) {
    auto key = std::make_pair(e.name, e.rank);
    auto it = merged.find(key);
    if (it == merged.end()) {
      merged.emplace(std::move(key), std::move(e));
      continue;
    }
    Entry& base = it->second;
    base.waits += e.waits;
    base.total_ns += e.total_ns;
    for (std::size_t i = 0; i < base.buckets.size(); ++i) base.buckets[i] += e.buckets[i];
    if (e.max_ns > base.max_ns) {
      base.max_ns = e.max_ns;
      base.exemplar_trace = std::move(e.exemplar_trace);
    }
  }
  std::vector<Entry> out;
  out.reserve(merged.size());
  for (auto& [key, entry] : merged) out.push_back(std::move(entry));
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return a.total_ns > b.total_ns; });
  return out;
}

void LockContentionRegistry::reset() {
  t_in_record = true;
  {
    MutexLock lock(mu_);
    entries_.clear();
  }
  t_in_record = false;
  total_waits_.store(0, std::memory_order_relaxed);
}

void Profiler::record_alloc(const std::string& keyword, std::uint64_t allocs,
                            std::uint64_t bytes) {
  if (!enabled()) return;
  MutexLock lock(mu_);
  KeywordAlloc& k = keyword_allocs_[keyword];
  ++k.samples;
  k.allocs += allocs;
  k.bytes += bytes;
  k.max_bytes = std::max(k.max_bytes, bytes);
}

void Profiler::attach_pool(const std::string& name, PoolStatsFn fn) {
  MutexLock lock(mu_);
  pools_[name] = std::move(fn);
}

void Profiler::detach_pool(const std::string& name) {
  MutexLock lock(mu_);
  pools_.erase(name);
}

std::vector<std::pair<std::string, Profiler::KeywordAlloc>> Profiler::keyword_allocs() const {
  std::vector<std::pair<std::string, KeywordAlloc>> out;
  {
    MutexLock lock(mu_);
    out.reserve(keyword_allocs_.size());
    for (const auto& [kw, agg] : keyword_allocs_) out.emplace_back(kw, agg);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second.bytes > b.second.bytes; });
  return out;
}

std::vector<std::pair<std::string, ThreadPool::Stats>> Profiler::pool_stats(
    bool reset_window) const {
  // Copy the callbacks out, call outside mu_: a pool callback takes the
  // pool's own (higher-ranked) lock and may block behind running tasks.
  std::vector<std::pair<std::string, PoolStatsFn>> fns;
  {
    MutexLock lock(mu_);
    fns.reserve(pools_.size());
    for (const auto& [name, fn] : pools_) fns.emplace_back(name, fn);
  }
  std::sort(fns.begin(), fns.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::pair<std::string, ThreadPool::Stats>> out;
  out.reserve(fns.size());
  for (auto& [name, fn] : fns) {
    if (fn) out.emplace_back(name, fn(reset_window));
  }
  return out;
}

std::uint64_t Profiler::take_unsynced_lock_waits() {
  std::uint64_t total = LockContentionRegistry::instance().total_waits();
  std::uint64_t synced = synced_lock_waits_.exchange(total, std::memory_order_relaxed);
  return total > synced ? total - synced : 0;
}

void Profiler::reset() {
  MutexLock lock(mu_);
  keyword_allocs_.clear();
}

}  // namespace ig::obs
