#include "obs/slo.hpp"

#include <algorithm>

namespace ig::obs {

SloEngine::SloEngine(const MetricsRegistry& metrics, const Clock& clock)
    : metrics_(metrics), clock_(clock) {}

std::vector<BurnRule> SloEngine::default_rules() {
  return {
      // Fast burn: 2% of a 30-day budget gone within the hour — page.
      {std::chrono::duration_cast<Duration>(std::chrono::minutes(5)),
       std::chrono::duration_cast<Duration>(std::chrono::hours(1)), 14.4, "page"},
      // Slow burn: 5% within six hours — a ticket can wait for morning.
      {std::chrono::duration_cast<Duration>(std::chrono::minutes(30)),
       std::chrono::duration_cast<Duration>(std::chrono::hours(6)), 6.0, "ticket"},
  };
}

void SloEngine::add(SloObjective objective) {
  if (objective.rules.empty()) objective.rules = default_rules();
  MutexLock lock(mu_);
  states_.push_back(State{std::move(objective), {}});
}

std::size_t SloEngine::size() const {
  MutexLock lock(mu_);
  return states_.size();
}

SloEngine::Sample SloEngine::sample_now(const SloObjective& objective, TimePoint now) const {
  Sample sample;
  sample.at = now;
  // snapshot() walks the registry under its own lock; per-objective
  // lookups by name keep this correct even as metrics appear lazily.
  for (const MetricSnapshot& m : metrics_.snapshot()) {
    if (objective.kind == SloObjective::Kind::kLatency) {
      if (m.name != objective.metric || !m.histogram.has_value()) continue;
      const Histogram::Snapshot& h = *m.histogram;
      for (std::size_t i = 0; i < h.counts.size(); ++i) {
        sample.total += h.counts[i];
        // Bucket i covers values <= boundaries[i]; the +inf overflow
        // bucket is never "good".
        if (i < h.boundaries.size() && h.boundaries[i] <= objective.threshold_seconds) {
          sample.good += h.counts[i];
        }
      }
    } else {
      if (m.name == objective.total_metric && m.kind != MetricSnapshot::Kind::kHistogram) {
        sample.total = static_cast<std::uint64_t>(std::max<std::int64_t>(0, m.value));
      }
      if (m.name == objective.metric && m.kind != MetricSnapshot::Kind::kHistogram) {
        sample.good = static_cast<std::uint64_t>(std::max<std::int64_t>(0, m.value));
      }
    }
  }
  if (objective.kind == SloObjective::Kind::kErrorRate) {
    // `sample.good` held the error count until here.
    std::uint64_t errors = std::min(sample.good, sample.total);
    sample.good = sample.total - errors;
  }
  return sample;
}

double SloEngine::burn_over(const std::deque<Sample>& history, const Sample& now,
                            Duration window, double target) {
  if (target >= 1.0) return 0.0;
  // Newest sample at least `window` old; fall back to the oldest so a
  // short history still yields a (conservative, lifetime-ish) burn.
  const Sample* base = nullptr;
  TimePoint cutoff = now.at - window;
  for (const Sample& s : history) {
    if (s.at <= cutoff) base = &s;
  }
  if (base == nullptr && !history.empty()) base = &history.front();
  std::uint64_t total0 = base != nullptr ? base->total : 0;
  std::uint64_t good0 = base != nullptr ? base->good : 0;
  if (now.total <= total0) return 0.0;
  auto dt = static_cast<double>(now.total - total0);
  auto dg = static_cast<double>(now.good - std::min(good0, now.good));
  double bad_fraction = (dt - dg) / dt;
  return bad_fraction / (1.0 - target);
}

std::vector<SloStatus> SloEngine::evaluate() {
  TimePoint now = clock_.now();
  MutexLock lock(mu_);
  std::vector<SloStatus> out;
  out.reserve(states_.size());
  for (State& state : states_) {
    Sample current = sample_now(state.objective, now);

    SloStatus status;
    status.objective = state.objective;
    status.good = current.good;
    status.total = current.total;
    status.compliance =
        current.total == 0
            ? 1.0
            : static_cast<double>(current.good) / static_cast<double>(current.total);

    Duration max_window{0};
    for (const BurnRule& rule : state.objective.rules) {
      max_window = std::max(max_window, rule.long_window);
      BurnStatus burn;
      burn.rule = rule;
      burn.short_burn = burn_over(state.history, current, rule.short_window,
                                  state.objective.target);
      burn.long_burn = burn_over(state.history, current, rule.long_window,
                                 state.objective.target);
      burn.alerting = burn.short_burn >= rule.factor && burn.long_burn >= rule.factor;
      if (burn.alerting && !status.alerting) {
        status.alerting = true;
        status.severity = rule.severity;
      }
      status.burns.push_back(std::move(burn));
    }
    status.budget_remaining =
        1.0 - burn_over(state.history, current, max_window, state.objective.target);

    // Append after evaluating so a window never compares a sample with
    // itself, then prune — keeping one sample at/before the horizon so
    // the longest window always has a baseline.
    state.history.push_back(current);
    TimePoint horizon = now - max_window;
    while (state.history.size() > 1 && state.history[1].at <= horizon) {
      state.history.pop_front();
    }

    out.push_back(std::move(status));
  }
  return out;
}

}  // namespace ig::obs
