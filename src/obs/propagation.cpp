#include "obs/propagation.hpp"

#include <cstdlib>

#include "common/id.hpp"

namespace ig::obs {

namespace {

constexpr char kFieldSep = ',';
constexpr char kRecordSep = '|';

/// Parse a hex span id; false on empty/garbage input.
bool parse_hex(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(s.c_str(), &end, 16);
  return end != nullptr && *end == '\0';
}

bool parse_dec(const std::string& s, std::int64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtoll(s.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

/// %-escape the wire delimiters (and '%' itself) in free-text fields.
std::string escape(const std::string& in) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    if (c == kFieldSep || c == kRecordSep || c == '%' || c == '\n' || c == '\r') {
      out.push_back('%');
      out.push_back(kHex[(static_cast<unsigned char>(c) >> 4) & 0xf]);
      out.push_back(kHex[static_cast<unsigned char>(c) & 0xf]);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string unescape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i] == '%' && i + 2 < in.size()) {
      int hi = hex_digit(in[i + 1]);
      int lo = hex_digit(in[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>((hi << 4) | lo));
        i += 2;
        continue;
      }
    }
    out.push_back(in[i]);
  }
  return out;
}

std::vector<std::string> split(const std::string& in, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = in.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(in.substr(start));
      return out;
    }
    out.push_back(in.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace

std::string WireContext::encode() const {
  const char* flag = sampled ? (provisional ? "2" : "1") : "0";
  return trace_id + ";" + to_hex(parent_span) + ";" + flag;
}

std::optional<WireContext> WireContext::decode(const std::string& header) {
  std::vector<std::string> fields = split(header, ';');
  if (fields.size() != 3 || fields[0].empty()) return std::nullopt;
  WireContext ctx;
  ctx.trace_id = fields[0];
  if (!parse_hex(fields[1], ctx.parent_span)) return std::nullopt;
  if (fields[2] == "1") {
    ctx.sampled = true;
  } else if (fields[2] == "0") {
    ctx.sampled = false;
  } else if (fields[2] == "2") {
    // Tail-provisional: record + backhaul, retention pends the origin's
    // verdict. Pre-tail decoders reject this value — they degrade to an
    // untraced hop, which is safe.
    ctx.sampled = true;
    ctx.provisional = true;
  } else {
    return std::nullopt;
  }
  return ctx;
}

std::string encode_spans(const std::vector<SpanRecord>& spans, std::size_t max_spans) {
  std::string out;
  std::size_t kept = 0;
  for (const SpanRecord& span : spans) {
    if (kept == max_spans) break;
    ++kept;
    if (!out.empty()) out.push_back(kRecordSep);
    out += to_hex(span.id);
    out.push_back(kFieldSep);
    out += to_hex(span.parent_id);
    out.push_back(kFieldSep);
    out += escape(span.name);
    out.push_back(kFieldSep);
    out += escape(span.node);
    out.push_back(kFieldSep);
    out += std::to_string(span.start.count());
    out.push_back(kFieldSep);
    out += std::to_string(span.duration.count());
    out.push_back(kFieldSep);
    out += escape(span.status);
    // Allocation attribution rides the backhaul too (fields 8/9); PR 6
    // decoders accept the old 7-field records from pre-profiler peers.
    out.push_back(kFieldSep);
    out += std::to_string(span.allocs);
    out.push_back(kFieldSep);
    out += std::to_string(span.alloc_bytes);
  }
  return out;
}

std::vector<SpanRecord> decode_spans(const std::string& header) {
  std::vector<SpanRecord> out;
  if (header.empty()) return out;
  for (const std::string& rec : split(header, kRecordSep)) {
    std::vector<std::string> fields = split(rec, kFieldSep);
    // 7 = pre-profiler peers (no alloc fields), 9 = current encoders.
    if (fields.size() != 7 && fields.size() != 9) continue;
    SpanRecord span;
    std::int64_t start_us = 0;
    std::int64_t duration_us = 0;
    if (!parse_hex(fields[0], span.id) || !parse_hex(fields[1], span.parent_id) ||
        !parse_dec(fields[4], start_us) || !parse_dec(fields[5], duration_us)) {
      continue;
    }
    span.name = unescape(fields[2]);
    span.node = unescape(fields[3]);
    span.start = TimePoint(start_us);
    span.duration = Duration(duration_us);
    span.status = unescape(fields[6]);
    if (fields.size() == 9) {
      std::int64_t allocs = 0;
      std::int64_t alloc_bytes = 0;
      if (!parse_dec(fields[7], allocs) || !parse_dec(fields[8], alloc_bytes) || allocs < 0 ||
          alloc_bytes < 0) {
        continue;
      }
      span.allocs = static_cast<std::uint64_t>(allocs);
      span.alloc_bytes = static_cast<std::uint64_t>(alloc_bytes);
    }
    out.push_back(std::move(span));
  }
  return out;
}

namespace {
thread_local ActiveTrace t_active;
}  // namespace

ActiveTrace& active_trace() { return t_active; }

void signal_tail(TailSignal signal) {
  if (t_active.pending != nullptr) {
    t_active.pending->signals |= signal;
    return;
  }
  if (t_active.ctx != nullptr) t_active.ctx->add_signal(signal);
}

TraceScope::TraceScope(TraceContext& ctx, std::uint64_t span_id) : saved_(t_active) {
  t_active = ActiveTrace{};
  t_active.ctx = &ctx;
  t_active.span_id = span_id != 0 ? span_id : ctx.root_span_id();
}

TraceScope::~TraceScope() { t_active = saved_; }

SuppressScope::SuppressScope() : saved_(t_active) {
  t_active = ActiveTrace{};
  t_active.suppressed = true;
}

SuppressScope::~SuppressScope() { t_active = saved_; }

PassThroughScope::PassThroughScope(std::string trace_id, std::uint64_t parent_span,
                                   bool provisional)
    : saved_(t_active) {
  t_active = ActiveTrace{};
  t_active.foreign_trace_id = std::move(trace_id);
  t_active.foreign_parent = parent_span;
  t_active.foreign_provisional = provisional;
}

PassThroughScope::~PassThroughScope() { t_active = saved_; }

ProvisionalScope::ProvisionalScope(PendingTrace& pending) : saved_(t_active) {
  t_active = ActiveTrace{};
  t_active.pending = &pending;
}

ProvisionalScope::~ProvisionalScope() { t_active = saved_; }

DetachScope::DetachScope() : saved_(t_active) { t_active = ActiveTrace{}; }

DetachScope::~DetachScope() { t_active = saved_; }

}  // namespace ig::obs
