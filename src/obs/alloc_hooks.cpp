// Global operator new/delete replacement feeding the per-thread
// allocation counters AllocScope reads. Gated on IG_PROFILE_ALLOC
// (CMake option, default ON): without it this TU still defines the
// thread-local counters and counting_enabled(), but the standard
// allocator stays untouched and every AllocScope delta reads zero.
//
// Replacement notes:
//  - Only the plain/nothrow/sized forms are replaced. The aligned
//    overloads are deliberately left to the built-in pair (replacing
//    one of an allocation/deallocation pair without the other is UB),
//    so over-aligned allocations go uncounted — acceptable undercount,
//    this tree does not use over-aligned types on hot paths.
//  - Works under ASan/TSan: user strong definitions win over the
//    sanitizer interposition of operator new, while the malloc/free
//    inside remain fully intercepted, so poisoning/quarantine behaviour
//    is preserved.
//  - The counters are constant-initialized thread-locals (no dynamic
//    init, no guards), so counting is safe from the first allocation of
//    a brand-new thread.
#include <cstdlib>
#include <new>

#include "obs/profile.hpp"

namespace ig::obs::alloc_internal {

thread_local constinit ThreadAllocCounters t_counters{};

bool counting_enabled() {
#if defined(IG_PROFILE_ALLOC)
  return true;
#else
  return false;
#endif
}

}  // namespace ig::obs::alloc_internal

#if defined(IG_PROFILE_ALLOC)

namespace {

/// Conforming allocation loop: on exhaustion give the installed
/// new-handler a chance to free memory before failing.
void* counted_alloc(std::size_t size) {
  for (;;) {
    void* p = std::malloc(size != 0 ? size : 1);
    if (p != nullptr) {
      ig::obs::alloc_internal::ThreadAllocCounters& c = ig::obs::alloc_internal::t_counters;
      ++c.allocs;
      c.bytes += size;
      return p;
    }
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

void counted_free(void* p) noexcept {
  if (p != nullptr) ++ig::obs::alloc_internal::t_counters.frees;
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { counted_free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { counted_free(p); }

#endif  // IG_PROFILE_ALLOC
