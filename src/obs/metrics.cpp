#include "obs/metrics.hpp"

#include <algorithm>

namespace ig::obs {

std::vector<double> Histogram::latency_seconds_buckets() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0};
}

Histogram::Histogram(std::vector<double> boundaries)
    : boundaries_(boundaries.empty() ? latency_seconds_buckets() : std::move(boundaries)),
      counts_(boundaries_.size() + 1),
      exemplars_(boundaries_.size() + 1) {}

void Histogram::observe(double x) {
  auto it = std::lower_bound(boundaries_.begin(), boundaries_.end(), x);
  auto index = static_cast<std::size_t>(it - boundaries_.begin());
  counts_[index].fetch_add(1, std::memory_order_relaxed);
  stats_.add(x);
}

void Histogram::observe(double x, std::string_view exemplar_trace_id) {
  observe(x);
  if (exemplar_trace_id.empty()) return;
  MutexLock lock(exemplar_mu_);
  auto it = std::lower_bound(boundaries_.begin(), boundaries_.end(), x);
  auto index = static_cast<std::size_t>(it - boundaries_.begin());
  exemplars_[index].value = x;
  exemplars_[index].trace_id.assign(exemplar_trace_id.data(), exemplar_trace_id.size());
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.stats = stats_.snapshot();
  snap.boundaries = boundaries_;
  snap.counts.reserve(counts_.size());
  for (const auto& c : counts_) snap.counts.push_back(c.load(std::memory_order_relaxed));
  {
    MutexLock lock(exemplar_mu_);
    snap.exemplars = exemplars_;
  }
  return snap;
}

IG_STATIC_FAST_PATH
std::uint64_t Histogram::count_now() const {
  std::uint64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

IG_STATIC_FAST_PATH
double Histogram::quantile_now(double q) const {
  // Mirrors Snapshot::quantile over the live atomics. Buckets only
  // grow, so the walk may see slightly more than `total` counted —
  // that skews the estimate by at most the racing samples, never
  // out of range.
  const std::uint64_t total = count_now();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::uint64_t c = counts_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    const auto next = cumulative + c;
    if (static_cast<double>(next) >= rank) {
      if (i >= boundaries_.size()) return stats_.max_now();
      const double lower = i == 0 ? std::min(0.0, stats_.min_now()) : boundaries_[i - 1];
      const double upper = boundaries_[i];
      const double fraction =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(c);
      return lower + (upper - lower) * fraction;
    }
    cumulative = next;
  }
  return stats_.max_now();
}

double Histogram::Snapshot::quantile(double q) const {
  std::uint64_t total = 0;
  for (auto c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    auto next = cumulative + counts[i];
    if (static_cast<double>(next) >= rank) {
      // Interpolate within [lower, upper) by the fraction of the rank that
      // falls inside this bucket. The overflow bucket has no upper edge;
      // report the observed maximum instead.
      if (i >= boundaries.size()) return stats.max();
      double lower = i == 0 ? std::min(0.0, stats.min()) : boundaries[i - 1];
      double upper = boundaries[i];
      double fraction =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(counts[i]);
      return lower + (upper - lower) * fraction;
    }
    cumulative = next;
  }
  return stats.max();
}

namespace {

/// Lock-free probe for an already-registered entry (the steady-state
/// path: every metric a component resolves after wiring already exists).
template <typename Table>
const typename Table::mapped_type* find_published(
    const std::shared_ptr<const Table>& table, const std::string& name) {
  if (table == nullptr) return nullptr;
  auto it = table->find(name);
  return it == table->end() ? nullptr : &it->second;
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
  if (const Entry* hit = find_published(table_.read(), name)) {
    return hit->counter != nullptr ? *hit->counter : mismatch_counter_;
  }
  MutexLock lock(mu_);
  auto current = table_.read();  // re-check: a racing writer may have won
  Table next = current != nullptr ? *current : Table{};
  Entry& entry = next[name];
  if (entry.gauge != nullptr || entry.histogram != nullptr) return mismatch_counter_;
  if (entry.counter == nullptr) entry.counter = std::make_shared<Counter>();
  Counter& ref = *entry.counter;
  table_.publish(std::make_shared<const Table>(std::move(next)));
  return ref;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  if (const Entry* hit = find_published(table_.read(), name)) {
    return hit->gauge != nullptr ? *hit->gauge : mismatch_gauge_;
  }
  MutexLock lock(mu_);
  auto current = table_.read();
  Table next = current != nullptr ? *current : Table{};
  Entry& entry = next[name];
  if (entry.counter != nullptr || entry.histogram != nullptr) return mismatch_gauge_;
  if (entry.gauge == nullptr) entry.gauge = std::make_shared<Gauge>();
  Gauge& ref = *entry.gauge;
  table_.publish(std::make_shared<const Table>(std::move(next)));
  return ref;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> boundaries) {
  if (const Entry* hit = find_published(table_.read(), name)) {
    if (hit->histogram != nullptr) return *hit->histogram;
    MutexLock lock(mu_);
    if (mismatch_histogram_ == nullptr) {
      mismatch_histogram_ = std::make_unique<Histogram>(std::vector<double>{});
    }
    return *mismatch_histogram_;
  }
  MutexLock lock(mu_);
  auto current = table_.read();
  Table next = current != nullptr ? *current : Table{};
  Entry& entry = next[name];
  if (entry.counter != nullptr || entry.gauge != nullptr) {
    if (mismatch_histogram_ == nullptr) {
      mismatch_histogram_ = std::make_unique<Histogram>(std::vector<double>{});
    }
    return *mismatch_histogram_;
  }
  if (entry.histogram == nullptr) {
    entry.histogram = std::make_shared<Histogram>(std::move(boundaries));
  }
  Histogram& ref = *entry.histogram;
  table_.publish(std::make_shared<const Table>(std::move(next)));
  return ref;
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot() const {
  auto table = table_.read();
  std::vector<MetricSnapshot> out;
  if (table == nullptr) return out;
  out.reserve(table->size());
  for (const auto& [name, entry] : *table) {
    MetricSnapshot snap;
    snap.name = name;
    if (entry.counter != nullptr) {
      snap.kind = MetricSnapshot::Kind::kCounter;
      snap.value = static_cast<std::int64_t>(entry.counter->value());
    } else if (entry.gauge != nullptr) {
      snap.kind = MetricSnapshot::Kind::kGauge;
      snap.value = entry.gauge->value();
    } else if (entry.histogram != nullptr) {
      snap.kind = MetricSnapshot::Kind::kHistogram;
      snap.histogram = entry.histogram->snapshot();
    } else {
      continue;  // name touched but never materialized
    }
    out.push_back(std::move(snap));
  }
  return out;
}

std::size_t MetricsRegistry::size() const {
  auto table = table_.read();
  return table == nullptr ? 0 : table->size();
}

}  // namespace ig::obs
