// SLO engine — declarative objectives evaluated over the metrics registry.
//
// An SloObjective names a latency or error-rate target over metrics the
// instrumentation already records (histogram buckets for latency, counter
// pairs for error rate): no second measurement pipeline, the SLO plane is
// a *view* over the registry. Each evaluate() appends a (good, total)
// sample to a per-objective history ring and computes multi-window burn
// rates from sample deltas — the Google-SRE alerting shape where a page
// needs BOTH a short window (still burning now) and a long window
// (burned enough to matter) above the factor, so a brief spike neither
// pages nor does a slow leak hide.
//
// Burn rate: (bad fraction over the window) / (1 - target). Burn 1.0
// consumes the error budget exactly at the rate that exhausts it at the
// window's end; factor 14.4 over 1h consumes ~2% of a 30-day budget.
//
// Results surface as the TTL-0 `slo` and `alerts` keywords in the obs
// provider family, so objectives and alert state flow through xRSL,
// LDIF/XML formatting and info=schema reflection like any other keyword —
// asking "is the service meeting its targets?" is itself just a query.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/sync.hpp"
#include "obs/metrics.hpp"

namespace ig::obs {

/// One multi-window alert rule: breached only when the burn rate over
/// BOTH windows is at least `factor`.
struct BurnRule {
  Duration short_window{0};
  Duration long_window{0};
  double factor = 1.0;
  std::string severity;  ///< "page", "ticket", ...
};

/// A declarative objective over already-recorded metrics.
struct SloObjective {
  enum class Kind {
    kLatency,    ///< good = histogram observations <= threshold_seconds
    kErrorRate,  ///< good = total counter - error counter
  };

  std::string name;   ///< stable id, e.g. "request-latency"
  std::string layer;  ///< owning layer ("core", "info", "mds", ...)
  Kind kind = Kind::kLatency;
  std::string metric;        ///< histogram (latency) or error counter (error rate)
  std::string total_metric;  ///< total counter; error-rate objectives only
  double threshold_seconds = 0.0;  ///< latency objectives only
  double target = 0.99;            ///< required good fraction, in (0,1)
  std::vector<BurnRule> rules;     ///< empty = SloEngine::default_rules()
};

/// One rule's evaluation: burn over each window, breached or not.
struct BurnStatus {
  BurnRule rule;
  double short_burn = 0.0;
  double long_burn = 0.0;
  bool alerting = false;
};

/// One objective's full evaluation at a point in time.
struct SloStatus {
  SloObjective objective;
  std::uint64_t good = 0;   ///< lifetime good events
  std::uint64_t total = 0;  ///< lifetime total events
  double compliance = 1.0;  ///< lifetime good/total (1.0 with no events)
  /// Fraction of the error budget still unspent over the longest window
  /// (1.0 = untouched, 0 = exhausted, negative = overspent).
  double budget_remaining = 1.0;
  std::vector<BurnStatus> burns;
  bool alerting = false;
  std::string severity;  ///< severity of the first breached rule, "" if none
};

/// Evaluates objectives against the registry. Thread-safe; evaluate() is
/// expected to be called from provider refresh (TTL-0 `slo`/`alerts`
/// queries), so each query is also a history sample.
class SloEngine {
 public:
  SloEngine(const MetricsRegistry& metrics, const Clock& clock);

  /// The standard page/ticket pair: 5m/1h @ 14.4x and 30m/6h @ 6x.
  static std::vector<BurnRule> default_rules();

  void add(SloObjective objective);
  std::size_t size() const;

  /// Sample every objective's counters now, append to history, and
  /// compute windowed burn rates. Ordered as added.
  std::vector<SloStatus> evaluate();

 private:
  struct Sample {
    TimePoint at{0};
    std::uint64_t good = 0;
    std::uint64_t total = 0;
  };
  struct State {
    SloObjective objective;
    std::deque<Sample> history;
  };

  Sample sample_now(const SloObjective& objective, TimePoint now) const;
  /// Burn rate from the delta between now and the newest sample at least
  /// `window` old (the oldest sample when history is shorter).
  static double burn_over(const std::deque<Sample>& history, const Sample& now,
                          Duration window, double target);

  const MetricsRegistry& metrics_;
  const Clock& clock_;
  /// Ranked below kMetrics: evaluate() snapshots the registry under it.
  mutable Mutex mu_{lock_rank::kSlo, "obs.SloEngine"};
  std::vector<State> states_ IG_GUARDED_BY(mu_);
};

}  // namespace ig::obs
